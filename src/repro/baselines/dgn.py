"""DGN baseline [47]: attention-based inter-agent message aggregation.

Graph-convolutional RL treats agents as graph nodes and stacks relational
(multi-head dot-product attention) layers over the agent graph.  It
weights neighbours by importance, but — unlike E-Comm — its attention is
over *feature* space only and ignores the changing geometric shape formed
by the UGVs, the gap the paper's comparison highlights.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GARLConfig
from ..core.policies import UGVPolicyOutput, bias_release_head
from ..env.airground import AirGroundEnv
from ..nn import MLP, Module, MultiHeadAttention, Tensor
from .base import BatchedUGVPolicyMixin, NodeScorer, PolicyAgent, assemble_output, flat_obs_dim

__all__ = ["DGNUGVPolicy", "DGNAgent"]


class DGNUGVPolicy(BatchedUGVPolicyMixin, Module):
    """Observation encoder + stacked relational attention over agents."""

    def __init__(self, obs_dim: int, config: GARLConfig,
                 rng: np.random.Generator | None = None, blocks: int = 2):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        dim = config.hidden_dim
        self.encoder = MLP([obs_dim, 2 * dim, dim], rng=rng, final_gain=1.0)
        # DGN stacks relational kernels: multi-head attention + residual.
        self.blocks = [MultiHeadAttention(dim, heads=2, rng=rng) for _ in range(blocks)]
        self.node_scorer = NodeScorer(dim, rng, hidden=dim)
        self.release_head = MLP([dim, dim, 1], rng=rng, final_gain=0.01)
        bias_release_head(self.release_head)
        self.value_head = MLP([dim, dim, 1], rng=rng, final_gain=1.0)

    def forward(self, observations) -> UGVPolicyOutput:
        flats = np.stack([obs.flat() for obs in observations])
        h = self.encoder(Tensor(flats)).tanh()  # (U, D)
        for block in self.blocks:
            h = (h + block(h)).relu()  # residual relational block

        scores, releases, values = [], [], []
        for i, obs in enumerate(observations):
            scores.append(self.node_scorer(obs.stop_features, h[i]))
            releases.append(self.release_head(h[i]).squeeze(-1))
            values.append(self.value_head(h[i]).squeeze(-1))
        return assemble_output(scores, releases, values, observations)


class DGNAgent(PolicyAgent):
    name = "DGN"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None):
        config = config or GARLConfig()
        rng = np.random.default_rng(config.seed)
        super().__init__(env, DGNUGVPolicy(flat_obs_dim(env), config, rng=rng), config)
