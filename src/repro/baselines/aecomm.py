"""AE-Comm baseline [46]: autoencoded "common language" communication.

Each UGV encodes its observation into a latent message; a decoder is
trained (via the auxiliary reconstruction loss hook) so the latent space
grounds a common language.  Policies condition on their own latent plus
the mean of the other agents' latents.  As the paper notes, AE-Comm beats
DGN/IC3Net but lacks any explicit spatial-geometry handling.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GARLConfig
from ..core.policies import UGVPolicyOutput, bias_release_head
from ..env.airground import AirGroundEnv
from ..nn import MLP, Module, Tensor
from ..nn import functional as F
from .base import BatchedUGVPolicyMixin, NodeScorer, PolicyAgent, assemble_output, flat_obs_dim

__all__ = ["AECommUGVPolicy", "AECommAgent"]


class AECommUGVPolicy(BatchedUGVPolicyMixin, Module):
    """Encoder/decoder latent messaging + mean-pooled communication."""

    def __init__(self, obs_dim: int, config: GARLConfig,
                 rng: np.random.Generator | None = None, recon_coef: float = 0.1):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        dim = config.hidden_dim
        self.recon_coef = recon_coef
        self.encoder = MLP([obs_dim, 2 * dim, dim], rng=rng, final_gain=1.0)
        self.decoder = MLP([dim, 2 * dim, obs_dim], rng=rng, final_gain=1.0)
        self.node_scorer = NodeScorer(2 * dim, rng, hidden=dim)
        self.release_head = MLP([2 * dim, dim, 1], rng=rng, final_gain=0.01)
        bias_release_head(self.release_head)
        self.value_head = MLP([2 * dim, dim, 1], rng=rng, final_gain=1.0)

    def _latents(self, observations) -> Tensor:
        flats = np.stack([obs.flat() for obs in observations])
        return self.encoder(Tensor(flats)).tanh()  # (U, D)

    def forward(self, observations) -> UGVPolicyOutput:
        latents = self._latents(observations)
        u = len(observations)
        if u > 1:
            # Mean of the *other* agents' messages, batched:
            # (sum - own) / (U - 1).
            total = latents.sum(axis=0, keepdims=True)
            messages = (total - latents) / float(u - 1)
        else:
            messages = Tensor(np.zeros_like(latents.data))
        feature = Tensor.concat([latents, messages], axis=-1)  # (U, 2D)

        scores, releases, values = [], [], []
        for i, obs in enumerate(observations):
            scores.append(self.node_scorer(obs.stop_features, feature[i]))
            releases.append(self.release_head(feature[i]).squeeze(-1))
            values.append(self.value_head(feature[i]).squeeze(-1))
        return assemble_output(scores, releases, values, observations)

    def auxiliary_loss(self, observations) -> Tensor:
        """Reconstruction loss grounding the common language."""
        flats = np.stack([obs.flat() for obs in observations])
        latents = self._latents(observations)
        recon = self.decoder(latents)
        return F.mse_loss(recon, flats) * self.recon_coef


class AECommAgent(PolicyAgent):
    name = "AE-Comm"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None):
        config = config or GARLConfig()
        rng = np.random.default_rng(config.seed)
        super().__init__(env, AECommUGVPolicy(flat_obs_dim(env), config, rng=rng), config)
