"""MADDPG baseline [36]: centralized critics + deterministic actors + replay.

Differences from the IPPO family, matching the original method:

* off-policy learning from a replay buffer with soft-updated targets;
* deterministic actors — Gumbel-softmax for the discrete UGV head,
  additive Gaussian noise for the continuous UAV head;
* centralized UGV critics conditioned on all agents' observations and
  actions (the CTDE arrangement).

Two documented simplifications keep the reproduction tractable: UGV
transitions are recorded option-style (decision point to next decision
point, accumulating the in-between window rewards), and the UAV critic is
decentralized DDPG-style since UAV populations change as flights end.
The paper attributes MADDPG's weakness to deterministic exploration,
which both simplifications leave intact.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path

import numpy as np

from ..core.config import GARLConfig
from ..env.airground import AirGroundEnv
from ..env.metrics import MetricSnapshot
from ..nn import MLP, Adam, Module, Tensor, no_grad
from ..nn import functional as F

__all__ = ["MADDPGAgent"]


def _gumbel(rng: np.random.Generator, shape) -> np.ndarray:
    u = rng.uniform(1e-9, 1.0 - 1e-9, size=shape)
    return -np.log(-np.log(u))


class _UGVActor(Module):
    def __init__(self, obs_dim: int, action_dim: int, dim: int, rng):
        super().__init__()
        self.net = MLP([obs_dim, 2 * dim, dim, action_dim], rng=rng, final_gain=0.01)
        # Same release prior as the IPPO-based policies (see
        # repro.core.policies.RELEASE_BIAS): the release action is the
        # last logit, and without a prior the deterministic argmax almost
        # never flies the UAVs early on.
        from ..core.policies import RELEASE_BIAS
        from ..nn import Linear

        last = [m for m in self.net.modules() if isinstance(m, Linear)][-1]
        last.bias.data[-1] = RELEASE_BIAS  # reprolint: disable=RL001

    def forward(self, obs: Tensor) -> Tensor:
        return self.net(obs)


class _UAVActor(Module):
    def __init__(self, obs_dim: int, dim: int, rng):
        super().__init__()
        self.net = MLP([obs_dim, dim, dim, 2], rng=rng, final_gain=0.01)

    def forward(self, obs: Tensor) -> Tensor:
        return self.net(obs).tanh()


class _ActorPolicyAdapter(Module):
    """Expose the deterministic UGV actor through the standard policy
    interface (masked logits + values), for tooling that benchmarks or
    traces any method uniformly."""

    def __init__(self, actor: _UGVActor):
        super().__init__()
        self.actor = actor

    def forward(self, observations):
        from ..core.policies import UGVPolicyOutput

        flats = np.stack([o.flat() for o in observations])
        logits = self.actor(Tensor(flats))
        masks = np.stack([o.action_mask for o in observations])
        masked = logits + Tensor(np.where(masks, 0.0, -1e9))
        return UGVPolicyOutput(masked, Tensor(np.zeros(len(observations))))


class _Critic(Module):
    def __init__(self, in_dim: int, dim: int, rng):
        super().__init__()
        self.net = MLP([in_dim, 2 * dim, dim, 1], rng=rng, final_gain=1.0)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x).squeeze(-1)


def _soft_update(target: Module, source: Module, tau: float) -> None:
    src = dict(source.named_parameters())
    for name, param in target.named_parameters():
        param.data = (1.0 - tau) * param.data + tau * src[name].data  # reprolint: disable=RL001


class MADDPGAgent:
    """MADDPG driver with the same facade as the IPPO-based agents."""

    name = "MADDPG"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None,
                 buffer_size: int = 20000, batch_size: int = 64,
                 tau: float = 0.01, gumbel_tau: float = 1.0,
                 exploration_eps: float = 0.2, noise_std: float = 0.3):
        self.env = env
        self.config = config or GARLConfig()
        cfg = env.config
        self.rng = np.random.default_rng(self.config.seed)
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.hidden_dim

        self.obs_dim = env.num_stops * 3 + cfg.num_ugvs * 2
        self.action_dim = env.ugv_action_dim
        self.num_ugvs = cfg.num_ugvs
        self.uav_obs_dim = 3 * cfg.uav_obs_size**2 + 5

        self.ugv_actor = _UGVActor(self.obs_dim, self.action_dim, dim, rng)
        self.ugv_policy = _ActorPolicyAdapter(self.ugv_actor)
        self.ugv_actor_target = _UGVActor(self.obs_dim, self.action_dim, dim, rng)
        self.ugv_actor_target.load_state_dict(self.ugv_actor.state_dict())
        critic_in = self.num_ugvs * (self.obs_dim + self.action_dim) + self.num_ugvs
        self.ugv_critic = _Critic(critic_in, dim, rng)
        self.ugv_critic_target = _Critic(critic_in, dim, rng)
        self.ugv_critic_target.load_state_dict(self.ugv_critic.state_dict())

        self.uav_actor = _UAVActor(self.uav_obs_dim, dim, rng)
        self.uav_actor_target = _UAVActor(self.uav_obs_dim, dim, rng)
        self.uav_actor_target.load_state_dict(self.uav_actor.state_dict())
        self.uav_critic = _Critic(self.uav_obs_dim + 2, dim, rng)
        self.uav_critic_target = _Critic(self.uav_obs_dim + 2, dim, rng)
        self.uav_critic_target.load_state_dict(self.uav_critic.state_dict())

        lr = self.config.ppo.lr
        self.opt_ugv_actor = Adam(self.ugv_actor.parameters(), lr=lr)
        self.opt_ugv_critic = Adam(self.ugv_critic.parameters(), lr=lr)
        self.opt_uav_actor = Adam(self.uav_actor.parameters(), lr=lr)
        self.opt_uav_critic = Adam(self.uav_critic.parameters(), lr=lr)

        self.ugv_buffer: deque = deque(maxlen=buffer_size)
        self.uav_buffer: deque = deque(maxlen=buffer_size)
        self.batch_size = batch_size
        self.tau = tau
        self.gumbel_tau = gumbel_tau
        self.exploration_eps = exploration_eps
        self.noise_std = noise_std
        self.gamma = self.config.ppo.gamma
        self._agent_eye = np.eye(self.num_ugvs)
        self._iteration = 0

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def _ugv_act(self, observations, explore: bool) -> np.ndarray:
        flats = np.stack([o.flat() for o in observations])
        with no_grad():
            logits = self.ugv_actor(Tensor(flats)).numpy()
        masks = np.stack([o.action_mask for o in observations])
        logits = np.where(masks, logits, -1e9)
        actions = logits.argmax(axis=-1)
        if explore:
            # Per-agent rng draws are order-dependent; vectorizing would
            # change the rng stream and break seeded reproducibility.
            for i in range(len(actions)):  # reprolint: disable=PF003
                if self.rng.random() < self.exploration_eps:
                    actions[i] = self.rng.choice(np.nonzero(masks[i])[0])
        return actions

    def _uav_flat(self, obs) -> np.ndarray:
        return np.concatenate([obs.grid.ravel(), obs.aux])

    def _uav_act(self, obs_flat: np.ndarray, explore: bool) -> np.ndarray:
        with no_grad():
            action = self.uav_actor(Tensor(obs_flat[None])).numpy()[0]
        if explore:
            action = np.clip(action + self.rng.normal(0, self.noise_std, 2), -1, 1)
        return action

    # ------------------------------------------------------------------
    # Experience collection
    # ------------------------------------------------------------------
    def _run_episode(self, explore: bool, trace: list | None = None) -> MetricSnapshot:
        env = self.env
        cfg = env.config
        res = env.reset()
        # Option-style pending transitions per UGV.
        pending: dict[int, dict] = {}
        uav_pending: dict[int, dict] = {}
        while True:
            # Baseline-parity path: MADDPG keeps the simple per-step
            # gathers of the reference implementation (O(U) each); only
            # the paper method's rollout is performance-tuned.
            actionable = np.array([not g.is_waiting for g in env.ugvs])  # reprolint: disable=PF001
            joint_flat = np.stack([o.flat() for o in res.ugv_observations])  # reprolint: disable=PF002
            actions = self._ugv_act(res.ugv_observations, explore)

            for u in range(self.num_ugvs):  # reprolint: disable=PF003
                if not actionable[u]:
                    continue
                if u in pending:  # close previous decision now that we act again
                    trans = pending.pop(u)
                    self.ugv_buffer.append({**trans, "next_obs": joint_flat, "done": False})
                pending[u] = {"agent": u, "obs": joint_flat,
                              "actions": actions.copy(), "reward": 0.0}

            uav_actions: list[np.ndarray | None] = [None] * cfg.num_uavs
            for v, o in enumerate(res.uav_observations):
                if o is None:
                    continue
                flat = self._uav_flat(o)
                act = self._uav_act(flat, explore)
                uav_actions[v] = act * cfg.uav_max_step
                if v in uav_pending:
                    t = uav_pending.pop(v)
                    self.uav_buffer.append({**t, "next_obs": flat, "done": False})
                uav_pending[v] = {"obs": flat, "action": act, "reward": 0.0}

            if trace is not None:
                # Trace recording only runs on the visualisation path
                # (trace is None during training).
                trace.append({
                    "t": env.t,
                    "ugv_positions": np.array([g.position for g in env.ugvs]),  # reprolint: disable=PF001
                    "uav_positions": np.array([u.position for u in env.uavs]),  # reprolint: disable=PF001
                    "uav_airborne": np.array([u.airborne for u in env.uavs]),  # reprolint: disable=PF001
                })

            res = env.step(actions, uav_actions)
            for u, trans in pending.items():
                trans["reward"] += float(res.ugv_rewards[u])
            for v, trans in uav_pending.items():
                trans["reward"] += float(res.uav_rewards[v])
                if res.uav_observations[v] is None:  # docked: flight over
                    self.uav_buffer.append({**trans, "next_obs": trans["obs"], "done": True})
            for v in [v for v in uav_pending if res.uav_observations[v] is None]:
                uav_pending.pop(v)

            if res.done:
                # Once per episode, at termination.
                final_flat = np.stack([o.flat() for o in res.ugv_observations])  # reprolint: disable=PF002
                for trans in pending.values():
                    self.ugv_buffer.append({**trans, "next_obs": final_flat, "done": True})
                for trans in uav_pending.values():
                    self.uav_buffer.append({**trans, "next_obs": trans["obs"], "done": True})
                break
        return env.metrics()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _actions_for(self, actor: Module, obs: np.ndarray, masks_ok: bool = True) -> Tensor:
        """Differentiable Gumbel-softmax action probabilities per agent."""
        u = self.num_ugvs
        logits = actor(Tensor(obs.reshape(-1, self.obs_dim)))
        noise = _gumbel(self.rng, logits.shape)
        return ((logits + Tensor(noise)) / self.gumbel_tau).softmax(axis=-1)

    def _update_ugv(self) -> dict[str, float]:
        if len(self.ugv_buffer) < self.batch_size:
            return {}
        idx = self.rng.choice(len(self.ugv_buffer), self.batch_size, replace=False)
        batch = [self.ugv_buffer[int(i)] for i in idx]
        u = self.num_ugvs
        obs = np.stack([b["obs"] for b in batch])  # (N, U, obs_dim)
        next_obs = np.stack([b["next_obs"] for b in batch])
        rewards = np.array([b["reward"] for b in batch])
        dones = np.array([b["done"] for b in batch], dtype=float)
        agents = np.array([b["agent"] for b in batch])
        action_onehots = np.zeros((len(batch), u, self.action_dim))
        for i, b in enumerate(batch):
            for j, a in enumerate(b["actions"]):
                action_onehots[i, j, a] = 1.0

        onehot_agents = self._agent_eye[agents]

        # Critic target.
        with no_grad():
            next_probs = self._actions_for(self.ugv_actor_target, next_obs)
            next_probs = next_probs.numpy().reshape(len(batch), u, self.action_dim)
            target_in = np.concatenate([
                next_obs.reshape(len(batch), -1),
                next_probs.reshape(len(batch), -1),
                onehot_agents], axis=-1)
            q_next = self.ugv_critic_target(Tensor(target_in)).numpy()
        target = rewards + self.gamma * (1.0 - dones) * q_next

        critic_in = np.concatenate([
            obs.reshape(len(batch), -1),
            action_onehots.reshape(len(batch), -1),
            onehot_agents], axis=-1)
        q = self.ugv_critic(Tensor(critic_in))
        critic_loss = F.mse_loss(q, target)
        self.opt_ugv_critic.zero_grad()
        critic_loss.backward()
        self.opt_ugv_critic.step()

        # Actor: ascend Q with own action replaced by the differentiable one.
        probs = self._actions_for(self.ugv_actor, obs)  # (N*U, A)
        probs = probs.reshape(len(batch), u, self.action_dim)
        fixed = Tensor(action_onehots)
        own_mask = np.zeros((len(batch), u, 1))
        own_mask[np.arange(len(batch)), agents, 0] = 1.0
        mixed = Tensor(1.0 - own_mask) * fixed + Tensor(own_mask) * probs
        actor_in = Tensor.concat([
            Tensor(obs.reshape(len(batch), -1)),
            mixed.reshape(len(batch), -1),
            Tensor(onehot_agents)], axis=-1)
        actor_loss = -self.ugv_critic(actor_in).mean()
        self.opt_ugv_actor.zero_grad()
        actor_loss.backward()
        self.opt_ugv_actor.step()

        _soft_update(self.ugv_critic_target, self.ugv_critic, self.tau)
        _soft_update(self.ugv_actor_target, self.ugv_actor, self.tau)
        return {"maddpg_ugv_critic": float(critic_loss.item()),
                "maddpg_ugv_actor": float(actor_loss.item())}

    def _update_uav(self) -> dict[str, float]:
        if len(self.uav_buffer) < self.batch_size:
            return {}
        idx = self.rng.choice(len(self.uav_buffer), self.batch_size, replace=False)
        batch = [self.uav_buffer[int(i)] for i in idx]
        obs = np.stack([b["obs"] for b in batch])
        next_obs = np.stack([b["next_obs"] for b in batch])
        actions = np.stack([b["action"] for b in batch])
        rewards = np.array([b["reward"] for b in batch])
        dones = np.array([b["done"] for b in batch], dtype=float)

        with no_grad():
            next_actions = self.uav_actor_target(Tensor(next_obs)).numpy()
            q_next = self.uav_critic_target(
                Tensor(np.concatenate([next_obs, next_actions], axis=-1))).numpy()
        target = rewards + self.gamma * (1.0 - dones) * q_next

        q = self.uav_critic(Tensor(np.concatenate([obs, actions], axis=-1)))
        critic_loss = F.mse_loss(q, target)
        self.opt_uav_critic.zero_grad()
        critic_loss.backward()
        self.opt_uav_critic.step()

        pred_actions = self.uav_actor(Tensor(obs))
        actor_in = Tensor.concat([Tensor(obs), pred_actions], axis=-1)
        actor_loss = -self.uav_critic(actor_in).mean()
        self.opt_uav_actor.zero_grad()
        actor_loss.backward()
        self.opt_uav_actor.step()

        _soft_update(self.uav_critic_target, self.uav_critic, self.tau)
        _soft_update(self.uav_actor_target, self.uav_actor, self.tau)
        return {"maddpg_uav_critic": float(critic_loss.item()),
                "maddpg_uav_actor": float(actor_loss.item())}

    # ------------------------------------------------------------------
    # Facade
    # ------------------------------------------------------------------
    def train(self, iterations: int, episodes_per_iteration: int = 1,
              callback=None, updates_per_iteration: int = 8,
              total_iterations: int | None = None) -> list[dict]:
        history = []
        for _ in range(iterations):
            iteration = self._iteration
            metrics = None
            for _ in range(episodes_per_iteration):
                metrics = self._run_episode(explore=True)
            losses: dict[str, float] = {}
            for _ in range(updates_per_iteration):
                losses.update(self._update_ugv())
                losses.update(self._update_uav())
            record = {"iteration": iteration, "metrics": metrics.as_dict(), "losses": losses}
            history.append(record)
            self._iteration += 1
            if callback is not None:
                callback(record)
        return history

    def evaluate(self, episodes: int = 1, greedy: bool = True) -> MetricSnapshot:
        totals = np.zeros(4)
        for _ in range(episodes):
            snap = self._run_episode(explore=not greedy)
            totals += np.array([snap.psi, snap.xi, snap.zeta, snap.beta])
        psi, xi, zeta, beta = totals / episodes
        return MetricSnapshot(float(psi), float(xi), float(zeta), float(beta))

    def rollout_trace(self, greedy: bool = True, seed: int | None = None) -> list[dict]:
        trace: list[dict] = []
        if seed is not None:
            self.env.reset(seed)
        self._run_episode(explore=not greedy, trace=trace)
        return trace

    def save(self, directory: str | Path) -> None:
        from ..nn import save_checkpoint
        directory = Path(directory)
        save_checkpoint(self.ugv_actor, directory / "ugv_actor.npz", {"name": self.name})
        save_checkpoint(self.uav_actor, directory / "uav_actor.npz", {"name": self.name})

    def load(self, directory: str | Path) -> None:
        from ..nn import load_checkpoint
        directory = Path(directory)
        load_checkpoint(self.ugv_actor, directory / "ugv_actor.npz")
        load_checkpoint(self.uav_actor, directory / "uav_actor.npz")

    # ------------------------------------------------------------------
    # Full training state (checkpoint/resume)
    # ------------------------------------------------------------------
    _MODULE_ATTRS = ("ugv_actor", "ugv_actor_target", "ugv_critic",
                     "ugv_critic_target", "uav_actor", "uav_actor_target",
                     "uav_critic", "uav_critic_target")
    _OPT_ATTRS = ("opt_ugv_actor", "opt_ugv_critic", "opt_uav_actor",
                  "opt_uav_critic")
    _UGV_BUFFER_KEYS = ("agent", "obs", "actions", "reward", "next_obs", "done")
    _UAV_BUFFER_KEYS = ("obs", "action", "reward", "next_obs", "done")

    @staticmethod
    def _buffer_state(buffer: deque, keys: tuple[str, ...]) -> dict:
        """Replay deque -> per-field stacked arrays (entries are uniform)."""
        state: dict = {"size": len(buffer)}
        for key in keys:
            if buffer:
                # Checkpoint serialisation path, not per-step cost.
                state[key] = np.stack([np.asarray(entry[key]) for entry in buffer])  # reprolint: disable=PF002
        return state

    @staticmethod
    def _buffer_from_state(state: dict, keys: tuple[str, ...], maxlen: int) -> deque:
        size = int(state["size"])
        entries = []
        for i in range(size):
            entry = {}
            for key in keys:
                value = np.asarray(state[key])[i]
                if key == "reward":
                    entry[key] = float(value)
                elif key == "done":
                    entry[key] = bool(value)
                elif key == "agent":
                    entry[key] = int(value)
                else:
                    entry[key] = value
            entries.append(entry)
        return deque(entries, maxlen=maxlen)

    def state_dict(self) -> dict:
        """Everything a resumed MADDPG run needs for bit-identical
        continuation: actors/critics and their targets, all four Adam
        states, both replay buffers, and the exploration/env rng streams.
        """
        from ..nn import rng_state

        return {
            "iteration": int(self._iteration),
            "rng": rng_state(self.rng),
            "env_rng": self.env.rng_state(),
            "modules": {name: getattr(self, name).state_dict()
                        for name in self._MODULE_ATTRS},
            "optimizers": {name: getattr(self, name).state_dict()
                           for name in self._OPT_ATTRS},
            "ugv_buffer": self._buffer_state(self.ugv_buffer, self._UGV_BUFFER_KEYS),
            "uav_buffer": self._buffer_state(self.uav_buffer, self._UAV_BUFFER_KEYS),
        }

    def load_state_dict(self, state: dict) -> None:
        from ..nn import rng_from_state, validate_state_dict

        for name in self._MODULE_ATTRS:
            validate_state_dict(getattr(self, name), state["modules"][name],
                                f"{name} state")
        for name in self._MODULE_ATTRS:
            getattr(self, name).load_state_dict(state["modules"][name])
        for name in self._OPT_ATTRS:
            getattr(self, name).load_state_dict(state["optimizers"][name])
        self._iteration = int(state["iteration"])
        self.rng = rng_from_state(state["rng"])
        self.env.set_rng_state(state["env_rng"])
        self.ugv_buffer = self._buffer_from_state(
            state["ugv_buffer"], self._UGV_BUFFER_KEYS, self.ugv_buffer.maxlen)
        self.uav_buffer = self._buffer_from_state(
            state["uav_buffer"], self._UAV_BUFFER_KEYS, self.uav_buffer.maxlen)
