"""GAM baseline [14]: GNN + LSTM traversal of importance-ranked stops.

GAM combines graph convolution with an LSTM that walks the stop nodes in
learned-importance order, capturing long- and short-term spatio-temporal
structure — but, like GAT, it reasons from a single UGV's viewpoint.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GARLConfig
from ..core.policies import UGVPolicyOutput, bias_release_head
from ..env.airground import AirGroundEnv
from ..maps.stop_graph import StopGraph
from ..nn import MLP, GCNLayer, Linear, LSTMCell, Module, Tensor, normalized_laplacian
from .base import BatchedUGVPolicyMixin, PolicyAgent, assemble_output

__all__ = ["GAMUGVPolicy", "GAMAgent"]


class GAMUGVPolicy(BatchedUGVPolicyMixin, Module):
    """GCN features -> top-k importance ranking -> LSTM traversal -> heads."""

    def __init__(self, stops: StopGraph, config: GARLConfig,
                 rng: np.random.Generator | None = None, layers: int = 2, top_k: int = 8):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.laplacian = normalized_laplacian(stops.adjacency_matrix())
        self.top_k = min(top_k, stops.num_stops)
        dim = config.hidden_dim
        dims = [3] + [dim] * layers
        self.gcn_layers = [GCNLayer(a, b, rng=rng, activation="tanh")
                           for a, b in zip(dims[:-1], dims[1:])]
        self.importance = Linear(dim, 1, rng=rng)
        self.lstm = LSTMCell(dim, dim, rng=rng)
        self.node_head = Linear(dim, 1, rng=rng, init="orthogonal", gain=0.01)
        self.release_head = MLP([dim, dim, 1], rng=rng, final_gain=0.01)
        bias_release_head(self.release_head)
        self.value_head = MLP([dim, dim, 1], rng=rng, final_gain=1.0)

    def _traverse(self, h: Tensor) -> Tensor:
        """Feed the k most important node features through the LSTM.

        The visit order is a hard (non-differentiable) argsort, so the
        importance scores also gate each visited node's features; without
        the gate the importance head gets no gradient at all (graphcheck
        GC002) and the "learned" ranking would stay at its random init.
        """
        ranking = self.importance(h).squeeze(-1)  # (B,)
        order = np.argsort(-ranking.numpy())[: self.top_k]
        gate = ranking.sigmoid()
        state = self.lstm.init_state(1)
        out = state[0]
        for idx in order:
            node = h[int(idx)] * gate[int(idx)]
            out, state = self.lstm(node.reshape(1, -1), state)
        return out.squeeze(0)

    def forward(self, observations) -> UGVPolicyOutput:
        scores, releases, values = [], [], []
        for obs in observations:
            h = Tensor(np.asarray(obs.stop_features, dtype=float))
            for layer in self.gcn_layers:
                h = layer(h, self.laplacian)
            summary = self._traverse(h)
            scores.append(self.node_head(h).squeeze(-1))
            releases.append(self.release_head(summary).squeeze(-1))
            values.append(self.value_head(summary).squeeze(-1))
        return assemble_output(scores, releases, values, observations)


class GAMAgent(PolicyAgent):
    name = "GAM"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None):
        config = config or GARLConfig()
        rng = np.random.default_rng(config.seed)
        super().__init__(env, GAMUGVPolicy(env.stops, config, rng=rng), config)
