"""Agent registry: build GARL, its ablations, or any baseline by name."""

from __future__ import annotations

from typing import Callable

from ..core.config import GARLConfig
from ..core.garl import GARLAgent
from ..env.airground import AirGroundEnv
from .aecomm import AECommAgent
from .cubicmap import CubicMapAgent
from .dgn import DGNAgent
from .gam import GAMAgent
from .gat import GATAgent
from .heuristic import GreedyAgent
from .ic3net import IC3NetAgent
from .maddpg import MADDPGAgent
from .random_agent import RandomAgent

__all__ = ["make_agent", "AGENT_NAMES", "METHOD_LABELS"]


def _garl(env: AirGroundEnv, config: GARLConfig) -> GARLAgent:
    return GARLAgent(env, config)


def _garl_wo_mc(env: AirGroundEnv, config: GARLConfig) -> GARLAgent:
    return GARLAgent(env, config.ablated(mc=False, ecomm=True))


def _garl_wo_e(env: AirGroundEnv, config: GARLConfig) -> GARLAgent:
    return GARLAgent(env, config.ablated(mc=True, ecomm=False))


def _garl_wo_mc_e(env: AirGroundEnv, config: GARLConfig) -> GARLAgent:
    return GARLAgent(env, config.ablated(mc=False, ecomm=False))


_FACTORIES: dict[str, Callable[[AirGroundEnv, GARLConfig], object]] = {
    "garl": _garl,
    "garl_wo_mc": _garl_wo_mc,
    "garl_wo_e": _garl_wo_e,
    "garl_wo_mc_e": _garl_wo_mc_e,
    "cubicmap": CubicMapAgent,
    "gam": GAMAgent,
    "gat": GATAgent,
    "aecomm": AECommAgent,
    "dgn": DGNAgent,
    "ic3net": IC3NetAgent,
    "maddpg": MADDPGAgent,
    "random": RandomAgent,
    "greedy": GreedyAgent,
}

AGENT_NAMES = tuple(sorted(_FACTORIES))

METHOD_LABELS = {
    "garl": "GARL",
    "garl_wo_mc": "GARL w/o MC",
    "garl_wo_e": "GARL w/o E",
    "garl_wo_mc_e": "GARL w/o MC, E",
    "cubicmap": "CubicMap",
    "gam": "GAM",
    "gat": "GAT",
    "aecomm": "AE-Comm",
    "dgn": "DGN",
    "ic3net": "IC3Net",
    "maddpg": "MADDPG",
    "random": "Random",
    "greedy": "Greedy",
}


def make_agent(name: str, env: AirGroundEnv, config: GARLConfig | None = None):
    """Instantiate an agent by registry name (see ``AGENT_NAMES``)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(f"unknown agent {name!r}; choose from {AGENT_NAMES}")
    return _FACTORIES[key](env, config or GARLConfig())
