"""``repro.baselines`` — the eight comparison methods of Section V-D."""

from .aecomm import AECommAgent, AECommUGVPolicy
from .base import BatchedUGVPolicyMixin, NodeScorer, PolicyAgent, assemble_output, flat_obs_dim
from .cubicmap import CubicMapAgent, CubicMapUGVPolicy
from .dgn import DGNAgent, DGNUGVPolicy
from .gam import GAMAgent, GAMUGVPolicy
from .gat import GATAgent, GATUGVPolicy
from .heuristic import GreedyAgent, GreedyUAVPolicy, GreedyUGVPolicy
from .ic3net import IC3NetAgent, IC3NetUGVPolicy
from .maddpg import MADDPGAgent
from .random_agent import RandomAgent, RandomUAVPolicy, RandomUGVPolicy
from .registry import AGENT_NAMES, METHOD_LABELS, make_agent

__all__ = [
    "PolicyAgent",
    "BatchedUGVPolicyMixin",
    "NodeScorer",
    "assemble_output",
    "flat_obs_dim",
    "RandomAgent",
    "RandomUGVPolicy",
    "RandomUAVPolicy",
    "GATAgent",
    "GreedyAgent",
    "GreedyUGVPolicy",
    "GreedyUAVPolicy",
    "GATUGVPolicy",
    "GAMAgent",
    "GAMUGVPolicy",
    "CubicMapAgent",
    "CubicMapUGVPolicy",
    "AECommAgent",
    "AECommUGVPolicy",
    "DGNAgent",
    "DGNUGVPolicy",
    "IC3NetAgent",
    "IC3NetUGVPolicy",
    "MADDPGAgent",
    "make_agent",
    "AGENT_NAMES",
    "METHOD_LABELS",
]
