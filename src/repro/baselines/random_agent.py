"""Random baseline: uniform actions over the feasible action set."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.ippo import run_episode
from ..core.policies import UGVPolicyOutput
from ..env.airground import AirGroundEnv
from ..env.metrics import MetricSnapshot
from ..nn import DiagGaussian, Module, Tensor

__all__ = ["RandomUGVPolicy", "RandomUAVPolicy", "RandomAgent"]


class RandomUGVPolicy(Module):
    """Uniform logits over feasible UGV actions; zero values."""

    def forward(self, observations) -> UGVPolicyOutput:
        rows = [Tensor(np.where(obs.action_mask, 0.0, -1e9)) for obs in observations]
        logits = Tensor.stack(rows, axis=0)
        values = Tensor(np.zeros(len(observations)))
        return UGVPolicyOutput(logits, values)


class RandomUAVPolicy(Module):
    """Zero-mean unit-ish Gaussian movement in every direction."""

    def forward(self, observations):
        n = len(observations)
        mean = Tensor(np.zeros((n, 2)))
        log_std = Tensor(np.zeros(2))  # std 1.0 in normalised units
        return DiagGaussian(mean, log_std), Tensor(np.zeros(n))


class RandomAgent:
    """The "Random" row of the paper's comparison: no learning at all."""

    name = "Random"

    def __init__(self, env: AirGroundEnv, config=None, seed: int = 0):
        self.env = env
        self.ugv_policy = RandomUGVPolicy()
        self.uav_policy = RandomUAVPolicy()
        self.rng = np.random.default_rng(seed)

    def train(self, iterations: int, episodes_per_iteration: int = 1, callback=None) -> list:
        """No-op: the random policy has nothing to learn."""
        return []

    def evaluate(self, episodes: int = 1, greedy: bool = False) -> MetricSnapshot:
        # Greedy mode would always pick action 0; random evaluation always samples.
        totals = np.zeros(4)
        for _ in range(episodes):
            snap = run_episode(self.env, self.ugv_policy, self.uav_policy,
                               self.rng, greedy=False)
            totals += np.array([snap.psi, snap.xi, snap.zeta, snap.beta])
        psi, xi, zeta, beta = totals / episodes
        return MetricSnapshot(float(psi), float(xi), float(zeta), float(beta))

    def rollout_trace(self, greedy: bool = False, seed: int | None = None) -> list[dict]:
        trace: list[dict] = []
        if seed is not None:
            self.env.reset(seed)
        run_episode(self.env, self.ugv_policy, self.uav_policy, self.rng,
                    greedy=False, trace=trace)
        return trace

    def save(self, directory: str | Path) -> None:
        Path(directory).mkdir(parents=True, exist_ok=True)

    def load(self, directory: str | Path) -> None:
        return None

    def state_dict(self) -> dict:
        """Resumable state: just the sampling and env rng streams."""
        from ..nn import rng_state

        return {"rng": rng_state(self.rng), "env_rng": self.env.rng_state()}

    def load_state_dict(self, state: dict) -> None:
        from ..nn import rng_from_state

        self.rng = rng_from_state(state["rng"])
        self.env.set_rng_state(state["env_rng"])
