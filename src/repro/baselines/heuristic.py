"""Greedy heuristic coalition — a non-learning planner baseline.

Not part of the paper's comparison set, but a useful sanity reference for
users: UGVs drive toward the reachable stop with the most *observed*
collectible data and release their UAVs when the local stop looks rich;
UAVs fly straight toward the densest data cell in their observation crop.

Because it plans on the same partial observations the learned policies
see, it bounds what pure myopic exploitation achieves without any
coordination — learned methods should beat it once trained, chiefly on
fairness and cooperation.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.ippo import run_episode
from ..core.policies import UGVPolicyOutput
from ..env.airground import AirGroundEnv
from ..env.metrics import MetricSnapshot
from ..nn import DiagGaussian, Module, Tensor

__all__ = ["GreedyUGVPolicy", "GreedyUAVPolicy", "GreedyAgent"]

_CHOSEN = 50.0  # logit given to the chosen action (softmax ~ deterministic)


class GreedyUGVPolicy(Module):
    """Move toward observed data; release when the local stop is rich."""

    def __init__(self, release_fraction: float = 0.5):
        super().__init__()
        if not 0.0 < release_fraction <= 1.0:
            raise ValueError("release_fraction must be in (0, 1]")
        self.release_fraction = release_fraction

    def forward(self, observations) -> UGVPolicyOutput:
        rows = []
        for obs in observations:
            b = obs.num_stops
            logits = np.where(obs.action_mask, 0.0, -1e9)
            observed = np.maximum(obs.stop_features[:, 2], 0.0)  # mask const -> 0
            feasible = obs.action_mask[:b]
            candidate_values = np.where(feasible, observed, -np.inf)
            best_stop = int(np.argmax(candidate_values))
            local = observed[obs.current_stop]
            peak = max(candidate_values[best_stop], 1e-12)
            if local > 0 and local >= self.release_fraction * peak:
                logits[b] = _CHOSEN  # release here
            else:
                logits[best_stop] = _CHOSEN
            rows.append(Tensor(logits))
        return UGVPolicyOutput(Tensor.stack(rows, axis=0),
                               Tensor(np.zeros(len(observations))))


class GreedyUAVPolicy(Module):
    """Fly toward the densest data cell visible in the egocentric crop.

    Two pragmatic behaviours on top of pure pursuit:

    * **hover** when the target cell is already within ~sensing range
      (collection continues, energy is saved);
    * **deflect** around obstacles — if the straight ray toward the
      target crosses an obstacle cell, rotate the heading in 45-degree
      steps until the first step of the path is clear.
    """

    # Cells closer than this to the target count as "in sensing range".
    HOVER_CELLS = 2.0

    def __init__(self, cell_metres: float = 20.0, max_step: float = 100.0):
        super().__init__()
        if cell_metres <= 0 or max_step <= 0:
            raise ValueError("cell_metres and max_step must be positive")
        self.cells_per_step = max_step / cell_metres

    def forward(self, observations):
        means = [self._movement(obs) for obs in observations]
        mean = Tensor(np.asarray(means))
        log_std = Tensor(np.full(2, -3.0))  # near-deterministic
        return DiagGaussian(mean, log_std), Tensor(np.zeros(len(observations)))

    @staticmethod
    def _dilate(obstacles: np.ndarray) -> np.ndarray:
        """Grow obstacles by one cell: rasters sample cell centres, so a
        building edge can stick up to half a cell into a "free" cell, and
        the UAV's own sub-cell position adds another half-cell of error."""
        padded = np.pad(obstacles, 1, mode="edge")
        out = obstacles.copy()
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                out = np.maximum(out, padded[1 + dr:1 + dr + obstacles.shape[0],
                                             1 + dc:1 + dc + obstacles.shape[1]])
        return out

    def _movement(self, obs) -> np.ndarray:
        """Heading * magnitude, in normalised units (1.0 = max step)."""
        obstacles = self._dilate(obs.grid[0])
        data = obs.grid[1]
        centre = data.shape[0] // 2
        if data.max() <= 0:
            # Nothing visible: drift outward (away from the carrier),
            # deflecting if that heading is blocked.
            return self._clear_path(obstacles, np.array([0.7, 0.7]), centre, 1.5)
        r, c = np.unravel_index(int(np.argmax(data)), data.shape)
        # Raster rows grow with world y (no flip in the crop): +row = north.
        offset = np.array([c - centre, r - centre], dtype=float)
        if np.linalg.norm(offset) <= self.HOVER_CELLS:
            return np.zeros(2)  # already collecting: hover
        # Plan around buildings with a BFS over the (dilated-) free cells
        # of the crop — sensors hang on walls, so pure pursuit dead-ends.
        return self._plan_toward(obstacles, (r, c), centre)

    def _plan_toward(self, obstacles: np.ndarray, goal: tuple[int, int],
                     centre: int) -> np.ndarray:
        """BFS from the centre cell to the free cell nearest ``goal``."""
        from collections import deque

        size = obstacles.shape[0]
        free = obstacles < 0.5
        start = (centre, centre)
        if not free[start]:
            return np.zeros(2)  # inside the dilated margin: hold position
        parent: dict[tuple[int, int], tuple[int, int]] = {start: start}
        queue = deque([start])
        best = start
        best_gap = np.hypot(start[0] - goal[0], start[1] - goal[1])
        while queue:
            cell = queue.popleft()
            gap = np.hypot(cell[0] - goal[0], cell[1] - goal[1])
            if gap < best_gap:
                best, best_gap = cell, gap
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    nxt = (cell[0] + dr, cell[1] + dc)
                    if (0 <= nxt[0] < size and 0 <= nxt[1] < size
                            and free[nxt] and nxt not in parent):
                        parent[nxt] = cell
                        queue.append(nxt)
        if best == start:
            return np.zeros(2)  # nowhere closer to go
        # Walk the path back from the best cell; the waypoint is the last
        # path cell within one timeslot's flight range.
        path = [best]
        while path[-1] != start:
            path.append(parent[path[-1]])
        path.reverse()  # start .. best
        reach = int(max(1, np.floor(self.cells_per_step)))
        waypoint = path[min(reach, len(path) - 1)]
        delta = np.array([waypoint[1] - centre, waypoint[0] - centre], dtype=float)
        magnitude = min(1.0, np.linalg.norm(delta) / self.cells_per_step)
        norm = np.linalg.norm(delta)
        return delta / norm * magnitude if norm > 0 else np.zeros(2)

    def _clear_path(self, obstacles: np.ndarray, unit: np.ndarray, centre: int,
                    travel_cells: float) -> np.ndarray:
        """Return a normalised movement whose whole path is obstacle-free.

        Tries the desired heading first, then 45-degree deflections; for
        each candidate the path is probed cell by cell and truncated just
        before the first obstacle.
        """
        size = obstacles.shape[0]
        origin = centre + 0.5  # the UAV sits at its cell's centre
        for angle in (0.0, 0.785, -0.785, 1.571, -1.571, 2.356, -2.356, 3.1416):
            cos, sin = np.cos(angle), np.sin(angle)
            heading = np.array([unit[0] * cos - unit[1] * sin,
                                unit[0] * sin + unit[1] * cos])
            free = 0.0
            step = 0.25
            while free + step <= travel_cells + 1e-9:
                probe = free + step
                pc = int(np.floor(origin + heading[0] * probe))
                pr = int(np.floor(origin + heading[1] * probe))
                if not (0 <= pr < size and 0 <= pc < size):
                    break
                if obstacles[pr, pc] >= 0.5:
                    break
                free = probe
            if free >= 0.5:
                magnitude = min(1.0, free / self.cells_per_step)
                return heading * magnitude
        return np.zeros(2)  # boxed in: hover


class GreedyAgent:
    """Facade matching the learned agents' interface (training is a no-op)."""

    name = "Greedy"

    def __init__(self, env: AirGroundEnv, config=None, seed: int = 0,
                 release_fraction: float = 0.5):
        self.env = env
        self.ugv_policy = GreedyUGVPolicy(release_fraction)
        self.uav_policy = GreedyUAVPolicy(cell_metres=env.config.uav_obs_cell,
                                          max_step=env.config.uav_max_step)
        self.rng = np.random.default_rng(seed)

    def train(self, iterations: int, episodes_per_iteration: int = 1,
              callback=None) -> list:
        """No-op: the heuristic has nothing to learn."""
        return []

    def evaluate(self, episodes: int = 1, greedy: bool = True) -> MetricSnapshot:
        totals = np.zeros(4)
        for _ in range(episodes):
            snap = run_episode(self.env, self.ugv_policy, self.uav_policy,
                               self.rng, greedy=greedy)
            totals += np.array([snap.psi, snap.xi, snap.zeta, snap.beta])
        psi, xi, zeta, beta = totals / episodes
        return MetricSnapshot(float(psi), float(xi), float(zeta), float(beta))

    def rollout_trace(self, greedy: bool = True, seed: int | None = None) -> list[dict]:
        trace: list[dict] = []
        if seed is not None:
            self.env.reset(seed)
        run_episode(self.env, self.ugv_policy, self.uav_policy, self.rng,
                    greedy=greedy, trace=trace)
        return trace

    def save(self, directory: str | Path) -> None:
        Path(directory).mkdir(parents=True, exist_ok=True)

    def load(self, directory: str | Path) -> None:
        return None

    def state_dict(self) -> dict:
        """Resumable state: just the sampling and env rng streams."""
        from ..nn import rng_state

        return {"rng": rng_state(self.rng), "env_rng": self.env.rng_state()}

    def load_state_dict(self, state: dict) -> None:
        from ..nn import rng_from_state

        self.rng = rng_from_state(state["rng"])
        self.env.set_rng_state(state["env_rng"])
