"""CubicMap baseline [11]: memory-augmented CNN over a rasterised state.

The original FD-MAPPO (Cubic Map) pairs a CNN encoder with an external
memory using cubic writing / spatially-contextual reading.  Here the
memory is a learned slot matrix read by content attention (a feed-forward
memory-augmented network): the defining trait the paper's comparison
leans on — a CNN world view with *no* graph structure — is preserved,
which is exactly why it trails the GNN methods on stop-network tasks.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GARLConfig
from ..core.policies import UGVPolicyOutput, bias_release_head
from ..env.airground import AirGroundEnv
from ..maps.stop_graph import StopGraph
from ..nn import MLP, Conv2d, Linear, Module, Parameter, Tensor, annotate
from ..nn.init import xavier_uniform
from .base import BatchedUGVPolicyMixin, NodeScorer, PolicyAgent, assemble_output

__all__ = ["CubicMapUGVPolicy", "CubicMapAgent"]


class CubicMapUGVPolicy(BatchedUGVPolicyMixin, Module):
    """Rasterised observation -> CNN -> slot-memory read -> heads."""

    def __init__(self, stops: StopGraph, config: GARLConfig,
                 rng: np.random.Generator | None = None,
                 grid: int = 16, memory_slots: int = 16):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.grid = grid
        self.stops = stops
        dim = config.hidden_dim
        # Stop coordinates -> raster cells, precomputed once.
        extent = stops.positions.max(axis=0) + 1e-9
        cells = np.floor(stops.positions / extent * grid).astype(int)
        self._cells = np.clip(cells, 0, grid - 1)

        c = config.uav_channels
        self.conv1 = Conv2d(2, c, 3, stride=2, rng=rng)
        self.conv2 = Conv2d(c, 2 * c, 3, stride=2, rng=rng)
        side = ((grid - 3) // 2 + 1 - 3) // 2 + 1
        self.encoder = Linear(2 * c * side * side, dim, rng=rng)

        # External memory: learned slots read by content attention.
        self.memory = Parameter(xavier_uniform((memory_slots, dim), rng))
        self.read_query = Linear(dim, dim, rng=rng)

        self.node_scorer = NodeScorer(2 * dim, rng, hidden=dim)
        self.release_head = MLP([2 * dim, dim, 1], rng=rng, final_gain=0.01)
        bias_release_head(self.release_head)
        self.value_head = MLP([2 * dim, dim, 1], rng=rng, final_gain=1.0)

    def _rasterize(self, obs) -> np.ndarray:
        """Two channels: masked stop data and UGV presence."""
        image = np.zeros((2, self.grid, self.grid))
        np.add.at(image[0], (self._cells[:, 1], self._cells[:, 0]), obs.stop_features[:, 2])
        own_cell = self._cells[obs.current_stop]
        image[1, own_cell[1], own_cell[0]] = 1.0
        for stop in obs.ugv_stops:
            cell = self._cells[int(stop)]
            image[1, cell[1], cell[0]] += 0.5
        return image

    def forward(self, observations) -> UGVPolicyOutput:
        images = np.stack([self._rasterize(obs) for obs in observations])
        x = self.conv1(Tensor(images)).relu()
        x = self.conv2(x).relu()
        encoded = self.encoder(x.reshape(x.shape[0], -1)).tanh()  # (U, D)

        # Content-based memory read.
        query = self.read_query(encoded)  # (U, D)
        attention = annotate((query @ self.memory.transpose()).softmax(axis=-1),
                             "CubicMap.memory_attention")  # (U, S)
        read = attention @ self.memory  # (U, D)
        feature = Tensor.concat([encoded, read], axis=-1)  # (U, 2D)

        scores, releases, values = [], [], []
        for u, obs in enumerate(observations):
            scores.append(self.node_scorer(obs.stop_features, feature[u]))
            releases.append(self.release_head(feature[u]).squeeze(-1))
            values.append(self.value_head(feature[u]).squeeze(-1))
        return assemble_output(scores, releases, values, observations)


class CubicMapAgent(PolicyAgent):
    name = "CubicMap"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None):
        config = config or GARLConfig()
        rng = np.random.default_rng(config.seed)
        super().__init__(env, CubicMapUGVPolicy(env.stops, config, rng=rng), config)
