"""GAT baseline [13]: graph attention over the stop graph, single-UGV view.

Attention attaches importance to *immediate* neighbours only, and the
policy never sees the other UGVs' intents — exactly the two limitations
the paper attributes GAT's gap to.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GARLConfig
from ..core.policies import UGVPolicyOutput, bias_release_head
from ..env.airground import AirGroundEnv
from ..maps.stop_graph import StopGraph
from ..nn import MLP, GATLayer, Linear, Module, Tensor
from .base import BatchedUGVPolicyMixin, PolicyAgent, assemble_output

__all__ = ["GATUGVPolicy", "GATAgent"]


class GATUGVPolicy(BatchedUGVPolicyMixin, Module):
    """Stacked GAT layers -> per-stop scores + pooled release/value heads."""

    def __init__(self, stops: StopGraph, config: GARLConfig,
                 rng: np.random.Generator | None = None, layers: int = 2):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.adjacency = stops.adjacency_matrix()
        dim = config.hidden_dim
        dims = [3] + [dim] * layers
        self.gat_layers = [GATLayer(a, b, rng=rng) for a, b in zip(dims[:-1], dims[1:])]
        self.node_head = Linear(dim, 1, rng=rng, init="orthogonal", gain=0.01)
        self.release_head = MLP([dim, dim, 1], rng=rng, final_gain=0.01)
        bias_release_head(self.release_head)
        self.value_head = MLP([dim, dim, 1], rng=rng, final_gain=1.0)

    def forward(self, observations) -> UGVPolicyOutput:
        scores, releases, values = [], [], []
        for obs in observations:
            h = Tensor(np.asarray(obs.stop_features, dtype=float))
            for layer in self.gat_layers:
                h = layer(h, self.adjacency)
            pooled = h.mean(axis=0)
            scores.append(self.node_head(h).squeeze(-1))
            releases.append(self.release_head(pooled).squeeze(-1))
            values.append(self.value_head(pooled).squeeze(-1))
        return assemble_output(scores, releases, values, observations)


class GATAgent(PolicyAgent):
    name = "GAT"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None):
        config = config or GARLConfig()
        rng = np.random.default_rng(config.seed)
        super().__init__(env, GATUGVPolicy(env.stops, config, rng=rng), config)
