"""Shared infrastructure for the eight baselines (Section V-D).

Every baseline UGV policy produces, per agent, a per-stop score vector,
a release logit and a value — exactly the interface GARL's policy exposes
— and plugs into the same :class:`repro.core.IPPOTrainer`.  Performance
differences therefore isolate each method's *architecture*, which is what
the paper's comparison argues about.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.config import GARLConfig
from ..core.ippo import IPPOTrainer, TrainRecord, run_episode
from ..core.policies import UAVPolicy, UGVPolicyOutput
from ..env.airground import AirGroundEnv
from ..env.metrics import MetricSnapshot
from ..env.observation import UGVObsArrays, UGVObservation
from ..nn import MLP, Linear, Module, Tensor, load_checkpoint, save_checkpoint

__all__ = ["BatchedUGVPolicyMixin", "NodeScorer", "assemble_output",
           "flat_obs_dim", "PolicyAgent"]


class BatchedUGVPolicyMixin:
    """Adapter giving a sequential UGV policy the batched-forward contract.

    ``forward_batched`` accepts :class:`UGVObsArrays` with a leading
    replica axis and returns stacked ``(P, U, B + 1)`` logits / ``(P, U)``
    values.  The default implementation runs one sequential forward per
    replica — correct for any stateless policy, at unbatched speed; a
    policy with a genuinely vectorized path overrides it (as GARL's
    :class:`repro.core.policies.UGVPolicy` does natively).
    """

    supports_vectorized = True

    def forward_batched(self, obs: UGVObsArrays) -> UGVPolicyOutput:
        outputs = [self(obs.observations(p)) for p in range(obs.lead_shape[0])]
        logits = Tensor.stack([out.logits for out in outputs], axis=0)
        values = Tensor.stack([out.values for out in outputs], axis=0)
        return UGVPolicyOutput(logits, values)


def flat_obs_dim(env: AirGroundEnv) -> int:
    """Dimension of UGVObservation.flat(): B*3 stop features + U*2 positions."""
    return env.num_stops * 3 + env.config.num_ugvs * 2


class NodeScorer(Module):
    """Scores each stop from its raw features conditioned on an agent code.

    ``score_b = MLP([x_b ; cond])`` applied batched over the B stops —
    the common per-stop action head for baselines without an intrinsic
    graph representation.
    """

    def __init__(self, cond_dim: int, rng: np.random.Generator,
                 node_dim: int = 3, hidden: int = 32):
        super().__init__()
        self.net = MLP([node_dim + cond_dim, hidden, 1], rng=rng, final_gain=0.01)

    def forward(self, stop_features: np.ndarray, cond: Tensor) -> Tensor:
        nodes = Tensor(np.asarray(stop_features, dtype=float))  # (B, 3)
        b = nodes.shape[0]
        cond_rows = cond.reshape(1, -1) + Tensor(np.zeros((b, cond.shape[-1])))
        return self.net(Tensor.concat([nodes, cond_rows], axis=-1)).squeeze(-1)


def assemble_output(stop_scores: list[Tensor], release_logits: list[Tensor],
                    values: list[Tensor], observations: list[UGVObservation]) -> UGVPolicyOutput:
    """Stack per-agent heads into a masked joint UGVPolicyOutput."""
    rows = []
    for scores, release, obs in zip(stop_scores, release_logits, observations):
        row = Tensor.concat([scores, release.reshape(1)], axis=0)
        rows.append(row + Tensor(np.where(obs.action_mask, 0.0, -1e9)))
    logits = Tensor.stack(rows, axis=0)
    value_vec = Tensor.stack([v.reshape(()) for v in values], axis=0)
    return UGVPolicyOutput(logits, value_vec)


class PolicyAgent:
    """Facade shared by all IPPO-based baselines.

    Subclasses (or the registry) supply a UGV policy module; the UAV side
    always uses the same CNN policy as GARL, matching the paper's setup
    where baselines differ in UGV spatial modelling / communication.
    """

    name = "baseline"

    def __init__(self, env: AirGroundEnv, ugv_policy: Module,
                 config: GARLConfig | None = None):
        self.env = env
        self.config = config or GARLConfig()
        rng = np.random.default_rng(self.config.seed)
        self.ugv_policy = ugv_policy
        self.uav_policy = UAVPolicy(env.config.uav_obs_size, self.config, rng=rng)
        self.trainer = IPPOTrainer(env, self.ugv_policy, self.uav_policy,
                                   self.config.ppo, seed=self.config.seed)

    def train(self, iterations: int, episodes_per_iteration: int = 1,
              callback=None, num_envs: int = 1,
              total_iterations: int | None = None) -> list[TrainRecord]:
        return self.trainer.train(iterations, episodes_per_iteration, callback,
                                  num_envs=num_envs,
                                  total_iterations=total_iterations)

    def evaluate(self, episodes: int = 1, greedy: bool = True) -> MetricSnapshot:
        return self.trainer.evaluate(episodes, greedy)

    def rollout_trace(self, greedy: bool = True, seed: int | None = None) -> list[dict]:
        trace: list[dict] = []
        rng = np.random.default_rng(seed if seed is not None else self.config.seed)
        if seed is not None:
            self.env.reset(seed)
        run_episode(self.env, self.ugv_policy, self.uav_policy, rng,
                    greedy=greedy, trace=trace)
        return trace

    def save(self, directory: str | Path) -> None:
        directory = Path(directory)
        save_checkpoint(self.ugv_policy, directory / "ugv_policy.npz", {"name": self.name})
        save_checkpoint(self.uav_policy, directory / "uav_policy.npz", {"name": self.name})

    def load(self, directory: str | Path) -> None:
        directory = Path(directory)
        load_checkpoint(self.ugv_policy, directory / "ugv_policy.npz")
        load_checkpoint(self.uav_policy, directory / "uav_policy.npz")

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full training state (parameters + trainer snapshot).

        Policies exposing ``get_extra_state`` (IC3Net's recurrent core)
        contribute their non-parameter state too.
        """
        state = {"ugv_policy": self.ugv_policy.state_dict(),
                 "uav_policy": self.uav_policy.state_dict(),
                 "trainer": self.trainer.state_dict()}
        extra_fn = getattr(self.ugv_policy, "get_extra_state", None)
        if extra_fn is not None:
            state["ugv_policy_extra"] = extra_fn()
        return state

    def load_state_dict(self, state: dict) -> None:
        from ..nn import validate_state_dict

        validate_state_dict(self.ugv_policy, state["ugv_policy"], "ugv_policy state")
        validate_state_dict(self.uav_policy, state["uav_policy"], "uav_policy state")
        self.ugv_policy.load_state_dict(state["ugv_policy"])
        self.uav_policy.load_state_dict(state["uav_policy"])
        self.trainer.load_state_dict(state["trainer"])
        set_extra = getattr(self.ugv_policy, "set_extra_state", None)
        if set_extra is not None:
            set_extra(state.get("ugv_policy_extra") or {})
