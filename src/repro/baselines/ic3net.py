"""IC3Net baseline [15]: individualized LSTM policies with gated comm.

Each agent runs an LSTM over time; a learned binary-ish gate decides when
to communicate, and the communication vector is the gated mean of the
other agents' hidden states.  The recurrent state advances during rollout
and is *replayed from cache* during PPO updates (stored-state training, a
standard recurrent-PPO arrangement): observation lists are reused by
identity between rollout and update, so the incoming state is looked up
by ``id()``.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GARLConfig
from ..core.policies import UGVPolicyOutput, bias_release_head
from ..env.airground import AirGroundEnv
from ..nn import MLP, Linear, LSTMCell, Module, Tensor
from .base import NodeScorer, PolicyAgent, assemble_output, flat_obs_dim

__all__ = ["IC3NetUGVPolicy", "IC3NetAgent"]


class IC3NetUGVPolicy(Module):
    """Encoder -> gated mean communication -> LSTM core -> heads."""

    # The recurrent state advances with each rollout step and replays by
    # observation-list identity, so replica-interleaved (vectorized)
    # collection would corrupt it; the trainer falls back to sequential.
    supports_vectorized = False

    def __init__(self, obs_dim: int, config: GARLConfig,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        dim = config.hidden_dim
        self.dim = dim
        self.encoder = MLP([obs_dim, 2 * dim, dim], rng=rng, final_gain=1.0)
        self.gate = Linear(dim, 1, rng=rng)
        self.lstm = LSTMCell(2 * dim, dim, rng=rng)
        self.node_scorer = NodeScorer(dim, rng, hidden=dim)
        self.release_head = MLP([dim, dim, 1], rng=rng, final_gain=0.01)
        bias_release_head(self.release_head)
        self.value_head = MLP([dim, dim, 1], rng=rng, final_gain=1.0)
        self._state: tuple[Tensor, Tensor] | None = None
        self._state_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def begin_episode(self) -> None:
        """Reset the recurrent state at the start of each episode."""
        self._state = None

    def post_update(self) -> None:
        """Drop cached incoming states once an update cycle finishes."""
        self._state_cache.clear()

    # -- checkpointing --------------------------------------------------
    def get_extra_state(self) -> dict:
        """Non-parameter recurrent state for full-training checkpoints.

        At iteration boundaries the replay cache is empty (cleared by
        :meth:`post_update`), so only the carried LSTM state needs
        capturing; ``begin_episode`` resets it at the next episode start,
        but capturing it keeps mid-episode snapshots honest too.
        """
        if self._state is None:
            return {}
        h, c = self._state
        return {"h": h.numpy().copy(), "c": c.numpy().copy()}

    def set_extra_state(self, extra: dict) -> None:
        if extra:
            self._state = (Tensor(np.asarray(extra["h"], dtype=float)),
                           Tensor(np.asarray(extra["c"], dtype=float)))
        else:
            self._state = None
        self._state_cache.clear()

    def _incoming_state(self, observations) -> tuple[Tensor, Tensor]:
        key = id(observations)
        if key in self._state_cache:
            h, c = self._state_cache[key]
            return Tensor(h), Tensor(c)
        if self._state is None:
            self._state = self.lstm.init_state(len(observations))
        # Record the (detached) incoming state for later replay.
        h, c = self._state
        self._state_cache[key] = (h.numpy().copy(), c.numpy().copy())
        return Tensor(h.numpy().copy()), Tensor(c.numpy().copy())

    def forward(self, observations) -> UGVPolicyOutput:
        u = len(observations)
        flats = np.stack([obs.flat() for obs in observations])
        encoded = self.encoder(Tensor(flats)).tanh()  # (U, D)

        h_in, c_in = self._incoming_state(observations)

        # Gated mean communication from the other agents' hidden states.
        gates = self.gate(h_in).sigmoid()  # (U, 1)
        gated = gates * h_in  # (U, D)
        if u > 1:
            total = gated.sum(axis=0, keepdims=True)
            comm = (total - gated) / float(u - 1)
        else:
            comm = Tensor(np.zeros_like(gated.data))

        core_in = Tensor.concat([encoded, comm], axis=-1)
        h_out, state = self.lstm(core_in, (h_in, c_in))
        # Advance live rollout state (detached; replay uses the cache).
        self._state = (Tensor(state[0].numpy().copy()), Tensor(state[1].numpy().copy()))

        scores, releases, values = [], [], []
        for i, obs in enumerate(observations):
            scores.append(self.node_scorer(obs.stop_features, h_out[i]))
            releases.append(self.release_head(h_out[i]).squeeze(-1))
            values.append(self.value_head(h_out[i]).squeeze(-1))
        return assemble_output(scores, releases, values, observations)


class IC3NetAgent(PolicyAgent):
    name = "IC3Net"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None):
        config = config or GARLConfig()
        rng = np.random.default_rng(config.seed)
        super().__init__(env, IC3NetUGVPolicy(flat_obs_dim(env), config, rng=rng), config)
