"""Analysis passes over the graph IR.

Each pass takes a :class:`~repro.analysis.graphcheck.ir.GraphIR` and
returns a list of :class:`GraphDiagnostic`.  Codes follow the reprolint
convention (``RLxxx`` for source rules, ``GCxxx`` for graph passes):

========  =====================  ========  ==================================
code      name                   severity  what it verifies
========  =====================  ========  ==================================
GC001     shape-check            error     symbolic shape propagation with a
                                           polymorphic batch dimension, plus
                                           suspicious mutual broadcasts
GC002     detached-parameter     error     every parameter has a gradient
                                           path to the traced loss
GC003     softmax-invariant      error     softmax rows sum to 1; masked
                                           logits carry no probability
GC004     tape-growth            error     consecutive steps neither grow the
                                           tape across step boundaries nor
                                           drift in op structure
GC005     common-subexpression   info      identical subgraphs computed more
                                           than once (caching opportunities)
========  =====================  ========  ==================================
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .ir import (GraphIR, IRNode, BINARY_BROADCAST_OPS,
                 OPAQUE_BATCH_PRESERVING_OPS, UNARY_SAME_SHAPE_OPS)

__all__ = [
    "GraphDiagnostic",
    "PASSES",
    "check_shapes",
    "check_detached_params",
    "check_softmax_invariants",
    "check_tape_growth",
    "check_common_subexpressions",
    "run_all_passes",
]

# Logits at or below this are treated as masked (the codebase masks
# infeasible actions by adding a -1e9 penalty before softmax).
_MASK_THRESHOLD = -1e8


class GraphDiagnostic:
    """One finding, formatted in the reprolint ``path:line:`` style."""

    __slots__ = ("code", "name", "severity", "message", "site")

    def __init__(self, code: str, name: str, severity: str, message: str,
                 node: IRNode | None = None, site: str = ""):
        self.code = code
        self.name = name
        self.severity = severity  # "error" | "warning" | "info"
        self.message = message
        self.site = site or (node.location() if node is not None else "<graph>")

    def format(self) -> str:
        return f"{self.site}: {self.code} {self.message} [{self.name}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphDiagnostic({self.format()!r})"


# ----------------------------------------------------------------------
# GC001 — symbolic shape propagation
# ----------------------------------------------------------------------
# A symbolic dimension is (size, sym): the concrete size observed in the
# trace plus an optional symbol name ("B" marks the polymorphic batch
# axis).  Propagating symbols through the recorded ops proves that a
# graph traced at one batch size is shape-correct at every batch size;
# an op that contracts, reshapes away, or misaligns the symbol only
# works at the traced size and is reported.

# Classification sets come from the shared op registry in ``ir.py`` so
# the shape checker, the perf passes and the compiled executor agree on
# what each op is.
_UNARY_SAME_SHAPE = UNARY_SAME_SHAPE_OPS
_BINARY_BROADCAST = BINARY_BROADCAST_OPS
_OPAQUE_BATCH_PRESERVING = OPAQUE_BATCH_PRESERVING_OPS


def _dims(shape: tuple[int, ...]) -> list[tuple[int, str | None]]:
    return [(int(d), None) for d in shape]


def _concrete(sym_shape: list[tuple[int, str | None]]) -> tuple[int, ...]:
    return tuple(d for d, _ in sym_shape)


def _fmt(sym_shape: list[tuple[int, str | None]]) -> str:
    return "(" + ", ".join(s if s else str(d) for d, s in sym_shape) + ")"


def _broadcast_sym(a: list, b: list) -> tuple[list, bool]:
    """Numpy-style broadcast of two symbolic shapes.

    Returns the output shape and whether the broadcast *implicitly*
    expanded both operands — the (B,) + (B,1) -> (B,B) footgun where a
    missing reshape silently builds a quadratic intermediate.  Operands
    of equal rank with explicit singleton axes (the deliberate pairwise
    pattern ``x.expand_dims(1) - x.expand_dims(0)``) are not flagged:
    the explicit axes signal intent, implicit left-padding is where the
    accidents happen.
    """
    n = max(len(a), len(b))
    out: list = []
    a_expanded = b_expanded = False
    for i in range(n):
        da = a[i - (n - len(a))] if i >= n - len(a) else (1, None)
        db = b[i - (n - len(b))] if i >= n - len(b) else (1, None)
        if da[0] == 1 and db[0] > 1:
            a_expanded = True
            out.append(db)
        elif db[0] == 1 and da[0] > 1:
            b_expanded = True
            out.append(da)
        else:
            # Equal sizes: keep the symbol if either side carries one.
            out.append(da if da[1] else db)
    mutual = a_expanded and b_expanded and len(a) != len(b)
    return out, mutual


def _match_reduced(in_ss: list, out_shape: tuple[int, ...]) -> list:
    """Symbolic shape after a reduction, inferred from concrete shapes."""
    if len(out_shape) == len(in_ss):
        # keepdims: reduced axes became 1.
        return [d if d[0] == s else (int(s), None)
                for d, s in zip(in_ss, out_shape)]
    out: list = []
    j = 0
    for d in in_ss:
        if j < len(out_shape) and d[0] == out_shape[j]:
            out.append(d)
            j += 1
    while j < len(out_shape):  # pragma: no cover - defensive
        out.append((int(out_shape[j]), None))
        j += 1
    return out


def check_shapes(ir: GraphIR, batch_size: int | None = None,
                 prev_ir: GraphIR | None = None) -> list[GraphDiagnostic]:
    """GC001: propagate symbolic shapes; flag batch-breaking ops."""
    diags: list[GraphDiagnostic] = []
    sym: dict[int, list] = {}

    def diag(severity: str, message: str, node: IRNode) -> None:
        diags.append(GraphDiagnostic(
            "GC001", "shape-check", severity, message, node))

    for n in ir:
        if n.is_leaf:
            ss = _dims(n.shape)
            # Trainable leaves are parameters — their axes are fixed;
            # only data inputs carry the polymorphic batch axis.
            if (batch_size is not None and not n.is_param
                    and not n.requires_grad
                    and len(ss) >= 1 and ss[0][0] == batch_size):
                ss[0] = (batch_size, "B")
            sym[n.id] = ss
            continue

        ins = [sym[i] for i in n.inputs]
        out: list | None = None

        if n.op in _UNARY_SAME_SHAPE and len(ins) >= 1:
            out = list(ins[0])
        elif n.op in _BINARY_BROADCAST and len(ins) == 2:
            out, mutual = _broadcast_sym(ins[0], ins[1])
            if mutual:
                diag("warning",
                     f"broadcast of '{n.op}' expands both operands "
                     f"{_fmt(ins[0])} x {_fmt(ins[1])} -> {_fmt(out)}; "
                     f"if unintended, add the missing reshape/expand_dims",
                     n)
        elif n.op == "where" and len(ins) == 3:
            out, _ = _broadcast_sym(ins[1], ins[2])
            out, _ = _broadcast_sym(ins[0], out)
        elif n.op == "matmul" and len(ins) == 2:
            a, b = ins
            if len(a) >= 2 and len(b) >= 2:
                inner_a, inner_b = a[-1], b[-2]
                if inner_a[1] != inner_b[1]:
                    which = inner_a if inner_a[1] else inner_b
                    diag("error",
                         f"matmul contracts the batch dimension "
                         f"'{which[1]}' (size {which[0]}) against a fixed "
                         f"axis of size {inner_b[0] if inner_a[1] else inner_a[0]}; "
                         f"this only works at the traced batch size", n)
                batch, _ = _broadcast_sym(a[:-2], b[:-2])
                out = batch + [a[-2], b[-1]]
            else:
                out = _dims(n.shape)
        elif n.op in ("sum", "max", "min", "mean") and ins:
            out = _match_reduced(ins[0], n.shape)
        elif n.op == "reshape" and ins:
            src = ins[0]
            syms = [d for d in src if d[1]]
            if not syms:
                out = _dims(n.shape)
            else:
                size, name = syms[0]
                out = _dims(n.shape)
                hits = [i for i, d in enumerate(n.shape) if d == size]
                if hits:
                    out[hits[0]] = (size, name)
                else:
                    diag("error",
                         f"reshape {_fmt(src)} -> {n.shape} absorbs the "
                         f"batch dimension '{name}' into a fixed axis; the "
                         f"graph is not batch-polymorphic", n)
        elif n.op == "transpose" and ins:
            src = ins[0]
            sizes = [d for d, _ in src]
            if len(src) == 2:
                out = [src[1], src[0]]
            elif len(set(sizes)) == len(sizes):
                out = [src[sizes.index(d)] for d in n.shape]
            else:
                out = _dims(n.shape)
        elif n.op == "expand_dims" and ins:
            src = list(ins[0])
            axis = 0
            for i, d in enumerate(n.shape):
                if i >= len(src) or src[i][0] != d:
                    axis = i
                    break
            src.insert(axis, (1, None))
            out = src
        elif n.op == "squeeze" and ins:
            out = _match_reduced(ins[0], n.shape)
        elif n.op == "concat" and ins:
            rank = len(ins[0])
            out = []
            for ax in range(rank):
                dims = [s[ax] for s in ins if len(s) == rank]
                total = sum(d for d, _ in dims)
                if n.shape[ax] == total and total != dims[0][0]:
                    out.append((int(n.shape[ax]), None))  # the concat axis
                elif all(d[1] == dims[0][1] for d in dims):
                    out.append(dims[0])
                else:
                    out.append((int(n.shape[ax]), None))
        elif n.op == "stack" and ins:
            src = list(ins[0])
            axis = 0
            for i, d in enumerate(n.shape):
                if i >= len(src) or src[i][0] != d:
                    axis = i
                    break
            out = src[:axis] + [(len(ins), None)] + src[axis:]
        elif n.op in _OPAQUE_BATCH_PRESERVING and ins:
            out = _dims(n.shape)
            src = ins[0]
            if (src and src[0][1] and len(n.shape) >= 1
                    and len(n.shape) == len(src)
                    and n.shape[0] == src[0][0]):
                out[0] = src[0]
        elif len(ins) == 1 and _concrete(ins[0]) == n.shape:
            out = list(ins[0])

        if out is None or _concrete(out) != tuple(n.shape):
            # Unknown op or inference mismatch: fall back to the concrete
            # recorded shape rather than propagate a wrong symbol.
            out = _dims(n.shape)
        sym[n.id] = out

        # Mixed float precision silently upcasts through the whole graph.
        if n.op in _BINARY_BROADCAST | {"matmul"} and len(n.inputs) == 2:
            d0 = ir.node(n.inputs[0]).dtype
            d1 = ir.node(n.inputs[1]).dtype
            if d0 != d1 and d0.startswith("float") and d1.startswith("float"):
                diag("warning",
                     f"'{n.op}' mixes dtypes {d0} and {d1}; the result "
                     f"promotes to {n.dtype}", n)
    return diags


# ----------------------------------------------------------------------
# GC002 — detached parameters
# ----------------------------------------------------------------------
def check_detached_params(ir: GraphIR) -> list[GraphDiagnostic]:
    """GC002: every module parameter must have a gradient path to the loss."""
    diags: list[GraphDiagnostic] = []
    reachable = ir.grad_reachable()
    consumers = ir.consumers()
    for n in ir:
        if not n.is_param:
            continue
        if n.id in reachable or n.has_grad:
            continue
        if consumers[n.id]:
            why = ("is used in the traced step but has no gradient path to "
                   "the loss (every path passes through a detached tensor)")
        else:
            why = "is never used in the traced step"
        diags.append(GraphDiagnostic(
            "GC002", "detached-parameter", "error",
            f"parameter '{n.param_path}' {tuple(n.shape)} {why}; it will "
            f"never receive a gradient", n))
    return diags


# ----------------------------------------------------------------------
# GC003 — softmax invariants
# ----------------------------------------------------------------------
def check_softmax_invariants(ir: GraphIR, atol: float = 1e-5) -> list[GraphDiagnostic]:
    """GC003: softmax rows sum to 1 and masked logits carry no mass."""
    diags: list[GraphDiagnostic] = []
    for n in ir:
        if n.op not in ("softmax", "log_softmax") or n.data is None:
            continue
        what = f"'{n.label}'" if n.label else f"'{n.op}'"
        probs = np.exp(n.data) if n.op == "log_softmax" else n.data
        if probs.size == 0:
            continue
        # Find the normalisation axis: the one whose sums are closest to 1.
        best_axis, best_err = None, np.inf
        for axis in range(probs.ndim) if probs.ndim else [None]:
            err = float(np.abs(probs.sum(axis=axis) - 1.0).max())
            if err < best_err:
                best_axis, best_err = axis, err
        if probs.ndim == 0:
            best_axis, best_err = None, abs(float(probs) - 1.0)
        if best_err > atol:
            diags.append(GraphDiagnostic(
                "GC003", "softmax-invariant", "error",
                f"{what} rows do not sum to 1 on any axis (best axis "
                f"{best_axis}, max deviation {best_err:.3g}); output is not "
                f"a probability distribution", n))
            continue
        # Masked-entry check needs the logits that fed the op.
        if not n.inputs:
            continue
        logits = ir.node(n.inputs[0]).data
        if logits is None or logits.shape != probs.shape:
            continue
        masked = logits <= _MASK_THRESHOLD
        if not masked.any():
            continue
        # Only rows with at least one feasible entry must zero the rest.
        moved = np.moveaxis(masked, best_axis, -1).reshape(-1, probs.shape[best_axis])
        pmoved = np.moveaxis(probs, best_axis, -1).reshape(-1, probs.shape[best_axis])
        rows = ~moved.all(axis=-1)
        leak = float((pmoved[rows] * moved[rows]).max()) if rows.any() else 0.0
        if leak > 1e-6:
            diags.append(GraphDiagnostic(
                "GC003", "softmax-invariant", "error",
                f"{what} assigns probability {leak:.3g} to a masked logit "
                f"(input <= {_MASK_THRESHOLD:g}); infeasible entries must "
                f"get zero mass", n))
    return diags


# ----------------------------------------------------------------------
# GC004 — cross-step tape growth / structure drift
# ----------------------------------------------------------------------
def check_tape_growth(prev_ir: GraphIR, ir: GraphIR) -> list[GraphDiagnostic]:
    """GC004: diff two consecutive steps' graphs.

    Both IRs must come from traces that are still alive (the trace holds
    strong references, keeping ``id()`` identity stable between steps).
    """
    diags: list[GraphDiagnostic] = []
    prev_nonleaf = {tid for tid, nid in prev_ir.tensor_ids.items()
                    if not prev_ir.node(nid).is_leaf}
    cur_tensor_of = {nid: tid for tid, nid in ir.tensor_ids.items()}
    for n in ir:
        if not n.is_leaf or n.is_param or not n.requires_grad:
            continue
        tid = cur_tensor_of.get(n.id)
        if tid in prev_nonleaf:
            src = prev_ir.node(prev_ir.tensor_ids[tid])
            diags.append(GraphDiagnostic(
                "GC004", "tape-growth", "error",
                f"step N consumes a differentiable op output from step N-1 "
                f"({src.describe()} created at {src.location()}); the tape "
                f"grows across steps — detach() carried state", node=src))
    prev_ops, cur_ops = prev_ir.ops(), ir.ops()
    if prev_ops != cur_ops:
        drift = []
        for op in sorted(set(prev_ops) | set(cur_ops)):
            a, b = prev_ops.get(op, 0), cur_ops.get(op, 0)
            if a != b:
                drift.append(f"{op}: {a} -> {b}")
        diags.append(GraphDiagnostic(
            "GC004", "tape-growth", "error",
            f"graph structure drifts between consecutive steps "
            f"({'; '.join(drift)}); per-step graphs should be congruent",
            site="<graph>"))
    return diags


# ----------------------------------------------------------------------
# GC005 — common subexpressions
# ----------------------------------------------------------------------
_EXPENSIVE_OPS = {"matmul", "conv2d", "softmax", "exp", "max_pool2d"}


def check_common_subexpressions(ir: GraphIR, min_group: int = 2,
                                max_reports: int = 10) -> list[GraphDiagnostic]:
    """GC005: value-number the graph; report recomputed subgraphs.

    Value numbers (shared with the perfcheck passes and the compiler
    via :func:`repro.analysis.graphcheck.transforms.value_number`)
    combine op, input value numbers and an output data fingerprint, so
    two nodes share a number only when they computed the same value
    from the same expression — no false positives from e.g. ``x[0]``
    vs ``x[1]``.  Informational: a finding is a caching opportunity,
    not a bug.
    """
    from .transforms import value_number

    diags: list[GraphDiagnostic] = []
    vn = value_number(ir, identity_leaves=False)
    depth: dict[int, int] = {}
    groups: dict[int, list[IRNode]] = {}
    for n in ir:
        if n.is_leaf:
            depth[n.id] = 0
        else:
            depth[n.id] = 1 + max((depth[i] for i in n.inputs), default=0)
            groups.setdefault(vn[n.id], []).append(n)

    findings = []
    for key, nodes in groups.items():
        if len(nodes) < min_group:
            continue
        head = nodes[0]
        if depth[head.id] < 2 and head.op not in _EXPENSIVE_OPS:
            continue
        findings.append((len(nodes), depth[head.id], nodes))
    findings.sort(key=lambda f: (-f[0], -f[1]))

    for count, dep, nodes in findings[:max_reports]:
        head = nodes[0]
        name = head.label or head.op
        sites = sorted({n.location() for n in nodes})
        diags.append(GraphDiagnostic(
            "GC005", "common-subexpression", "info",
            f"subgraph '{name}' {tuple(head.shape)} (depth {dep}) is "
            f"computed {count}x from identical inputs at "
            f"{', '.join(sites[:3])}{'...' if len(sites) > 3 else ''}; "
            f"consider computing once and caching", head))
    if len(findings) > max_reports:
        diags.append(GraphDiagnostic(
            "GC005", "common-subexpression", "info",
            f"{len(findings) - max_reports} further duplicated subgraphs "
            f"not shown (pass max_reports to see all)", site="<graph>"))
    return diags


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
PASSES: list[tuple[str, str, Callable]] = [
    ("GC001", "shape-check", check_shapes),
    ("GC002", "detached-parameter", check_detached_params),
    ("GC003", "softmax-invariant", check_softmax_invariants),
    ("GC004", "tape-growth", check_tape_growth),
    ("GC005", "common-subexpression", check_common_subexpressions),
]


def run_all_passes(ir: GraphIR, prev_ir: GraphIR | None = None,
                   batch_size: int | None = None,
                   include_cse: bool = True) -> list[GraphDiagnostic]:
    """Run the full catalogue over one IR (plus the previous step's for GC004)."""
    diags: list[GraphDiagnostic] = []
    diags += check_shapes(ir, batch_size=batch_size)
    diags += check_detached_params(ir)
    diags += check_softmax_invariants(ir)
    if prev_ir is not None:
        diags += check_tape_growth(prev_ir, ir)
    if include_cse:
        diags += check_common_subexpressions(ir)
    return diags
