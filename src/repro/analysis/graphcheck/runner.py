"""Drive graphcheck over GARL and the registered baselines.

:func:`check_method` builds an agent on a tiny campus, traces one
surrogate training step (forward + loss + backward) of its UGV policy —
twice, so the cross-step diff has two tapes — compiles each tape into a
:class:`~repro.analysis.graphcheck.ir.GraphIR` and runs the full pass
catalogue.  Agents exposing the shared CNN ``uav_policy`` additionally
get a batched UAV trace at a synthetic batch size, which is what gives
the shape pass a real polymorphic batch dimension to verify.

Diagnostics are filtered through inline suppressions: a finding whose
creation-site source line contains ``# graphcheck: disable`` (optionally
``disable=GC001,GC005``) is dropped, mirroring reprolint's syntax.

``repro graphcheck`` (see :func:`main`) prints findings in reprolint's
``path:line: CODE message [pass]`` form and exits 1 on errors.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ...nn import Module, trace
from .ir import GraphIR, build_ir
from .passes import GraphDiagnostic, check_tape_growth, run_all_passes

__all__ = ["MethodReport", "check_method", "filter_suppressed", "main"]

# Batch size for the synthetic UAV trace.  Deliberately not 1 (a batch-1
# trace cannot distinguish batch from singleton axes) and not 3 (the
# grid channel count, which would alias the batch symbol onto channels).
_UAV_BATCH = 4

# Replica count for the vectorized UGV trace.  Distinct from the UAV
# batch, the agent count, the grid channel count and the hidden dim so
# the batch symbol cannot alias any structural axis.
_VEC_BATCH = 5


@dataclass
class MethodReport:
    """Graphcheck result for one registry method."""

    method: str
    diagnostics: list[GraphDiagnostic] = field(default_factory=list)
    irs: dict[str, GraphIR] = field(default_factory=dict)
    skipped: str = ""  # reason, for parameter-free agents

    @property
    def errors(self) -> list[GraphDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]


class _FakeUAVObs:
    """Minimal stand-in for UAVObservation (forward reads .grid/.aux)."""

    __slots__ = ("grid", "aux")

    def __init__(self, grid: np.ndarray, aux: np.ndarray):
        self.grid = grid
        self.aux = aux


def _surrogate_ugv_loss(policy, out, observations):
    """Scalar touching every head the PPO loss touches.

    ``log_probs_all`` + entropy exercise the policy head exactly as the
    clipped surrogate does, ``values`` the critic head, and the
    ``auxiliary_loss`` hook mirrors the trainer (AE-Comm's decoder only
    trains through it), so a parameter reachable from this loss is
    reachable from the real one and vice versa.
    """
    loss = out.distribution.log_probs_all.sum() + out.distribution.entropy().sum()
    values = out.values
    if values.requires_grad:
        loss = loss + values.sum()
    aux_fn = getattr(policy, "auxiliary_loss", None)
    if aux_fn is not None:
        loss = loss + aux_fn(observations)
    return loss


def _trace_ugv_step(policy, observations):
    policy.zero_grad()
    with trace() as tape:
        tape.set_phase("forward")
        out = policy(observations)
        tape.set_phase("loss")
        loss = _surrogate_ugv_loss(policy, out, observations)
        loss.backward()
    return tape, build_ir(tape, roots=[loss],
                          params=dict(policy.named_parameters()))


def _trace_ugv_vec_step(policy, vec_obs):
    """Trace one surrogate step of the *batched* UGV forward.

    Same surrogate loss as :func:`_trace_ugv_step` over stacked replica
    observations; auxiliary losses are skipped (the vectorized trainer
    computes them through the per-replica view adapter, which the
    sequential trace already covers).
    """
    policy.zero_grad()
    with trace() as tape:
        tape.set_phase("forward")
        out = policy.forward_batched(vec_obs)
        tape.set_phase("loss")
        loss = out.distribution.log_probs_all.sum() + out.distribution.entropy().sum()
        if out.values.requires_grad:
            loss = loss + out.values.sum()
        loss.backward()
    return tape, build_ir(tape, roots=[loss],
                          params=dict(policy.named_parameters()))


def _trace_uav_step(policy, rng, obs_size: int, aux_dim: int = 5):
    observations = [
        _FakeUAVObs(rng.random((3, obs_size, obs_size)), rng.random(aux_dim))
        for _ in range(_UAV_BATCH)
    ]
    actions = rng.standard_normal((_UAV_BATCH, 2))
    policy.zero_grad()
    with trace() as tape:
        tape.set_phase("forward")
        dist, values = policy(observations)
        tape.set_phase("loss")
        loss = (dist.log_prob(actions).sum() + dist.entropy().sum()
                + values.sum())
        loss.backward()
    return tape, build_ir(tape, roots=[loss],
                          params=dict(policy.named_parameters()))


def check_method(method: str, campus: str = "kaist", preset: str = "smoke",
                 num_ugvs: int = 3, num_uavs_per_ugv: int = 1, seed: int = 0,
                 include_cse: bool = True) -> MethodReport:
    """Run every graphcheck pass over one registry method."""
    from ...baselines.registry import make_agent
    from ...experiments.presets import get_preset
    from ...experiments.runner import build_env

    preset_obj = get_preset(preset)
    env = build_env(campus, preset_obj, num_ugvs, num_uavs_per_ugv, seed)
    agent = make_agent(method, env, preset_obj.garl_config())

    ugv_policy = getattr(agent, "ugv_policy", None)
    if not isinstance(ugv_policy, Module) or not ugv_policy.parameters():
        return MethodReport(method, skipped="no trainable policy parameters")

    report = MethodReport(method)
    observations = env.reset().ugv_observations

    # Two consecutive steps: tape1 must stay alive while tape2 is built
    # so tensor identities remain stable for the cross-step diff.
    tape1, ir1 = _trace_ugv_step(ugv_policy, observations)
    tape2, ir2 = _trace_ugv_step(ugv_policy, observations)
    report.irs["ugv"] = ir2
    report.diagnostics += run_all_passes(ir2, prev_ir=ir1,
                                         include_cse=include_cse)
    del tape1, tape2

    # Policies with a *native* vectorized forward (GARL's UGVPolicy; the
    # baseline mixin's generic per-replica fallback re-runs the traced
    # sequential path) get the batched graph checked too: the shape pass
    # sees a true replica batch axis and GC004 diffs two vectorized
    # steps for tape growth.
    if "forward_batched" in type(ugv_policy).__dict__:
        from ...env.observation import UGVObsArrays

        vec_obs = UGVObsArrays.from_observations([observations] * _VEC_BATCH)
        vtape1, vir1 = _trace_ugv_vec_step(ugv_policy, vec_obs)
        vtape2, vir2 = _trace_ugv_vec_step(ugv_policy, vec_obs)
        report.irs["ugv_vec"] = vir2
        report.diagnostics += run_all_passes(vir2, prev_ir=vir1,
                                             batch_size=_VEC_BATCH,
                                             include_cse=include_cse)
        report.diagnostics += check_tape_growth(vir1, vir2)
        del vtape1, vtape2

    uav_policy = getattr(agent, "uav_policy", None)
    if isinstance(uav_policy, Module) and uav_policy.parameters():
        rng = np.random.default_rng(seed)
        obs_size = env.config.uav_obs_size
        utape1, uir1 = _trace_uav_step(uav_policy, rng, obs_size)
        utape2, uir2 = _trace_uav_step(uav_policy, rng, obs_size)
        report.irs["uav"] = uir2
        report.diagnostics += run_all_passes(uir2, batch_size=_UAV_BATCH,
                                             include_cse=include_cse)
        report.diagnostics += check_tape_growth(uir1, uir2)
        del utape1, utape2

    report.diagnostics = filter_suppressed(report.diagnostics)
    return report


# ----------------------------------------------------------------------
# Inline suppression
# ----------------------------------------------------------------------
def _suppressed_codes(site: str) -> set[str] | None:
    """Codes disabled on the source line behind ``site``; None if none.

    An empty set means a bare ``# graphcheck: disable`` (all codes).
    """
    head = site.split(" in ", 1)[0]
    path, sep, lineno = head.rpartition(":")
    if not sep or not lineno.isdigit():
        return None
    try:
        line = Path(path).read_text().splitlines()[int(lineno) - 1]
    except (OSError, IndexError):
        return None
    marker = "# graphcheck: disable"
    pos = line.find(marker)
    if pos < 0:
        return None
    rest = line[pos + len(marker):]
    if rest.startswith("="):
        return {c.strip() for c in rest[1:].split()[0].split(",") if c.strip()}
    return set()


def filter_suppressed(diags: list[GraphDiagnostic]) -> list[GraphDiagnostic]:
    kept = []
    for d in diags:
        codes = _suppressed_codes(d.site)
        if codes is not None and (not codes or d.code in codes):
            continue
        kept.append(d)
    return kept


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    from ...baselines.registry import AGENT_NAMES

    parser = argparse.ArgumentParser(
        prog="repro graphcheck",
        description="trace each method's training step into a graph IR "
                    "and run the GC001-GC005 static passes")
    parser.add_argument("--methods", nargs="+", default=sorted(AGENT_NAMES),
                        choices=sorted(AGENT_NAMES))
    parser.add_argument("--campus", default="kaist")
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--ugvs", type=int, default=3)
    parser.add_argument("--uavs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--show-cse", action="store_true",
                        help="also print GC005 caching opportunities")
    parser.add_argument("--dot", default=None, metavar="PREFIX",
                        help="write PREFIX.<method>.<part>.dot graph dumps")
    parser.add_argument("--json", default=None, metavar="PREFIX",
                        help="write PREFIX.<method>.<part>.json IR dumps")
    args = parser.parse_args(argv)

    failures = 0
    for method in args.methods:
        report = check_method(method, campus=args.campus, preset=args.preset,
                              num_ugvs=args.ugvs, num_uavs_per_ugv=args.uavs,
                              seed=args.seed, include_cse=args.show_cse)
        if report.skipped:
            print(f"{method}: skipped ({report.skipped})")
            continue
        shown = [d for d in report.diagnostics
                 if args.show_cse or d.severity != "info"]
        sizes = ", ".join(f"{part}: {len(ir)} nodes"
                          for part, ir in report.irs.items())
        status = "ok" if not any(d.severity == "error" for d in shown) else "FAIL"
        print(f"{method}: {status} ({sizes})")
        for d in shown:
            print(f"  {d.format()}")
        failures += len(report.errors)

        for prefix, emit in ((args.dot, "dot"), (args.json, "json")):
            if not prefix:
                continue
            for part, ir in report.irs.items():
                path = Path(f"{prefix}.{method}.{part}.{emit}")
                path.write_text(ir.to_dot() if emit == "dot" else ir.to_json())
                print(f"  wrote {path}")

    if failures:
        print(f"\ngraphcheck: {failures} error(s)")
        return 1
    print("\ngraphcheck: all passes clean")
    return 0
