"""Typed graph IR compiled from a traced autodiff tape.

:func:`build_ir` turns the :class:`repro.nn.tracer.trace` records of one
step into a :class:`GraphIR`: a topologically ordered list of
:class:`IRNode` carrying op name, shape, dtype, ``requires_grad``,
creation site, ``annotate()`` label, phase tag and input edges.  Leaves
(tensors created outside the engine's ``_make_child`` — inputs,
constants, parameters) get synthetic nodes so every edge resolves.

The IR is *value-carrying*: each node keeps a reference to the traced
tensor's array so data-dependent invariant passes (softmax rows) can
inspect actual values.  Serialisation (:meth:`GraphIR.to_json`,
:meth:`GraphIR.to_dot`) drops the values and keeps the structure.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = ["IRNode", "GraphIR", "build_ir", "OpSpec", "OP_REGISTRY",
           "ELEMENTWISE_OPS", "UNARY_SAME_SHAPE_OPS", "BINARY_BROADCAST_OPS",
           "OPAQUE_BATCH_PRESERVING_OPS", "VIEW_OPS", "REDUCTION_OPS"]


# ----------------------------------------------------------------------
# Op registry
# ----------------------------------------------------------------------
# The single classification table for every op the engine records (plus
# a few legacy aliases that lower to other ops before recording).  The
# GC001 shape checker, the PC001/PC002 perf passes and the compiled
# executor (repro.nn.compile) all derive their op sets from here, so the
# three layers cannot drift apart.
@dataclass(frozen=True)
class OpSpec:
    """Classification of one engine op.

    ``kind`` is the structural family:

    * ``unary`` / ``binary`` / ``select`` — pointwise math (select is
      ``where``: condition plus two broadcast operands);
    * ``rowwise`` — same-shape but normalises along an axis
      (softmax/log_softmax), so it bounds fusion regions;
    * ``reduction`` — collapses axes (sum/max/...);
    * ``view`` — pure data movement, no arithmetic;
    * ``contraction`` — matmul;
    * ``opaque`` — batch-preserving ops the shape checker treats as
      black boxes (indexing, conv, pooling).

    ``elementwise`` marks ops a fused kernel can express: one output
    element depends only on the matching input element(s).
    """

    kind: str
    elementwise: bool = False


OP_REGISTRY: dict[str, OpSpec] = {
    # Pointwise unaries.
    "neg": OpSpec("unary", True), "exp": OpSpec("unary", True),
    "log": OpSpec("unary", True), "sqrt": OpSpec("unary", True),
    "tanh": OpSpec("unary", True), "sigmoid": OpSpec("unary", True),
    "relu": OpSpec("unary", True), "leaky_relu": OpSpec("unary", True),
    "abs": OpSpec("unary", True), "clip": OpSpec("unary", True),
    "erf": OpSpec("unary", True), "dropout": OpSpec("unary", True),
    # Row-local composites: same shape, not elementwise.
    "softmax": OpSpec("rowwise"), "log_softmax": OpSpec("rowwise"),
    # Broadcasting binaries.
    "add": OpSpec("binary", True), "sub": OpSpec("binary", True),
    "mul": OpSpec("binary", True), "truediv": OpSpec("binary", True),
    "pow": OpSpec("binary", True), "maximum": OpSpec("binary", True),
    "minimum": OpSpec("binary", True),
    # Masked select.
    "where": OpSpec("select", True),
    # Contractions.
    "matmul": OpSpec("contraction"),
    # Reductions.
    "sum": OpSpec("reduction"), "mean": OpSpec("reduction"),
    "max": OpSpec("reduction"), "min": OpSpec("reduction"),
    # Pure data movement.
    "reshape": OpSpec("view"), "flatten": OpSpec("view"),
    "transpose": OpSpec("view"), "swapaxes": OpSpec("view"),
    "expand_dims": OpSpec("view"), "squeeze": OpSpec("view"),
    "concat": OpSpec("view"), "stack": OpSpec("view"), "pad": OpSpec("view"),
    # Opaque batch-preserving ops.
    "getitem": OpSpec("opaque"), "gather": OpSpec("opaque"),
    "embedding_lookup": OpSpec("opaque"), "conv2d": OpSpec("opaque"),
    "max_pool2d": OpSpec("opaque"), "avg_pool2d": OpSpec("opaque"),
}


def _ops_where(predicate) -> frozenset:
    return frozenset(name for name, spec in OP_REGISTRY.items()
                     if predicate(spec))


#: Ops a fused kernel can express (consumed by PC001 and the compiler).
#: Dropout is excluded: it is elementwise but stochastic, so fusing it
#: would hide the RNG draw from the determinism tooling.
ELEMENTWISE_OPS = _ops_where(lambda s: s.elementwise) - {"dropout"}
#: Shape-preserving unaries for GC001 symbolic shape propagation.
UNARY_SAME_SHAPE_OPS = _ops_where(lambda s: s.kind in ("unary", "rowwise"))
#: Broadcasting binaries for GC001.
BINARY_BROADCAST_OPS = _ops_where(lambda s: s.kind == "binary")
#: Black-box batch-preserving ops for GC001.
OPAQUE_BATCH_PRESERVING_OPS = _ops_where(lambda s: s.kind == "opaque")
#: Pure data movement (zero estimated FLOPs, zero-copy on replay).
VIEW_OPS = _ops_where(lambda s: s.kind == "view")
#: Axis-collapsing reductions.
REDUCTION_OPS = _ops_where(lambda s: s.kind == "reduction")


@dataclass
class IRNode:
    """One vertex of the compiled graph."""

    id: int
    op: str                      # engine op name, or "leaf" / "param"
    shape: tuple[int, ...]
    dtype: str
    requires_grad: bool
    site: str = ""               # "path:line in func" creation site
    label: str = ""              # annotate() label, if any
    phase: str = ""              # trace phase tag ("forward", "loss", ...)
    inputs: tuple[int, ...] = ()
    param_path: str = ""         # module path when this is a Parameter leaf
    has_grad: bool = False       # grad was populated when the IR was built
    # Reference to the traced array; not serialised.
    data: np.ndarray | None = field(default=None, repr=False, compare=False)
    # Static op parameters captured by the tracer (axis, clip bounds,
    # conv stride, ...); not serialised — may hold numpy arrays.
    attrs: dict | None = field(default=None, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        return not self.inputs

    @property
    def is_param(self) -> bool:
        return bool(self.param_path)

    def location(self) -> str:
        """``path:line`` of the creation site (for diagnostics)."""
        head = self.site.split(" in ", 1)[0]
        return head or "<graph>"

    def describe(self) -> str:
        name = f"'{self.op}'" + (f" [{self.label}]" if self.label else "")
        return f"op {name} {tuple(self.shape)} {self.dtype}"


class GraphIR:
    """Topologically ordered op graph for one traced step."""

    def __init__(self, nodes: list[IRNode], roots: tuple[int, ...] = ()):
        self.nodes = nodes
        self.roots = roots
        self._by_id = {n.id: n for n in nodes}
        # Maps the traced tensors' python ids to IR node ids; populated by
        # build_ir and used by the cross-step diff to align two IRs.
        self.tensor_ids: dict[int, int] = {}

    # -- access ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[IRNode]:
        return iter(self.nodes)

    def node(self, node_id: int) -> IRNode:
        return self._by_id[node_id]

    def ops(self) -> dict[str, int]:
        """Histogram of op names over non-leaf nodes."""
        counts: dict[str, int] = {}
        for n in self.nodes:
            if not n.is_leaf:
                counts[n.op] = counts.get(n.op, 0) + 1
        return dict(sorted(counts.items()))

    def find(self, op: str | None = None, label: str | None = None) -> list[IRNode]:
        """Nodes matching an op name and/or a label substring."""
        out = []
        for n in self.nodes:
            if op is not None and n.op != op:
                continue
            if label is not None and label not in n.label:
                continue
            out.append(n)
        return out

    def consumers(self) -> dict[int, list[int]]:
        """Reverse adjacency: node id -> ids of nodes consuming it."""
        out: dict[int, list[int]] = {n.id: [] for n in self.nodes}
        for n in self.nodes:
            for src in n.inputs:
                out[src].append(n.id)
        return out

    def grad_reachable(self, root_id: int | None = None) -> set[int]:
        """Node ids on a gradient path from the root(s).

        Walks ancestor edges from the root, but only continues through
        nodes with ``requires_grad`` — matching what backward() visits.
        A parameter is *detached* iff its node id is not in this set.
        """
        starts = [root_id] if root_id is not None else list(self.roots)
        seen: set[int] = set()
        stack = [i for i in starts if self._by_id[i].requires_grad]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            for src in self._by_id[nid].inputs:
                parent = self._by_id[src]
                if parent.requires_grad and src not in seen:
                    stack.append(src)
        return seen

    # -- serialisation --------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "roots": list(self.roots),
            "nodes": [
                {
                    "id": n.id,
                    "op": n.op,
                    "shape": list(n.shape),
                    "dtype": n.dtype,
                    "requires_grad": n.requires_grad,
                    "site": n.site,
                    "label": n.label,
                    "phase": n.phase,
                    "inputs": list(n.inputs),
                    "param_path": n.param_path,
                    "has_grad": n.has_grad,
                }
                for n in self.nodes
            ],
        }
        return json.dumps(payload, indent=2)

    def to_dot(self, max_label: int = 40) -> str:
        """Graphviz rendering: params green, roots red, labels boxed."""
        lines = ["digraph tape {", "  rankdir=BT;",
                 '  node [fontsize=9, fontname="monospace"];']
        root_set = set(self.roots)
        for n in self.nodes:
            text = n.op
            if n.param_path:
                text = n.param_path
            if n.label:
                text += f"\\n[{n.label}]"
            text += f"\\n{tuple(n.shape)}"
            text = text[:max_label * 2]
            attrs = [f'label="{text}"']
            if n.id in root_set:
                attrs.append('color=red, penwidth=2')
            elif n.is_param:
                attrs.append('shape=box, color=darkgreen')
            elif n.is_leaf:
                attrs.append('shape=box, color=gray')
            elif n.label:
                attrs.append('shape=box, color=blue')
            if not n.requires_grad:
                attrs.append('style=dashed')
            lines.append(f"  n{n.id} [{', '.join(attrs)}];")
        for n in self.nodes:
            for src in n.inputs:
                lines.append(f"  n{src} -> n{n.id};")
        lines.append("}")
        return "\n".join(lines)


def _fingerprint(arr: np.ndarray) -> tuple:
    return (arr.shape, zlib.adler32(arr.tobytes()))


def build_ir(tape, roots: Iterable = (), params: dict[str, object] | None = None) -> GraphIR:
    """Compile a :class:`repro.nn.tracer.trace` tape into a :class:`GraphIR`.

    Parameters
    ----------
    tape:
        The trace object (iterable of :class:`TapeRecord`).
    roots:
        Output/loss tensors; their node ids land in ``GraphIR.roots``.
        Roots not recorded on the tape (e.g. created outside the scope)
        are added as leaves.
    params:
        ``dict(module.named_parameters())`` — matching leaf nodes are
        tagged with their module path; parameters that never appear in
        the traced step still get a node (so the detached-parameter pass
        can report them).
    """
    nodes: list[IRNode] = []
    ids: dict[int, int] = {}
    param_paths: dict[int, str] = {}
    if params:
        for path, p in params.items():
            param_paths[id(p)] = path

    def leaf_node(tensor) -> int:
        key = id(tensor)
        if key in ids:
            return ids[key]
        nid = len(nodes)
        ids[key] = nid
        path = param_paths.get(key, "")
        nodes.append(IRNode(
            id=nid, op="param" if path else "leaf",
            shape=tuple(tensor.shape), dtype=str(tensor.dtype),
            requires_grad=bool(tensor.requires_grad),
            label=getattr(tensor, "name", "") or "",
            param_path=path,
            has_grad=tensor.grad is not None,
            data=tensor.data,
        ))
        return nid

    for rec in tape:
        input_ids = tuple(ids[id(p)] if id(p) in ids else leaf_node(p)
                          for p in rec.parents)
        t = rec.tensor
        key = id(t)
        if key in ids:
            # A tensor recorded twice should not happen, but be defensive.
            continue
        nid = len(nodes)
        ids[key] = nid
        nodes.append(IRNode(
            id=nid, op=rec.op, shape=tuple(t.shape), dtype=str(t.dtype),
            requires_grad=bool(t.requires_grad), site=rec.site,
            label=rec.label, phase=rec.phase, inputs=input_ids,
            has_grad=t.grad is not None, data=t.data,
            attrs=getattr(rec, "attrs", None),
        ))

    root_ids = []
    for r in roots:
        root_ids.append(ids[id(r)] if id(r) in ids else leaf_node(r))

    # Parameters that never entered the traced step still need nodes.
    if params:
        for path, p in params.items():
            leaf_node(p)
            # A parameter recorded as a plain leaf earlier gets its path.
            node = nodes[ids[id(p)]]
            if not node.param_path:
                node.param_path = path
                node.op = "param"

    ir = GraphIR(nodes, tuple(root_ids))
    ir.tensor_ids = ids
    return ir
