"""``repro.analysis.graphcheck`` — static verification of traced tapes.

The tracer (:mod:`repro.nn.tracer`) captures one step's autodiff tape;
this package compiles the tape into a typed graph IR (:mod:`.ir`) and
runs a catalogue of analyses over it (:mod:`.passes`):

* **GC001 shape-check** — symbolic shape/dtype propagation with a
  polymorphic batch dimension plus suspicious-broadcast detection;
* **GC002 detached-parameter** — module parameters with no gradient
  path to the traced loss, reported by module path;
* **GC003 softmax-invariant** — softmax/log-softmax outputs whose rows
  do not sum to 1, or whose masked entries carry probability;
* **GC004 tape-growth** — cross-step graph diff flagging tapes that
  grow or drift in structure between consecutive steps;
* **GC005 common-subexpression** — redundantly recomputed subgraphs,
  reported as named caching opportunities (informational).

``repro graphcheck`` (see :mod:`.runner`) builds GARL and every
registered baseline on a tiny map and runs the full catalogue.
"""

from .ir import GraphIR, IRNode, build_ir
from .passes import (
    PASSES,
    GraphDiagnostic,
    check_common_subexpressions,
    check_detached_params,
    check_shapes,
    check_softmax_invariants,
    check_tape_growth,
    run_all_passes,
)
from .runner import check_method, main

__all__ = [
    "GraphIR",
    "IRNode",
    "build_ir",
    "GraphDiagnostic",
    "PASSES",
    "check_shapes",
    "check_detached_params",
    "check_softmax_invariants",
    "check_tape_growth",
    "check_common_subexpressions",
    "run_all_passes",
    "check_method",
    "main",
]
