"""Shared IR transformation passes: value numbering, fusion, liveness.

One implementation, two consumers:

* the **analyzer** (:mod:`repro.analysis.perfcheck.passes`) runs these in
  report mode — PC001 fusion groups, PC002 arena plans, PC003 recompute
  findings are emitted as diagnostics;
* the **compiler** (:mod:`repro.nn.compile`) runs the same passes in
  execute mode to build a :class:`~repro.nn.compile.CompiledPlan`: fused
  chains become back-to-back kernel dispatches into scratch buffers,
  the arena assignment becomes preallocated slots the forward writes
  into, and value numbering deduplicates gradient-free subexpressions.

Keeping the logic here (instead of duplicated per consumer) is what
guarantees the report and the executor never disagree about what is
fusable or how long a buffer lives.

Value-numbering modes
---------------------

``identity_leaves=False`` (analyzer): two leaves share a number when
their *data* matches (shape + dtype + fingerprint), and op keys include
an output-data fingerprint.  Right for reporting: ``x + y`` computed
twice from equal arrays is a caching opportunity regardless of where
the arrays came from.

``identity_leaves=True`` (compiler): every leaf gets its own number and
op keys are purely structural (op, static attrs, input numbers).  Right
for rewriting: two plan inputs whose capture-time values coincide are
still *different* inputs on replay, so merging them would be unsound.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from .ir import ELEMENTWISE_OPS, GraphIR, IRNode

__all__ = [
    "FusionGroup", "FusionPlan", "ArenaPlan",
    "find_fusion_groups", "analyze_buffers",
    "value_number", "find_duplicates", "node_bytes",
]


def node_bytes(node: IRNode) -> int:
    """Output-buffer size of one op, from its recorded shape and dtype."""
    elems = int(np.prod(node.shape)) if node.shape else 1
    try:
        itemsize = np.dtype(node.dtype).itemsize
    except TypeError:
        itemsize = 8
    return elems * itemsize


# ----------------------------------------------------------------------
# Value numbering (generalises GC005; feeds PC003 and compiler CSE)
# ----------------------------------------------------------------------
def _attrs_key(attrs: dict | None) -> tuple:
    """Stable hashable key for a node's static attrs (arrays by digest)."""
    if not attrs:
        return ()
    items = []
    for k in sorted(attrs):
        v = attrs[k]
        if isinstance(v, np.ndarray):
            items.append((k, "ndarray", v.shape, str(v.dtype),
                          zlib.adler32(v.tobytes())))
        elif isinstance(v, (list, tuple)):
            items.append((k, tuple(str(x) for x in v)))
        elif isinstance(v, (int, float, bool, str, type(None))):
            items.append((k, v))
        else:
            items.append((k, repr(v)))
    return tuple(items)


def value_number(ir: GraphIR, *, identity_leaves: bool = False) -> dict[int, int]:
    """Assign interned value numbers to every node (see module docstring).

    Keys are interned to small integers so a key never nests another
    key: hashing stays O(fan-in) per node instead of exploding with
    graph depth.
    """
    numbers: dict[tuple, int] = {}
    vn: dict[int, int] = {}
    for n in ir:
        if n.is_leaf:
            if identity_leaves:
                key = ("leaf-id", n.id)
            else:
                key = ("leaf", n.requires_grad, _data_fingerprint(n))
        elif identity_leaves:
            key = (n.op, _attrs_key(n.attrs),
                   tuple(vn[i] for i in n.inputs))
        else:
            key = (n.op, tuple(vn[i] for i in n.inputs),
                   _data_fingerprint(n))
        vn[n.id] = numbers.setdefault(key, len(numbers))
    return vn


def _data_fingerprint(n: IRNode) -> tuple:
    if n.data is None:
        return ("nodata", n.id)
    return (n.data.shape, str(n.data.dtype), zlib.adler32(n.data.tobytes()))


def find_duplicates(ir: GraphIR, vn: dict[int, int]) -> dict[int, int]:
    """Map each duplicated non-leaf node to its first (representative)
    occurrence under the given value numbering."""
    rep_of_number: dict[int, int] = {}
    dup: dict[int, int] = {}
    for n in ir:
        if n.is_leaf:
            continue
        number = vn[n.id]
        rep = rep_of_number.setdefault(number, n.id)
        if rep != n.id:
            dup[n.id] = rep
    return dup


# ----------------------------------------------------------------------
# Elementwise fusion (PC001 in report mode, fused dispatch in execute mode)
# ----------------------------------------------------------------------
@dataclass
class FusionGroup:
    """One fusable chain: node ids in topological order."""

    id: int
    nodes: list[IRNode]
    attributed_seconds: float = 0.0

    @property
    def ops(self) -> list[str]:
        return [n.op for n in self.nodes]

    @property
    def saved_bytes(self) -> int:
        """Intermediates a fused kernel never materialises (all but last)."""
        return sum(node_bytes(n) for n in self.nodes[:-1])

    @property
    def label(self) -> str:
        labels = [n.label for n in self.nodes if n.label]
        return labels[0] if labels else ""

    def sites(self) -> list[str]:
        return sorted({n.location() for n in self.nodes})

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "ops": self.ops,
            "label": self.label,
            "output_shape": list(self.nodes[-1].shape),
            "saved_bytes": self.saved_bytes,
            "attributed_seconds": self.attributed_seconds,
            "sites": self.sites(),
            "nodes": [n.id for n in self.nodes],
        }


@dataclass
class FusionPlan:
    """The PC001 artifact: every discovered group, largest first."""

    groups: list[FusionGroup] = field(default_factory=list)

    @property
    def saved_bytes(self) -> int:
        return sum(g.saved_bytes for g in self.groups)

    def as_dict(self) -> dict:
        return {"version": 1,
                "groups": [g.as_dict() for g in self.groups],
                "saved_bytes": self.saved_bytes}

    def to_dot(self, ir: GraphIR) -> str:
        """DOT rendering: fusion groups as clusters over the op graph."""
        member: dict[int, int] = {}
        for g in self.groups:
            for n in g.nodes:
                member[n.id] = g.id
        lines = ["digraph fusion {", "  rankdir=BT;",
                 '  node [fontsize=9, fontname="monospace"];']
        for g in self.groups:
            lines.append(f"  subgraph cluster_{g.id} {{")
            lines.append(f'    label="group {g.id}'
                         + (f" [{g.label}]" if g.label else "")
                         + f'\\nsaves {g.saved_bytes} B"; color=blue;')
            for n in g.nodes:
                lines.append(f'    n{n.id} [label="{n.op}\\n{tuple(n.shape)}"];')
            lines.append("  }")
        for n in ir:
            if n.is_leaf:
                continue
            if n.id not in member:
                lines.append(f'  n{n.id} [label="{n.op}", color=gray];')
            for src in n.inputs:
                if src in member or not ir.node(src).is_leaf:
                    lines.append(f"  n{src} -> n{n.id};")
        lines.append("}")
        return "\n".join(lines)


def find_fusion_groups(ir: GraphIR, min_size: int = 2) -> FusionPlan:
    """Greedy maximal single-consumer elementwise chains (PC001).

    Walk the IR in topological order.  An elementwise node joins its
    producer's group when that producer is elementwise and the node is
    its *only* consumer (so fusing never duplicates work or keeps a
    buffer alive for an outside reader); otherwise it starts a new
    group.  Groups below ``min_size`` are dropped — a single op has
    nothing to fuse with.
    """
    consumers = ir.consumers()
    group_of: dict[int, list[IRNode]] = {}
    for node in ir:
        if node.is_leaf or node.op not in ELEMENTWISE_OPS:
            continue
        joined = None
        for src in node.inputs:
            parent = ir.node(src)
            if (not parent.is_leaf and parent.op in ELEMENTWISE_OPS
                    and len(consumers[src]) == 1 and src in group_of):
                joined = group_of[src]
                break
        if joined is None:
            joined = []
        joined.append(node)
        group_of[node.id] = joined

    seen: set[int] = set()
    groups: list[FusionGroup] = []
    for node in ir:
        chain = group_of.get(node.id)
        if chain is None or id(chain) in seen or len(chain) < min_size:
            continue
        seen.add(id(chain))
        groups.append(FusionGroup(id=len(groups), nodes=chain))
    groups.sort(key=lambda g: (-len(g.nodes), -g.saved_bytes, g.nodes[0].id))
    for i, g in enumerate(groups):
        g.id = i
    return FusionPlan(groups)


# ----------------------------------------------------------------------
# Buffer lifetime + arena assignment (PC002 / executor slot plan)
# ----------------------------------------------------------------------
@dataclass
class ArenaPlan:
    """The PC002 artifact: liveness, peak bytes, and slot assignments."""

    total_alloc_bytes: int = 0
    peak_live_bytes: int = 0
    peak_at_node: int = -1
    arena_bytes: int = 0
    slot_sizes: list[int] = field(default_factory=list)
    # node id -> (slot index, bytes, first topo index, last-use topo index)
    assignments: dict[int, tuple[int, int, int, int]] = field(default_factory=dict)

    @property
    def reuse_ratio(self) -> float:
        """Fraction of per-op allocation an arena avoids (1 = everything)."""
        if self.total_alloc_bytes <= 0:
            return 0.0
        return 1.0 - self.arena_bytes / self.total_alloc_bytes

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "total_alloc_bytes": self.total_alloc_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "peak_at_node": self.peak_at_node,
            "arena_bytes": self.arena_bytes,
            "reuse_ratio": self.reuse_ratio,
            "slots": [{"slot": i, "bytes": b}
                      for i, b in enumerate(self.slot_sizes)],
            "assignments": [
                {"node": nid, "slot": slot, "bytes": size,
                 "live": [first, last]}
                for nid, (slot, size, first, last)
                in sorted(self.assignments.items())
            ],
        }


def analyze_buffers(ir: GraphIR, keep_alive: set[int] | frozenset[int] = frozenset()) -> ArenaPlan:
    """Last-use liveness, peak-live-bytes, greedy arena slots (PC002).

    Only op outputs count — leaves and parameters live outside the tape
    and are not the allocator's to reuse.  Roots (the loss) stay live to
    the end of the program, like the real tape does; ``keep_alive`` adds
    further node ids pinned the same way (the compiler pins every value
    the backward sweep will read).  The greedy slot policy is best-fit
    on size: when a buffer is freed its slot returns to a free list; an
    allocation takes the smallest free slot that fits, growing it if the
    fit is only partial, and opens a new slot only when none is free.
    An op's output slot is assigned *before* its inputs' slots are
    released, so a slot never aliases a live operand.
    """
    order = {n.id: i for i, n in enumerate(ir)}
    last_use: dict[int, int] = {}
    ops = [n for n in ir if not n.is_leaf]
    pinned = set(ir.roots) | set(keep_alive)
    end = len(ir.nodes)
    for n in ir:
        for src in n.inputs:
            last_use[src] = order[n.id]
    plan = ArenaPlan()

    # Liveness sweep in execution order for the true peak.
    live: dict[int, int] = {}
    live_bytes = 0
    for n in ir:
        if n.is_leaf:
            continue
        size = node_bytes(n)
        plan.total_alloc_bytes += size
        live[n.id] = size
        live_bytes += size
        if live_bytes > plan.peak_live_bytes:
            plan.peak_live_bytes = live_bytes
            plan.peak_at_node = n.id
        # Free every buffer whose last consumer just ran.
        for nid in [nid for nid in live
                    if last_use.get(nid, end if nid in pinned else order[nid])
                    <= order[n.id] and nid != n.id and nid not in pinned]:
            live_bytes -= live.pop(nid)

    # Greedy best-fit arena assignment over the same order.
    free: list[int] = []          # free slot indices
    slot_sizes: list[int] = []
    slot_of: dict[int, int] = {}
    for n in ops:
        size = node_bytes(n)
        fit = None
        for idx in free:
            if fit is None or abs(slot_sizes[idx] - size) < abs(slot_sizes[fit] - size):
                fit = idx
        if fit is not None:
            free.remove(fit)
            slot_sizes[fit] = max(slot_sizes[fit], size)
            slot = fit
        else:
            slot = len(slot_sizes)
            slot_sizes.append(size)
        slot_of[n.id] = slot
        plan.assignments[n.id] = (
            slot, size, order[n.id],
            last_use.get(n.id, end if n.id in pinned else order[n.id]))
        # Release slots of inputs whose last use was this node.
        for src in n.inputs:
            if (src in slot_of and src not in pinned
                    and last_use.get(src) == order[n.id]
                    and slot_of[src] not in free):
                free.append(slot_of[src])
    plan.slot_sizes = slot_sizes
    plan.arena_bytes = sum(slot_sizes)
    return plan
