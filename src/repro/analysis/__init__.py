"""``repro.analysis`` — correctness and performance tooling for the
hand-written autodiff stack.

Four pillars, one ``repro check`` meta-command (:mod:`.check`):

* **reprolint** (:mod:`repro.analysis.lint`, :mod:`repro.analysis.rules`) —
  a stdlib-``ast`` static-analysis pass with rules tuned to the classic
  failure modes of this codebase: silent ``Tensor.data`` mutation, raw
  ``np.*`` calls that escape the autograd graph, rollouts missing
  ``no_grad()``, float32 drift into the float64 engine, backward closures
  capturing loop variables, bare asserts in hot paths, optimizer steps
  without ``zero_grad()``, unguarded reciprocals, and tensors parked on
  ``self`` across timesteps without ``detach()``.  Run it with
  ``repro lint [paths]`` or the ``reprolint`` console script.

* **graphcheck** (:mod:`repro.analysis.graphcheck`) — traces one training
  step's autodiff tape into a typed graph IR and statically verifies it:
  symbolic shapes with a polymorphic batch dimension, gradient flow to
  every parameter, softmax invariants, cross-step tape growth, and
  common-subexpression reporting.  Run it with ``repro graphcheck``.

* **determinism** (:mod:`repro.analysis.determinism`) — DT source rules
  against nondeterminism (wall-clock seeds, unordered iteration, global
  RNG), a whole-program shared-state map from the training entrypoints,
  and a two-run runtime divergence bisector.  Run it with
  ``repro check-determinism``.

* **perfcheck** (:mod:`repro.analysis.perfcheck`) — profile-guided
  performance analysis: PF source rules (per-step array rebuilds,
  hot-loop allocation, unvectorized loops, quadratic entity scans,
  dtype-promotion copies) plus PC001–PC003 IR passes (fusion groups,
  buffer-lifetime arena plan, cross-phase recompute) over a real traced
  step, ranked by a ``repro profile`` run.  Run it with
  ``repro perfcheck``.

The **runtime numerics sanitizer** lives next to the engine in
:mod:`repro.nn.anomaly` (``repro.nn.detect_anomaly()``); see
``docs/static_analysis.md`` for the full story.
"""

from . import graphcheck
from .lint import Diagnostic, lint_paths, lint_source, main
from .rules import RULES, Rule

__all__ = ["Diagnostic", "Rule", "RULES", "lint_source", "lint_paths", "main",
           "graphcheck"]
