"""``repro.analysis`` — correctness tooling for the hand-written autodiff stack.

Three legs:

* **reprolint** (:mod:`repro.analysis.lint`, :mod:`repro.analysis.rules`) —
  a stdlib-``ast`` static-analysis pass with rules tuned to the classic
  failure modes of this codebase: silent ``Tensor.data`` mutation, raw
  ``np.*`` calls that escape the autograd graph, rollouts missing
  ``no_grad()``, float32 drift into the float64 engine, backward closures
  capturing loop variables, bare asserts in hot paths, optimizer steps
  without ``zero_grad()``, unguarded reciprocals, and tensors parked on
  ``self`` across timesteps without ``detach()``.  Run it with
  ``repro lint [paths]`` or the ``reprolint`` console script.

* **graphcheck** (:mod:`repro.analysis.graphcheck`) — traces one training
  step's autodiff tape into a typed graph IR and statically verifies it:
  symbolic shapes with a polymorphic batch dimension, gradient flow to
  every parameter, softmax invariants, cross-step tape growth, and
  common-subexpression reporting.  Run it with ``repro graphcheck``.

* the **runtime numerics sanitizer** lives next to the engine in
  :mod:`repro.nn.anomaly` (``repro.nn.detect_anomaly()``); see
  ``docs/static_analysis.md`` for the full story.
"""

from . import graphcheck
from .lint import Diagnostic, lint_paths, lint_source, main
from .rules import RULES, Rule

__all__ = ["Diagnostic", "Rule", "RULES", "lint_source", "lint_paths", "main",
           "graphcheck"]
