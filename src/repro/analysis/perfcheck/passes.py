"""Performance passes over the graphcheck IR.

Where the PF rules read *source*, these read the *compiled graph* of a
real traced training step (:mod:`repro.analysis.graphcheck.ir`) and emit
the two plans the ROADMAP's compiled-backend PR consumes:

* **PC001 fusion-group discovery** — maximal chains of elementwise ops
  where every internal edge has a single consumer.  Each group can
  execute as one fused kernel with no intermediate materialisation; the
  emitted :class:`FusionPlan` lists the groups and the bytes they stop
  allocating.
* **PC002 buffer-lifetime analysis** — last-use liveness for every
  op output, the peak of live bytes over the execution order, and a
  greedy arena assignment mapping each output to a reusable slot.  The
  :class:`ArenaPlan`'s invariant — ``peak_live_bytes <= arena_bytes <
  total_alloc_bytes`` on any non-trivial graph — is what per-op
  allocation leaves on the table.
* **PC003 cross-phase recompute** — value-numbered subgraphs (GC005's
  numbering) whose instances span *different* trace phases: work the
  forward pass already did and the loss phase pays for again.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..graphcheck.ir import GraphIR, IRNode

__all__ = ["FusionGroup", "FusionPlan", "ArenaPlan", "RecomputeFinding",
           "find_fusion_groups", "analyze_buffers", "find_cross_phase_recompute",
           "ELEMENTWISE_OPS"]

# Ops a fused kernel can express: one output element depends only on the
# matching input element(s).  Same-shape unaries plus broadcasting
# binaries; softmax/log_softmax are row-local, not elementwise, but they
# bound fusion regions in practice, so chains form *around* them.
ELEMENTWISE_OPS = frozenset({
    "neg", "exp", "log", "sqrt", "tanh", "sigmoid", "relu", "leaky_relu",
    "abs", "clip", "erf", "add", "sub", "mul", "truediv", "pow",
    "maximum", "minimum", "where",
})


def _node_bytes(node: IRNode) -> int:
    """Output-buffer size of one op, from its recorded shape and dtype."""
    elems = int(np.prod(node.shape)) if node.shape else 1
    try:
        itemsize = np.dtype(node.dtype).itemsize
    except TypeError:
        itemsize = 8
    return elems * itemsize


# ----------------------------------------------------------------------
# PC001 — fusion groups
# ----------------------------------------------------------------------
@dataclass
class FusionGroup:
    """One fusable chain: node ids in topological order."""

    id: int
    nodes: list[IRNode]
    attributed_seconds: float = 0.0

    @property
    def ops(self) -> list[str]:
        return [n.op for n in self.nodes]

    @property
    def saved_bytes(self) -> int:
        """Intermediates a fused kernel never materialises (all but last)."""
        return sum(_node_bytes(n) for n in self.nodes[:-1])

    @property
    def label(self) -> str:
        labels = [n.label for n in self.nodes if n.label]
        return labels[0] if labels else ""

    def sites(self) -> list[str]:
        return sorted({n.location() for n in self.nodes})

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "ops": self.ops,
            "label": self.label,
            "output_shape": list(self.nodes[-1].shape),
            "saved_bytes": self.saved_bytes,
            "attributed_seconds": self.attributed_seconds,
            "sites": self.sites(),
            "nodes": [n.id for n in self.nodes],
        }


@dataclass
class FusionPlan:
    """The PC001 artifact: every discovered group, largest first."""

    groups: list[FusionGroup] = field(default_factory=list)

    @property
    def saved_bytes(self) -> int:
        return sum(g.saved_bytes for g in self.groups)

    def as_dict(self) -> dict:
        return {"version": 1,
                "groups": [g.as_dict() for g in self.groups],
                "saved_bytes": self.saved_bytes}

    def to_dot(self, ir: GraphIR) -> str:
        """DOT rendering: fusion groups as clusters over the op graph."""
        member: dict[int, int] = {}
        for g in self.groups:
            for n in g.nodes:
                member[n.id] = g.id
        lines = ["digraph fusion {", "  rankdir=BT;",
                 '  node [fontsize=9, fontname="monospace"];']
        for g in self.groups:
            lines.append(f"  subgraph cluster_{g.id} {{")
            lines.append(f'    label="group {g.id}'
                         + (f" [{g.label}]" if g.label else "")
                         + f'\\nsaves {g.saved_bytes} B"; color=blue;')
            for n in g.nodes:
                lines.append(f'    n{n.id} [label="{n.op}\\n{tuple(n.shape)}"];')
            lines.append("  }")
        for n in ir:
            if n.is_leaf:
                continue
            if n.id not in member:
                lines.append(f'  n{n.id} [label="{n.op}", color=gray];')
            for src in n.inputs:
                if src in member or not ir.node(src).is_leaf:
                    lines.append(f"  n{src} -> n{n.id};")
        lines.append("}")
        return "\n".join(lines)


def find_fusion_groups(ir: GraphIR, min_size: int = 2) -> FusionPlan:
    """PC001: greedy maximal single-consumer elementwise chains.

    Walk the IR in topological order.  An elementwise node joins its
    producer's group when that producer is elementwise and the node is
    its *only* consumer (so fusing never duplicates work or keeps a
    buffer alive for an outside reader); otherwise it starts a new
    group.  Groups below ``min_size`` are dropped — a single op has
    nothing to fuse with.
    """
    consumers = ir.consumers()
    group_of: dict[int, list[IRNode]] = {}
    for node in ir:
        if node.is_leaf or node.op not in ELEMENTWISE_OPS:
            continue
        joined = None
        for src in node.inputs:
            parent = ir.node(src)
            if (not parent.is_leaf and parent.op in ELEMENTWISE_OPS
                    and len(consumers[src]) == 1 and src in group_of):
                joined = group_of[src]
                break
        if joined is None:
            joined = []
        joined.append(node)
        group_of[node.id] = joined

    seen: set[int] = set()
    groups: list[FusionGroup] = []
    for node in ir:
        chain = group_of.get(node.id)
        if chain is None or id(chain) in seen or len(chain) < min_size:
            continue
        seen.add(id(chain))
        groups.append(FusionGroup(id=len(groups), nodes=chain))
    groups.sort(key=lambda g: (-len(g.nodes), -g.saved_bytes, g.nodes[0].id))
    for i, g in enumerate(groups):
        g.id = i
    return FusionPlan(groups)


# ----------------------------------------------------------------------
# PC002 — buffer lifetime + arena assignment
# ----------------------------------------------------------------------
@dataclass
class ArenaPlan:
    """The PC002 artifact: liveness, peak bytes, and slot assignments."""

    total_alloc_bytes: int = 0
    peak_live_bytes: int = 0
    peak_at_node: int = -1
    arena_bytes: int = 0
    slot_sizes: list[int] = field(default_factory=list)
    # node id -> (slot index, bytes, first topo index, last-use topo index)
    assignments: dict[int, tuple[int, int, int, int]] = field(default_factory=dict)

    @property
    def reuse_ratio(self) -> float:
        """Fraction of per-op allocation an arena avoids (1 = everything)."""
        if self.total_alloc_bytes <= 0:
            return 0.0
        return 1.0 - self.arena_bytes / self.total_alloc_bytes

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "total_alloc_bytes": self.total_alloc_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "peak_at_node": self.peak_at_node,
            "arena_bytes": self.arena_bytes,
            "reuse_ratio": self.reuse_ratio,
            "slots": [{"slot": i, "bytes": b}
                      for i, b in enumerate(self.slot_sizes)],
            "assignments": [
                {"node": nid, "slot": slot, "bytes": size,
                 "live": [first, last]}
                for nid, (slot, size, first, last)
                in sorted(self.assignments.items())
            ],
        }


def analyze_buffers(ir: GraphIR) -> ArenaPlan:
    """PC002: last-use liveness, peak-live-bytes, greedy arena slots.

    Only op outputs count — leaves and parameters live outside the tape
    and are not the allocator's to reuse.  Roots (the loss) stay live to
    the end of the program, like the real tape does.  The greedy slot
    policy is best-fit on size: when a buffer is freed its slot returns
    to a free list; an allocation takes the smallest free slot that
    fits, growing it if the fit is only partial, and opens a new slot
    only when none is free.
    """
    order = {n.id: i for i, n in enumerate(ir)}
    last_use: dict[int, int] = {}
    ops = [n for n in ir if not n.is_leaf]
    roots = set(ir.roots)
    end = len(ir.nodes)
    for n in ir:
        for src in n.inputs:
            last_use[src] = order[n.id]
    plan = ArenaPlan()

    # Liveness sweep in execution order for the true peak.
    live: dict[int, int] = {}
    live_bytes = 0
    for n in ir:
        if n.is_leaf:
            continue
        size = _node_bytes(n)
        plan.total_alloc_bytes += size
        live[n.id] = size
        live_bytes += size
        if live_bytes > plan.peak_live_bytes:
            plan.peak_live_bytes = live_bytes
            plan.peak_at_node = n.id
        # Free every buffer whose last consumer just ran.
        for nid in [nid for nid in live
                    if last_use.get(nid, end if nid in roots else order[nid])
                    <= order[n.id] and nid != n.id and nid not in roots]:
            live_bytes -= live.pop(nid)

    # Greedy best-fit arena assignment over the same order.
    free: list[int] = []          # free slot indices
    slot_sizes: list[int] = []
    slot_of: dict[int, int] = {}
    for n in ops:
        size = _node_bytes(n)
        fit = None
        for idx in free:
            if fit is None or abs(slot_sizes[idx] - size) < abs(slot_sizes[fit] - size):
                fit = idx
        if fit is not None:
            free.remove(fit)
            slot_sizes[fit] = max(slot_sizes[fit], size)
            slot = fit
        else:
            slot = len(slot_sizes)
            slot_sizes.append(size)
        slot_of[n.id] = slot
        plan.assignments[n.id] = (
            slot, size, order[n.id],
            last_use.get(n.id, end if n.id in roots else order[n.id]))
        # Release slots of inputs whose last use was this node.
        for src in n.inputs:
            if (src in slot_of and src not in roots
                    and last_use.get(src) == order[n.id]
                    and slot_of[src] not in free):
                free.append(slot_of[src])
    plan.slot_sizes = slot_sizes
    plan.arena_bytes = sum(slot_sizes)
    return plan


# ----------------------------------------------------------------------
# PC003 — cross-phase recompute
# ----------------------------------------------------------------------
@dataclass
class RecomputeFinding:
    """One value-numbered subgraph recomputed across trace phases."""

    op: str
    label: str
    shape: tuple[int, ...]
    count: int
    phases: list[str]
    bytes_each: int
    sites: list[str]

    def as_dict(self) -> dict:
        return {"op": self.op, "label": self.label, "shape": list(self.shape),
                "count": self.count, "phases": self.phases,
                "bytes_each": self.bytes_each, "sites": self.sites}


def find_cross_phase_recompute(ir: GraphIR,
                               max_reports: int = 20) -> list[RecomputeFinding]:
    """PC003: GC005's value numbering, filtered to phase-spanning groups.

    Two nodes share a value number only when they computed the same
    value from the same expression (op + input numbers + output data
    fingerprint).  A group whose instances span more than one phase is
    the forward pass's work being redone in the loss phase — exactly
    what a cross-phase cache (or the fused plan) eliminates.

    Structural keys are interned to small integers so a key never nests
    another key: hashing stays O(fan-in) per node instead of exploding
    with graph depth.
    """
    numbers: dict[tuple, int] = {}   # structural key -> value number
    vn: dict[int, int] = {}          # node id -> value number
    groups: dict[int, list[IRNode]] = {}
    for n in ir:
        if n.data is None:
            fp = ("nodata", n.id)
        else:
            fp = (n.data.shape, str(n.data.dtype), zlib.adler32(n.data.tobytes()))
        if n.is_leaf:
            key = ("leaf", n.requires_grad, fp)
        else:
            key = (n.op, tuple(vn[i] for i in n.inputs), fp)
        number = numbers.setdefault(key, len(numbers))
        if not n.is_leaf:
            groups.setdefault(number, []).append(n)
        vn[n.id] = number

    findings: list[RecomputeFinding] = []
    for nodes in groups.values():
        if len(nodes) < 2:
            continue
        phases = sorted({n.phase for n in nodes if n.phase})
        if len(phases) < 2:
            continue
        head = nodes[0]
        findings.append(RecomputeFinding(
            op=head.op, label=head.label, shape=tuple(head.shape),
            count=len(nodes), phases=phases,
            bytes_each=_node_bytes(head),
            sites=sorted({n.location() for n in nodes})))
    findings.sort(key=lambda f: (-f.count * f.bytes_each, f.op))
    return findings[:max_reports]
