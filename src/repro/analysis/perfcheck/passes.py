"""Performance passes over the graphcheck IR (report mode).

Where the PF rules read *source*, these read the *compiled graph* of a
real traced training step (:mod:`repro.analysis.graphcheck.ir`):

* **PC001 fusion-group discovery** — maximal chains of elementwise ops
  where every internal edge has a single consumer.  Each group can
  execute as one fused kernel with no intermediate materialisation; the
  emitted :class:`FusionPlan` lists the groups and the bytes they stop
  allocating.
* **PC002 buffer-lifetime analysis** — last-use liveness for every
  op output, the peak of live bytes over the execution order, and a
  greedy arena assignment mapping each output to a reusable slot.  The
  :class:`ArenaPlan`'s invariant — ``peak_live_bytes <= arena_bytes <
  total_alloc_bytes`` on any non-trivial graph — is what per-op
  allocation leaves on the table.
* **PC003 cross-phase recompute** — value-numbered subgraphs (GC005's
  numbering) whose instances span *different* trace phases: work the
  forward pass already did and the loss phase pays for again.

Since the compiled-backend PR, the fusion/liveness/value-numbering
machinery itself lives in :mod:`repro.analysis.graphcheck.transforms`,
shared with the executing compiler (:mod:`repro.nn.compile`); this
module keeps the analyzer-facing surface (same names, same artifacts)
plus the report-only PC003 pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphcheck.ir import ELEMENTWISE_OPS, GraphIR, IRNode
from ..graphcheck.transforms import (ArenaPlan, FusionGroup, FusionPlan,
                                     analyze_buffers, find_fusion_groups,
                                     node_bytes as _node_bytes, value_number)

__all__ = ["FusionGroup", "FusionPlan", "ArenaPlan", "RecomputeFinding",
           "find_fusion_groups", "analyze_buffers", "find_cross_phase_recompute",
           "ELEMENTWISE_OPS"]


# ----------------------------------------------------------------------
# PC003 — cross-phase recompute
# ----------------------------------------------------------------------
@dataclass
class RecomputeFinding:
    """One value-numbered subgraph recomputed across trace phases."""

    op: str
    label: str
    shape: tuple[int, ...]
    count: int
    phases: list[str]
    bytes_each: int
    sites: list[str]

    def as_dict(self) -> dict:
        return {"op": self.op, "label": self.label, "shape": list(self.shape),
                "count": self.count, "phases": self.phases,
                "bytes_each": self.bytes_each, "sites": self.sites}


def find_cross_phase_recompute(ir: GraphIR,
                               max_reports: int = 20) -> list[RecomputeFinding]:
    """PC003: GC005's value numbering, filtered to phase-spanning groups.

    Two nodes share a value number only when they computed the same
    value from the same expression (op + input numbers + output data
    fingerprint).  A group whose instances span more than one phase is
    the forward pass's work being redone in the loss phase — exactly
    what a cross-phase cache (or the fused plan) eliminates.
    """
    vn = value_number(ir, identity_leaves=False)
    groups: dict[int, list[IRNode]] = {}
    for n in ir:
        if not n.is_leaf:
            groups.setdefault(vn[n.id], []).append(n)

    findings: list[RecomputeFinding] = []
    for nodes in groups.values():
        if len(nodes) < 2:
            continue
        phases = sorted({n.phase for n in nodes if n.phase})
        if len(phases) < 2:
            continue
        head = nodes[0]
        findings.append(RecomputeFinding(
            op=head.op, label=head.label, shape=tuple(head.shape),
            count=len(nodes), phases=phases,
            bytes_each=_node_bytes(head),
            sites=sorted({n.location() for n in nodes})))
    findings.sort(key=lambda f: (-f.count * f.bytes_each, f.op))
    return findings[:max_reports]
