"""Profile ingestion: rank perfcheck findings by measured wall time.

A ``repro profile`` run (PR 5) leaves a JSONL file whose lines carry
``kind: "scope"`` rows (hierarchical timer paths with self/total
seconds) and ``kind: "op"`` rows (per-autodiff-op aggregates keyed by
op, ``annotate()`` label and originating module).  :class:`ProfileIndex`
loads one such file and answers two attribution queries:

* ``module_seconds(dotted_module)`` — op-table seconds whose creation
  site lives in that module, plus scope self-seconds whose path mentions
  the module's package (``env/step`` for ``repro.env.*``).
* ``op_seconds(op, label, module)`` — per-call seconds for one op kind,
  with graceful fallback from the exact (op, label, module) row to the
  op-wide average.

``repro perfcheck --profile run.jsonl`` uses these to order findings
and fusion groups by *measured* cost, so the report leads with the hot
paths instead of whichever file sorts first alphabetically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

__all__ = ["ProfileIndex", "load_profile", "module_of_path"]


def module_of_path(path: str) -> str:
    """Dotted module of a repo source path (``src/repro/env/x.py`` ->
    ``repro.env.x``); best effort for paths outside ``src``."""
    posix = PurePosixPath(path.replace("\\", "/"))
    parts = list(posix.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ProfileIndex:
    """Aggregated view of one ``repro profile`` JSONL run."""

    path: str = ""
    wall_seconds: float = 0.0
    # (op, label, module) -> (seconds, calls)
    op_rows: dict[tuple[str, str, str], tuple[float, int]] = field(default_factory=dict)
    # scope path -> self seconds
    scope_self: dict[str, float] = field(default_factory=dict)

    # -- attribution ----------------------------------------------------
    def module_seconds(self, module: str) -> float:
        """Measured seconds attributable to ``module`` (dotted path).

        Sums op rows whose ``module`` column matches a suffix of the
        dotted path (op rows record ``core.mc_gcn``-style short modules)
        and scope rows whose path contains one of the module's trailing
        components (``env`` matches the ``env/step`` scope).
        """
        total = 0.0
        tail = module.split(".")
        short = ".".join(tail[-2:])
        for (op, label, row_module), (secs, _calls) in self.op_rows.items():
            if row_module and (module.endswith(row_module)
                              or row_module.endswith(short)):
                total += secs
        components = {c for c in tail if c not in ("src", "repro")}
        for scope_path, secs in self.scope_self.items():
            parts = set(scope_path.replace("/", " ").split())
            if parts & components:
                total += secs
        return total

    def op_seconds_per_call(self, op: str, label: str = "",
                            module: str = "") -> float:
        """Seconds/call for one op kind; falls back exact -> label -> op."""
        row = self.op_rows.get((op, label, module))
        if row is None and label:
            matches = [(s, c) for (o, l, _m), (s, c) in self.op_rows.items()
                       if o == op and l == label]
            if matches:
                row = (sum(s for s, _ in matches), sum(c for _, c in matches))
        if row is None:
            matches = [(s, c) for (o, _l, _m), (s, c) in self.op_rows.items()
                       if o == op]
            if matches:
                row = (sum(s for s, _ in matches), sum(c for _, c in matches))
        if row is None or row[1] <= 0:
            return 0.0
        return row[0] / row[1]

    def group_seconds(self, ops_labels_modules: list[tuple[str, str, str]]) -> float:
        """Attributed seconds for a fusion group's member ops."""
        return sum(self.op_seconds_per_call(op, label, module)
                   for op, label, module in ops_labels_modules)

    @property
    def empty(self) -> bool:
        return not self.op_rows and not self.scope_self


def load_profile(path: str | Path) -> ProfileIndex:
    """Parse a ``repro profile``/``repro train --profile`` JSONL file.

    Unknown line kinds are skipped, so the loader stays compatible with
    future exporter additions; a malformed line raises ``ValueError``
    with the offending line number.
    """
    index = ProfileIndex(path=str(path))
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            row = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
        kind = row.get("kind")
        if kind == "meta":
            index.wall_seconds = float(row.get("wall_seconds", 0.0) or 0.0)
        elif kind == "scope":
            index.scope_self[str(row.get("path", ""))] = float(
                row.get("self_seconds", row.get("total_seconds", 0.0)) or 0.0)
        elif kind == "op":
            key = (str(row.get("op", "")), str(row.get("label", "")),
                   str(row.get("module", "")))
            secs = float(row.get("seconds", 0.0) or 0.0)
            calls = int(row.get("calls", 0) or 0)
            prev = index.op_rows.get(key, (0.0, 0))
            index.op_rows[key] = (prev[0] + secs, prev[1] + calls)
    return index
