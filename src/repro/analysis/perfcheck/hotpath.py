"""Hot-path reachability for the PF lint rules.

PF002 (allocation-in-hot-loop) only fires inside functions that the
training loop can actually reach — an allocation in a cold plotting
helper is noise, the same one inside ``step_dynamics`` is a per-step
cost.  "Reachable" reuses the shared-state analyzer's whole-program
machinery (PR 6): index every function under the package root, build a
name-based call graph, and BFS from the training entrypoints
(``run_training`` / ``run_method`` / ``train``).

The result is a :class:`HotIndex` mapping each source file to the set of
function *qualnames within that file* that are on the training path, so
the per-file AST rules can answer "is this function hot?" without
re-running the whole-program pass per file.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from ..determinism.sharedstate import (DEFAULT_ENTRYPOINTS, _called_names,
                                       _module_name)

__all__ = ["HotIndex", "build_hot_index", "local_qualname"]


@dataclass
class HotIndex:
    """Which functions are reachable from the training entrypoints.

    ``hot`` maps a posix file path (as discovered under ``root``) to the
    set of function qualnames *local to that file* — ``"Class.method"``
    or ``"function"`` — that the BFS reached.  Files outside the index
    (tests, corpus snippets) report every function as hot, which keeps
    the rule usable standalone and strictly over-approximate.
    """

    root: str = ""
    entrypoints: tuple[str, ...] = DEFAULT_ENTRYPOINTS
    hot: dict[str, set[str]] = field(default_factory=dict)
    indexed_files: set[str] = field(default_factory=set)

    def is_hot(self, path: str, qualname: str) -> bool:
        """True when ``qualname`` in ``path`` is on the training path."""
        key = str(PurePosixPath(path.replace("\\", "/")))
        if key not in self.indexed_files:
            return True  # unindexed file: assume hot (over-approximate)
        return qualname in self.hot.get(key, set())


def local_qualname(stack: list[str], name: str) -> str:
    """Qualname of ``name`` nested under the enclosing class stack."""
    return ".".join([*stack, name])


def build_hot_index(root: str | Path = "src/repro",
                    entrypoints: tuple[str, ...] = DEFAULT_ENTRYPOINTS,
                    ) -> HotIndex:
    """Index ``root`` and BFS the call graph from ``entrypoints``.

    The call graph is name-based, exactly like the shared-state pass: a
    call to a bare or attribute name reaches every function of that name
    anywhere in the package.  Over-approximate by construction — a hot
    marking can be spurious, a cold one cannot.
    """
    root = Path(root)
    index = HotIndex(root=str(root), entrypoints=tuple(entrypoints))
    functions: dict[str, tuple[str, str, set[str]]] = {}  # qual -> (file, local, calls)
    by_name: dict[str, list[str]] = {}

    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue
        module = _module_name(path, root)
        posix = str(PurePosixPath(str(path).replace("\\", "/")))
        index.indexed_files.add(posix)
        index.hot.setdefault(posix, set())

        def _index(fn: ast.AST, local: str) -> None:
            qual = f"{module}.{local}"
            functions[qual] = (posix, local, _called_names(fn))
            by_name.setdefault(fn.name, []).append(qual)

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _index(stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        _index(item, f"{stmt.name}.{item.name}")

    work: deque[str] = deque()
    reachable: set[str] = set()
    for ep in entrypoints:
        for qual in by_name.get(ep, []):
            if qual not in reachable:
                reachable.add(qual)
                work.append(qual)
    while work:
        qual = work.popleft()
        for callee_name in functions[qual][2]:
            for callee in by_name.get(callee_name, []):
                if callee not in reachable:
                    reachable.add(callee)
                    work.append(callee)

    for qual in reachable:
        posix, local, _ = functions[qual]
        index.hot[posix].add(local)
    return index
