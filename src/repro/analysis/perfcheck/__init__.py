"""``repro.analysis.perfcheck`` — profile-guided performance static analysis.

The fourth analysis pillar (after reprolint, graphcheck and the
determinism analyzer).  Two halves, one report:

* **PF source rules** (:mod:`.rules`) on the reprolint framework —
  per-step array rebuilds (PF001), allocations in hot loops (PF002),
  Python-level elementwise loops (PF003), quadratic all-pairs entity
  scans (PF004) and silent dtype-promotion copies (PF005).  ``PF002``
  consults a whole-program call-graph reachability index
  (:mod:`.hotpath`) so only training-path loops fire.
* **PC IR passes** (:mod:`.passes`) over a *real traced step* of a
  registered method — fusion-group discovery (PC001), buffer-lifetime /
  arena-reuse analysis (PC002) and cross-phase recompute detection
  (PC003).  Their outputs are versioned plans: the explicit input
  contract for the ROADMAP's compiled execution backend.

Findings are ranked by measured wall time when ``--profile`` points at
a ``repro profile`` JSONL run (:mod:`.profile`).  ``repro perfcheck``
exits nonzero on unsuppressed PF findings; suppress a line with
``# reprolint: disable=PFxxx``.  The ``--baseline`` flag additionally
fails on findings or suppressions absent from a committed baseline —
the CI no-new-findings gate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..lint import Diagnostic, _discover, lint_source
from .hotpath import HotIndex, build_hot_index
from .passes import (ArenaPlan, FusionPlan, RecomputeFinding, analyze_buffers,
                     find_cross_phase_recompute, find_fusion_groups)
from .profile import ProfileIndex, load_profile, module_of_path
from .rules import PF_RULES, build_pf_rules

__all__ = ["PerfcheckReport", "run_perfcheck", "main", "PF_RULES",
           "build_pf_rules", "build_hot_index", "find_fusion_groups",
           "analyze_buffers", "find_cross_phase_recompute", "load_profile"]

SCHEMA = "repro.perfcheck/1"
BASELINE_SCHEMA = "repro.perfcheck-baseline/1"

_SUPPRESS_PF = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class TraceReport:
    """PC-pass results for one traced policy graph."""

    name: str                       # "<method>.<part>", e.g. "garl.ugv"
    nodes: int
    fusion: FusionPlan
    arena: ArenaPlan
    recompute: list[RecomputeFinding] = field(default_factory=list)
    dot: str = ""                   # fusion-cluster DOT, rendered at trace time

    def as_dict(self) -> dict:
        return {"name": self.name, "nodes": self.nodes,
                "fusion_plan": self.fusion.as_dict(),
                "arena_plan": self.arena.as_dict(),
                "recompute": [r.as_dict() for r in self.recompute]}


@dataclass
class PerfcheckReport:
    """Everything one ``repro perfcheck`` invocation produced."""

    paths: list[str] = field(default_factory=list)
    findings: list[Diagnostic] = field(default_factory=list)
    attributed: dict[int, float] = field(default_factory=dict)  # idx -> seconds
    suppressions: list[dict] = field(default_factory=list)
    traces: list[TraceReport] = field(default_factory=list)
    profile: ProfileIndex | None = None

    # -- profile ranking ------------------------------------------------
    def rank(self) -> None:
        """Order findings by attributed seconds (measured hot paths first).

        Without a profile every finding attributes 0.0 and the stable
        sort preserves path/line order; with one, findings in modules
        the profiler measured as hot lead the report.
        """
        profile = self.profile
        if profile is not None and not profile.empty:
            self.attributed = {
                i: profile.module_seconds(module_of_path(d.path))
                for i, d in enumerate(self.findings)}
            order = sorted(range(len(self.findings)),
                           key=lambda i: (-self.attributed[i],
                                          self.findings[i].path,
                                          self.findings[i].line))
            self.findings = [self.findings[i] for i in order]
            self.attributed = {new: self.attributed[old]
                               for new, old in enumerate(order)}
            for trace in self.traces:
                for group in trace.fusion.groups:
                    group.attributed_seconds = profile.group_seconds([
                        (n.op, n.label, ".".join(
                            module_of_path(n.location().rsplit(":", 1)[0])
                            .split(".")[-2:]))
                        for n in group.nodes])
                trace.fusion.groups.sort(
                    key=lambda g: (-g.attributed_seconds, -len(g.nodes),
                                   -g.saved_bytes, g.nodes[0].id))
                for i, g in enumerate(trace.fusion.groups):
                    g.id = i
        else:
            self.attributed = {i: 0.0 for i in range(len(self.findings))}

    # -- serialisation --------------------------------------------------
    def finding_counts(self) -> dict[str, int]:
        """``code path`` -> count, the key the baseline gate compares."""
        counts: dict[str, int] = {}
        for d in self.findings:
            key = f"{d.code} {d.path}"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def suppression_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.suppressions:
            for code in s["codes"]:
                key = f"{code} {s['path']}"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self, indent: int = 2) -> str:
        fusion_groups = sum(len(t.fusion.groups) for t in self.traces)
        payload = {
            "schema": SCHEMA,
            "paths": self.paths,
            "profile": ({"path": self.profile.path,
                         "wall_seconds": self.profile.wall_seconds}
                        if self.profile is not None else None),
            "summary": {
                "findings": len(self.findings),
                "suppressions": len(self.suppressions),
                "fusion_groups": fusion_groups,
                "fusion_saved_bytes": sum(t.fusion.saved_bytes
                                          for t in self.traces),
                "traces": [t.name for t in self.traces],
            },
            "findings": [
                {"code": d.code, "name": d.name, "path": d.path,
                 "line": d.line, "col": d.col, "message": d.message,
                 "attributed_seconds": self.attributed.get(i, 0.0)}
                for i, d in enumerate(self.findings)
            ],
            "suppressions": self.suppressions,
            "finding_counts": self.finding_counts(),
            "suppression_counts": self.suppression_counts(),
            "traces": {t.name: t.as_dict() for t in self.traces},
        }
        return json.dumps(payload, indent=indent)

    def format_report(self, top: int = 10) -> str:
        """The terminal top-N report: findings, then plans."""
        out: list[str] = []
        ranked = self.profile is not None and not self.profile.empty
        head = "perfcheck findings" + (" (profile-ranked)" if ranked else "")
        out.append(f"{head}: {len(self.findings)} active, "
                   f"{len(self.suppressions)} suppressed")
        for i, d in enumerate(self.findings[:top]):
            secs = self.attributed.get(i, 0.0)
            prefix = f"  {secs * 1e3:8.2f} ms " if ranked else "  "
            out.append(f"{prefix}{d.format()}")
        if len(self.findings) > top:
            out.append(f"  ... {len(self.findings) - top} more "
                       f"(--top to widen, --json for all)")
        for trace in self.traces:
            fusion, arena = trace.fusion, trace.arena
            out.append(f"\n{trace.name}: {trace.nodes} IR nodes")
            out.append(f"  PC001 fusion: {len(fusion.groups)} group(s), "
                       f"{fusion.saved_bytes / 1e3:.1f} kB of intermediates "
                       f"fusable away")
            for g in fusion.groups[:top]:
                secs = (f" {g.attributed_seconds * 1e3:.3f} ms/step"
                        if ranked else "")
                label = f" [{g.label}]" if g.label else ""
                out.append(f"    group {g.id}: {'-'.join(g.ops)}{label} "
                           f"-> {tuple(g.nodes[-1].shape)}, saves "
                           f"{g.saved_bytes} B{secs}")
            out.append(f"  PC002 arena: peak live {arena.peak_live_bytes / 1e3:.1f} kB "
                       f"of {arena.total_alloc_bytes / 1e3:.1f} kB allocated "
                       f"({len(arena.slot_sizes)} slots, "
                       f"{arena.reuse_ratio:.0%} of per-op allocation avoidable)")
            out.append(f"  PC003 recompute: {len(trace.recompute)} "
                       f"cross-phase group(s)")
            for r in trace.recompute[:3]:
                name = r.label or r.op
                out.append(f"    '{name}' {r.shape} x{r.count} across "
                           f"{'/'.join(r.phases)} at {r.sites[0]}")
        return "\n".join(out)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _collect_suppressions(files: list[Path]) -> list[dict]:
    """Inventory every inline PF suppression (the baseline's second half)."""
    out: list[dict] = []
    for file in files:
        try:
            lines = file.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for lineno, line in enumerate(lines, start=1):
            match = _SUPPRESS_PF.search(line)
            if match is None:
                continue
            codes = sorted({c.strip().upper()
                            for c in match.group(1).split(",")
                            if c.strip().upper().startswith("PF")})
            if codes:
                out.append({"path": str(file), "line": lineno, "codes": codes})
    return out


def run_perfcheck(paths: list[str] | None = None,
                  root: str = "src/repro",
                  methods: tuple[str, ...] = ("garl",),
                  campus: str = "kaist", preset: str = "smoke",
                  num_ugvs: int = 3, num_uavs_per_ugv: int = 1, seed: int = 0,
                  profile_path: str | None = None,
                  static: bool = True, trace: bool = True) -> PerfcheckReport:
    """Run both halves and return the combined report (ranked)."""
    report = PerfcheckReport(paths=list(paths or ["src"]))

    if static:
        hot = build_hot_index(root) if Path(root).is_dir() else None
        rules = build_pf_rules(hot)
        files = _discover(report.paths)
        for file in files:
            report.findings.extend(lint_source(
                file.read_text(encoding="utf-8"), str(file), rules=rules))
        report.suppressions = _collect_suppressions(files)

    if trace:
        from ..graphcheck.runner import check_method

        for method in methods:
            method_report = check_method(
                method, campus=campus, preset=preset, num_ugvs=num_ugvs,
                num_uavs_per_ugv=num_uavs_per_ugv, seed=seed,
                include_cse=False)
            if method_report.skipped:
                continue
            for part, ir in method_report.irs.items():
                fusion = find_fusion_groups(ir)
                report.traces.append(TraceReport(
                    name=f"{method}.{part}", nodes=len(ir),
                    fusion=fusion,
                    arena=analyze_buffers(ir),
                    recompute=find_cross_phase_recompute(ir),
                    dot=fusion.to_dot(ir)))

    if profile_path:
        report.profile = load_profile(profile_path)
    report.rank()
    return report


# ----------------------------------------------------------------------
# Baseline gate
# ----------------------------------------------------------------------
def check_baseline(report: PerfcheckReport, baseline_path: str) -> list[str]:
    """Compare against a committed baseline; returns regression messages.

    A regression is a ``code path`` whose active-finding count *or*
    suppression count exceeds the baseline's — new findings must be
    fixed or suppressed-and-inventoried, and new suppressions must be
    justified by re-committing the baseline.
    """
    data = json.loads(Path(baseline_path).read_text())
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{baseline_path}: expected schema {BASELINE_SCHEMA}, "
                         f"got {data.get('schema')!r}")
    problems: list[str] = []
    for kind, current, allowed in (
            ("finding", report.finding_counts(), data.get("findings", {})),
            ("suppression", report.suppression_counts(),
             data.get("suppressions", {}))):
        for key, count in current.items():
            if count > int(allowed.get(key, 0)):
                problems.append(
                    f"new {kind}: {key} (count {count} > baseline "
                    f"{allowed.get(key, 0)})")
    return problems


def write_baseline(report: PerfcheckReport, path: str) -> None:
    """Write the current state as the committed no-new-findings baseline."""
    Path(path).write_text(json.dumps({
        "schema": BASELINE_SCHEMA,
        "findings": report.finding_counts(),
        "suppressions": report.suppression_counts(),
    }, indent=2) + "\n")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro perfcheck",
        description="profile-guided performance static analysis: PF source "
                    "rules + fusion/buffer/recompute passes over a real "
                    "traced step (exit 1 on unsuppressed PF findings)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories for the PF rules "
                             "(default: src)")
    parser.add_argument("--root", default="src/repro",
                        help="package root for hot-path call-graph "
                             "reachability (default: src/repro)")
    parser.add_argument("--methods", nargs="+", default=["garl"],
                        help="registry methods to trace for the IR passes "
                             "(default: garl)")
    parser.add_argument("--campus", default="kaist")
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--ugvs", type=int, default=3)
    parser.add_argument("--uavs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", default=None, metavar="JSONL",
                        help="rank findings by a repro profile JSONL run")
    parser.add_argument("--top", type=int, default=10,
                        help="findings/groups per report section (default: 10)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the repro.perfcheck/1 artifact here")
    parser.add_argument("--dot", default=None, metavar="PREFIX",
                        help="write PREFIX.<trace>.fusion.dot group graphs")
    parser.add_argument("--static-only", action="store_true",
                        help="PF source rules only (skip the traced IR passes)")
    parser.add_argument("--trace-only", action="store_true",
                        help="IR passes only (skip the PF source rules)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="fail on findings/suppressions not in this "
                             "committed baseline (CI gate)")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write the current state as the new baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the PF rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in PF_RULES:
            print(f"{rule.code}  {rule.name:<26} {rule.description}")
        return 0

    try:
        report = run_perfcheck(
            paths=args.paths, root=args.root, methods=tuple(args.methods),
            campus=args.campus, preset=args.preset, num_ugvs=args.ugvs,
            num_uavs_per_ugv=args.uavs, seed=args.seed,
            profile_path=args.profile,
            static=not args.trace_only, trace=not args.static_only)
    except FileNotFoundError as exc:
        print(f"perfcheck: {exc}", file=sys.stderr)
        return 2

    print(report.format_report(top=args.top))

    if args.json:
        Path(args.json).write_text(report.to_json() + "\n")
        print(f"\nwrote {args.json}")
    if args.dot:
        for trace in report.traces:
            dot_path = Path(f"{args.dot}.{trace.name}.fusion.dot")
            dot_path.write_text(trace.dot + "\n")
            print(f"wrote {dot_path}")
    if args.write_baseline:
        write_baseline(report, args.write_baseline)
        print(f"baseline written to {args.write_baseline}")
        return 0

    if args.baseline:
        problems = check_baseline(report, args.baseline)
        if problems:
            print(f"\nperfcheck baseline gate: {len(problems)} regression(s)")
            for p in problems:
                print(f"  {p}")
            return 1
        print("\nperfcheck baseline gate: no new findings")
        return 0

    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
