"""PF rule implementations: profile-guided performance lint.

Source-level companions to the IR passes in
:mod:`repro.analysis.perfcheck.passes`.  Each rule encodes an allocation
or complexity pattern that costs wall time *every environment step* —
the patterns the ROADMAP's fleet-scaling and compiled-backend items have
to clear first.  The rules ride the reprolint framework
(:mod:`repro.analysis.rules`), so inline suppression uses the same
syntax::

    arr = np.array([s.remaining for s in self.sensors])  # reprolint: disable=PF001

========  =========================  ==========================================
code      name                       pattern
========  =========================  ==========================================
PF001     per-step-array-rebuild     ``np.array([... for e in entities])``
                                     outside lifecycle methods: the array is
                                     reconstructed from Python objects on
                                     every call
PF002     alloc-in-hot-loop          ``np.zeros``/``np.concatenate``/... in a
                                     loop inside a function reachable from the
                                     training entrypoints
PF003     python-elementwise-loop    ``for i in range(...)`` indexing ndarrays
                                     element by element where a vectorized
                                     form exists
PF004     quadratic-entity-scan      nested loops over entity collections, or
                                     a per-entity full distance scan —
                                     O(N·M) work a spatial index removes
PF005     dtype-promotion-copy       float32/float64 operands mixed in one
                                     expression, forcing a silent upcast copy
========  =========================  ==========================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..rules import Context, Rule, _FUNCTIONS
from .hotpath import HotIndex

__all__ = ["PF_RULES", "build_pf_rules", "ENTITY_NAME"]

_NP_MODULES = {"np", "numpy"}

# Collections of simulation entities: rebuilding arrays from these every
# step (PF001) or scanning all pairs of them (PF004) is the cost model
# the rules encode.
ENTITY_NAME = re.compile(
    r"(sensor|ugv|uav|agent|stop|user|node|entit|vehicle|drone)s?$",
    re.IGNORECASE)

# Arrays holding one row per entity (the "all positions" arrays a
# per-entity loop rescans in full - the PF004 (b) pattern).
_ENTITY_ARRAY_NAME = re.compile(
    r"(position|cell|centre|center|coord|point)s$|_(positions|cells)$",
    re.IGNORECASE)

# Methods that build state once rather than per step.
_LIFECYCLE = re.compile(
    r"^(__init__$|__post_init__$|__setstate__$|reset|from_|allocate"
    r"|load|save|setup|init)")

_ARRAY_BUILDERS = {"array", "asarray", "stack", "concatenate", "fromiter",
                   "vstack", "hstack"}

_ALLOCATORS = {"zeros", "empty", "ones", "full", "zeros_like", "empty_like",
               "ones_like", "full_like", "concatenate", "stack", "vstack",
               "hstack", "tile", "pad", "eye", "arange", "linspace"}

_DISTANCE_CALLS = {"hypot", "norm", "cdist", "sqrt"}

_REDUCED_DTYPES = {"float32", "float16", "half", "single"}  # reprolint: disable=RL004


def _np_call_name(call: ast.Call) -> str | None:
    """``np.<name>`` / ``numpy.<name>`` / ``np.linalg.<name>`` or None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name) and base.id in _NP_MODULES:
        return func.attr
    if (isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name)
            and base.value.id in _NP_MODULES):
        return func.attr  # np.linalg.norm, np.random.rand, ...
    return None


def _iter_entity_name(node: ast.AST) -> str | None:
    """The entity-collection name an iterable refers to, or None.

    Matches ``self.sensors``, ``sensors``, ``env.uavs`` and enumerated /
    ranged forms like ``range(len(self.sensors))``.
    """
    if isinstance(node, ast.Call):
        func = node.func
        fname = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if fname in ("enumerate", "range", "len", "zip", "reversed", "sorted"):
            for arg in node.args:
                name = _iter_entity_name(arg)
                if name:
                    return name
        return None
    if isinstance(node, ast.Attribute):
        return node.attr if ENTITY_NAME.search(node.attr) else None
    if isinstance(node, ast.Name):
        return node.id if ENTITY_NAME.search(node.id) else None
    if isinstance(node, ast.Subscript):
        return _iter_entity_name(node.value)
    return None


def _functions_with_quals(tree: ast.AST) -> Iterator[tuple[ast.FunctionDef, str]]:
    """Every function paired with its class-qualified local name."""

    def walk(node: ast.AST, stack: list[str]) -> Iterator[tuple[ast.FunctionDef, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTIONS):
                yield child, ".".join([*stack, child.name])
                yield from walk(child, stack)  # nested defs keep the outer qual
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, [*stack, child.name])
            else:
                yield from walk(child, stack)

    yield from walk(tree, [])


# ----------------------------------------------------------------------
# PF001 — per-step-array-rebuild
# ----------------------------------------------------------------------
def check_array_rebuild(tree: ast.AST, ctx: Context):
    for fn, _qual in _functions_with_quals(tree):
        if _LIFECYCLE.match(fn.name):
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            fname = _np_call_name(node)
            if fname not in _ARRAY_BUILDERS or not node.args:
                continue
            first = node.args[0]
            comps: list[ast.AST] = []
            if isinstance(first, (ast.ListComp, ast.GeneratorExp)):
                comps = [first]
            elif isinstance(first, (ast.List, ast.Tuple)):
                comps = [e for e in first.elts
                         if isinstance(e, (ast.ListComp, ast.GeneratorExp))]
            for comp in comps:
                entity = _iter_entity_name(comp.generators[0].iter)
                if entity is None:
                    continue
                yield (node, f"`np.{fname}` rebuilds an array from a Python "
                             f"comprehension over `{entity}` on every call; "
                             f"cache a preallocated array and update it in "
                             f"place at the mutation sites instead")
                break


# ----------------------------------------------------------------------
# PF002 — alloc-in-hot-loop
# ----------------------------------------------------------------------
def make_check_hot_loop_alloc(hot: HotIndex | None):
    """PF002 bound to a hot-path index (None = treat everything as hot)."""

    def check_hot_loop_alloc(tree: ast.AST, ctx: Context):
        seen: set[int] = set()  # a nested def is walked from every enclosing fn
        for fn, qual in _functions_with_quals(tree):
            if hot is not None and not hot.is_hot(ctx.path, qual):
                continue
            for loop in ast.walk(fn):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if node is loop or not isinstance(node, ast.Call):
                        continue
                    fname = _np_call_name(node)
                    if fname not in _ALLOCATORS or id(node) in seen:
                        continue
                    seen.add(id(node))
                    yield (node, f"`np.{fname}` allocates inside a loop on "
                                 f"the training path (`{qual}` is reachable "
                                 f"from the train entrypoints); hoist the "
                                 f"allocation out of the loop and reuse the "
                                 f"buffer")

    return check_hot_loop_alloc


# ----------------------------------------------------------------------
# PF003 — python-elementwise-loop
# ----------------------------------------------------------------------
def _ndarray_names(fn: ast.FunctionDef) -> set[str]:
    """Names bound to ndarrays: np.* results or ndarray-annotated args."""
    names: set[str] = set()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        try:
            text = ast.unparse(arg.annotation) if arg.annotation else ""
        except Exception:  # pragma: no cover - malformed annotation
            text = ""
        if "ndarray" in text:
            names.add(arg.arg)
    for node in ast.walk(fn):
        if (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
                and _np_call_name(node.value) is not None):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_python_elementwise_loop(tree: ast.AST, ctx: Context):
    for fn, _qual in _functions_with_quals(tree):
        arrays = _ndarray_names(fn)
        if not arrays:
            continue
        for loop in ast.walk(fn):
            if not (isinstance(loop, ast.For) and isinstance(loop.iter, ast.Call)):
                continue
            func = loop.iter.func
            if not (isinstance(func, ast.Name) and func.id == "range"):
                continue
            loop_vars = {n.id for n in ast.walk(loop.target)
                         if isinstance(n, ast.Name)}
            hits: set[str] = set()
            for node in ast.walk(loop):
                if not isinstance(node, ast.Subscript):
                    continue
                if isinstance(node.slice, ast.Slice) or (
                        isinstance(node.slice, ast.Tuple)
                        and any(isinstance(e, ast.Slice)
                                for e in node.slice.elts)):
                    continue  # slices (`a[i:j]`, `a[:, k]`) are vectorized block ops
                base = node.value
                if not (isinstance(base, ast.Name) and base.id in arrays):
                    continue
                index_names = {n.id for n in ast.walk(node.slice)
                               if isinstance(n, ast.Name)}
                if index_names & loop_vars:
                    hits.add(base.id)
            if hits:
                which = ", ".join(f"`{h}`" for h in sorted(hits))
                yield (loop, f"Python-level loop indexes ndarray(s) {which} "
                             f"element by element; a vectorized numpy "
                             f"expression (fancy indexing, `np.add.at`, "
                             f"broadcasting) does this in one pass")
                break  # one finding per function is enough signal


# ----------------------------------------------------------------------
# PF004 — quadratic-entity-scan
# ----------------------------------------------------------------------
def _entity_array_names(fn: ast.FunctionDef) -> set[str]:
    """Names bound to per-entity row arrays (positions, cells, ...)."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        from_entities = False
        if isinstance(value, ast.Call) and _np_call_name(value) in _ARRAY_BUILDERS:
            if value.args and isinstance(value.args[0],
                                         (ast.ListComp, ast.GeneratorExp)):
                from_entities = (_iter_entity_name(
                    value.args[0].generators[0].iter) is not None)
        if isinstance(value, ast.Attribute) and _ENTITY_ARRAY_NAME.search(value.attr):
            from_entities = True
        if isinstance(value, ast.Name) and _ENTITY_ARRAY_NAME.search(value.id):
            from_entities = True
        if from_entities:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _ENTITY_ARRAY_NAME.search(arg.arg):
            names.add(arg.arg)
    return names


def check_quadratic_entity_scan(tree: ast.AST, ctx: Context):
    for fn, _qual in _functions_with_quals(tree):
        if _LIFECYCLE.match(fn.name):
            continue  # building entities once is not a per-step scan
        entity_arrays = _entity_array_names(fn)
        reported: set[int] = set()
        for outer in ast.walk(fn):
            if not isinstance(outer, ast.For):
                continue
            outer_entity = _iter_entity_name(outer.iter)
            if outer_entity is None or outer.lineno in reported:
                continue
            # (a) nested loop over a second entity collection
            for inner in ast.walk(outer):
                if inner is outer or not isinstance(inner, ast.For):
                    continue
                inner_entity = _iter_entity_name(inner.iter)
                if inner_entity is not None:
                    reported.add(outer.lineno)
                    yield (outer, f"nested loops scan all "
                                  f"`{outer_entity}` x `{inner_entity}` "
                                  f"pairs every step; index entities in a "
                                  f"spatial grid hash so each one only "
                                  f"visits its neighbourhood")
                    break
            if outer.lineno in reported:
                continue
            # (b) per-entity full distance scan over an entity array
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call):
                    continue
                fname = _np_call_name(node)
                if fname not in _DISTANCE_CALLS:
                    continue
                arg_names = {n.id for a in node.args for n in ast.walk(a)
                             if isinstance(n, ast.Name)}
                scanned = arg_names & entity_arrays
                if scanned:
                    reported.add(outer.lineno)
                    yield (node, f"per-`{outer_entity}` iteration computes "
                                 f"distances against the full "
                                 f"`{sorted(scanned)[0]}` array — an "
                                 f"O(N*M) all-pairs scan; a grid hash "
                                 f"reduces it to the local neighbourhood")
                    break
        # (c) one comprehension, two entity generators
        for node in ast.walk(fn):
            if not isinstance(node, (ast.ListComp, ast.SetComp,
                                     ast.GeneratorExp, ast.DictComp)):
                continue
            entities = [e for e in (_iter_entity_name(g.iter)
                                    for g in node.generators) if e]
            if len(entities) >= 2:
                yield (node, f"comprehension iterates the product of "
                             f"`{entities[0]}` x `{entities[1]}`; this "
                             f"all-pairs scan is the pattern the spatial "
                             f"grid index replaces")


# ----------------------------------------------------------------------
# PF005 — dtype-promotion-copy
# ----------------------------------------------------------------------
def _mentions_reduced_dtype(node: ast.AST) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Attribute) and n.attr in _REDUCED_DTYPES:
            return True
        if isinstance(n, ast.Constant) and n.value in _REDUCED_DTYPES:
            return True
    return False


def check_dtype_promotion(tree: ast.AST, ctx: Context):
    for fn, _qual in _functions_with_quals(tree):
        reduced: set[str] = set()
        full: set[str] = set()
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            is_np = _np_call_name(call) is not None
            is_astype = (isinstance(call.func, ast.Attribute)
                         and call.func.attr == "astype")
            if not (is_np or is_astype):
                continue
            has_reduced = _mentions_reduced_dtype(call)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                (reduced if has_reduced else full).add(target.id)
                (full if has_reduced else reduced).discard(target.id)
        if not reduced or not full:
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.BinOp):
                continue
            names = {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}
            lo, hi = names & reduced, names & full
            if lo and hi:
                yield (node, f"expression mixes float32 array "
                             f"`{sorted(lo)[0]}` with float64 array "
                             f"`{sorted(hi)[0]}`; numpy silently promotes "
                             f"and copies to float64 — pick one dtype for "
                             f"the whole pipeline")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def build_pf_rules(hot: HotIndex | None = None) -> list[Rule]:
    """The PF rule family, with PF002 bound to a hot-path index.

    Passing ``hot=None`` treats every function as hot — right for corpus
    tests and single-file scans; the ``repro perfcheck`` driver builds a
    real index over the package root first.
    """
    return [
        Rule("PF001", "per-step-array-rebuild",
             "Arrays rebuilt from Python comprehensions over entity lists "
             "on every call",
             check_array_rebuild, src_only=True),
        Rule("PF002", "alloc-in-hot-loop",
             "numpy allocations inside loops reachable from the training "
             "entrypoints",
             make_check_hot_loop_alloc(hot), src_only=True),
        Rule("PF003", "python-elementwise-loop",
             "Python loops indexing ndarrays element by element where a "
             "vectorized form exists",
             check_python_elementwise_loop, src_only=True),
        Rule("PF004", "quadratic-entity-scan",
             "All-pairs scans over entity collections (the grid-hash "
             "candidates)",
             check_quadratic_entity_scan, src_only=True),
        Rule("PF005", "dtype-promotion-copy",
             "float32/float64 operands mixed in one expression, forcing a "
             "silent upcast copy",
             check_dtype_promotion, src_only=True),
    ]


#: Standalone registry (every function treated as hot), for tests and
#: ad-hoc ``lint_source(..., rules=PF_RULES)`` calls.
PF_RULES: list[Rule] = build_pf_rules(None)
