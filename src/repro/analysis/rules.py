"""reprolint rule implementations.

Every rule is a function ``check(tree, ctx)`` yielding ``(node, message)``
pairs.  Rules are deliberately tuned to this repository's autodiff engine
(``repro.nn``) rather than being generic Python lint: each one encodes a
failure mode that corrupts training silently instead of raising.

Rule codes are stable; suppress a finding with an inline comment::

    param.data = new_value  # reprolint: disable=RL001
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

__all__ = ["Context", "Rule", "RULES"]


@dataclass(frozen=True)
class Context:
    """Per-file information rules may consult."""

    path: str          # posix-style path of the file being linted
    is_src: bool       # library code (as opposed to tests/benchmarks)
    is_engine: bool    # part of the autodiff engine / analysis whitelist


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    description: str
    check: Callable[[ast.AST, Context], Iterator[tuple[ast.AST, str]]]
    src_only: bool = True       # skip test files entirely
    engine_exempt: bool = False  # skip whitelisted engine modules


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
_NP_MODULES = {"np", "numpy"}

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTIONS):
            yield node


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _attr_call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _names_in(node: ast.AST) -> set[str]:
    out: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Name):
            out.add(n.id)
        elif isinstance(n, ast.Attribute):
            out.add(n.attr)
    return out


def _flatten_targets(target: ast.AST) -> Iterator[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    else:
        yield target


# ----------------------------------------------------------------------
# RL001 — tensor-state-mutation
# ----------------------------------------------------------------------
_STATE_ATTRS = {"data", "grad"}


def _is_state_target(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in _STATE_ATTRS:
        return True
    if isinstance(node, (ast.Subscript, ast.Starred)):
        return _is_state_target(node.value)
    return False


def check_state_mutation(tree: ast.AST, ctx: Context):
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets: Iterable[ast.AST] = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = (node.target,)
        else:
            continue
        for target in targets:
            for leaf in _flatten_targets(target):
                if _is_state_target(leaf):
                    yield (node, "direct mutation of Tensor `.data`/`.grad` outside "
                                 "the engine bypasses autograd bookkeeping; use "
                                 "engine APIs (optimizer.step, load_state_dict, "
                                 "zero_grad) or suppress if intentional")


# ----------------------------------------------------------------------
# RL002 — raw-numpy-on-tensor
# ----------------------------------------------------------------------
_NP_MATH_FUNCS = {
    "exp", "exp2", "log", "log2", "log10", "log1p", "sqrt", "cbrt",
    "tanh", "sinh", "cosh", "sin", "cos", "tan", "abs", "absolute",
    "maximum", "minimum", "clip", "where", "sum", "mean", "power",
    "sign", "square", "matmul", "dot", "einsum",
}

_TENSOR_CONSTRUCTORS = {"Tensor", "Parameter", "as_tensor"}


def _is_tensor_value(node: ast.AST, tensor_names: set[str]) -> bool:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _TENSOR_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _TENSOR_CONSTRUCTORS:
            return True
    if isinstance(node, ast.Name) and node.id in tensor_names:
        return True
    return False


def _annotation_is_tensor(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return bool(re.search(r"\b(Tensor|Parameter)\b", text))


def _iter_stmts(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Yield statements in lexical order, descending into compound blocks
    but *not* into nested function/class definitions."""
    for stmt in body:
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field, None)
            if inner and not isinstance(stmt, (*_FUNCTIONS, ast.ClassDef)):
                yield from _iter_stmts(inner)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _iter_stmts(handler.body)


def check_raw_numpy_on_tensor(tree: ast.AST, ctx: Context):
    for fn in _functions(tree):
        tensor_names: set[str] = set()
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_tensor(arg.annotation):
                tensor_names.add(arg.arg)
        for stmt in _iter_stmts(fn.body):
            # Flag np-math calls on currently tensor-typed names first.
            for call in _calls(stmt):
                func = call.func
                if not (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id in _NP_MODULES
                        and func.attr in _NP_MATH_FUNCS):
                    continue
                for arg_node in call.args:
                    if isinstance(arg_node, ast.Name) and arg_node.id in tensor_names:
                        yield (call, f"`np.{func.attr}({arg_node.id})` on a Tensor "
                                     f"operand escapes the autograd graph; use the "
                                     f"Tensor method (e.g. `{arg_node.id}.{func.attr}(...)`) "
                                     f"or `.numpy()` explicitly if no gradient is wanted")
            # Then update the symbol table from assignments in this stmt.
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if _is_tensor_value(stmt.value, tensor_names):
                        tensor_names.add(target.id)
                    else:
                        tensor_names.discard(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if _annotation_is_tensor(stmt.annotation):
                    tensor_names.add(stmt.target.id)


# ----------------------------------------------------------------------
# RL003 — missing-no-grad
# ----------------------------------------------------------------------
_EVAL_NAME = re.compile(r"evaluate|rollout|greedy|predict|infer|episode"
                        r"|(^|_)eval(_|$)|(^|_)act(_|$)")


def check_missing_no_grad(tree: ast.AST, ctx: Context):
    for fn in _functions(tree):
        if not _EVAL_NAME.search(fn.name):
            continue
        referenced = _names_in(fn)
        if "no_grad" in referenced or "enable_grad" in referenced:
            continue
        calls = list(_calls(fn))
        if any(_attr_call_name(c) == "backward" for c in calls):
            continue  # training code, not a rollout
        calls_policy = False
        for call in calls:
            func = call.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            if "policy" in name.lower() or name == "forward":
                calls_policy = True
                break
        if calls_policy:
            yield (fn, f"evaluation/rollout function `{fn.name}` invokes a policy "
                       f"without `no_grad()`; graph recording leaks memory and "
                       f"slows rollouts")


# ----------------------------------------------------------------------
# RL004 — float32-drift
# ----------------------------------------------------------------------
_F32_ATTRS = {"float32", "float16", "half", "single"}  # reprolint: disable=RL004


def check_float32_drift(tree: ast.AST, ctx: Context):
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute) and node.attr in _F32_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id in _NP_MODULES):
            yield (node, f"`np.{node.attr}` mixes reduced precision into the "
                         f"float64 engine; gradients silently lose precision "
                         f"when arrays are promoted back")
        elif isinstance(node, ast.Constant) and node.value in ("float32", "float16"):  # reprolint: disable=RL004
            yield (node, f"dtype literal {node.value!r} mixes reduced precision "
                         f"into the float64 engine")


# ----------------------------------------------------------------------
# RL005 — backward-loop-capture
# ----------------------------------------------------------------------
def check_backward_loop_capture(tree: ast.AST, ctx: Context):
    for loop in ast.walk(tree):
        if not isinstance(loop, ast.For):
            continue
        loop_vars = {n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)}
        if not loop_vars:
            continue
        for fn in ast.walk(loop):
            if not (isinstance(fn, _FUNCTIONS) and "backward" in fn.name):
                continue
            args = fn.args
            bound = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
            captured = {n.id for n in ast.walk(fn)
                        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}
            leaked = sorted((captured & loop_vars) - bound)
            if leaked:
                yield (fn, f"backward closure `{fn.name}` captures loop "
                           f"variable(s) {', '.join(leaked)} by reference; "
                           f"late binding makes every closure see the final "
                           f"iteration — bind via a default argument "
                           f"(`def {fn.name}({leaked[0]}={leaked[0]})`)")


# ----------------------------------------------------------------------
# RL006 — bare-assert
# ----------------------------------------------------------------------
def check_bare_assert(tree: ast.AST, ctx: Context):
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            yield (node, "bare `assert` in library code vanishes under "
                         "`python -O`; raise an explicit exception instead")


# ----------------------------------------------------------------------
# RL007 — missing-zero-grad
# ----------------------------------------------------------------------
def check_missing_zero_grad(tree: ast.AST, ctx: Context):
    for fn in _functions(tree):
        calls = [c for c in _calls(fn) if isinstance(c.func, ast.Attribute)]
        if not any(c.func.attr == "backward" for c in calls):
            continue
        steps_optimizer = any(
            c.func.attr == "step"
            and any("opt" in s.lower() for s in _names_in(c.func.value))
            for c in calls)
        if not steps_optimizer:
            continue
        if any(c.func.attr == "zero_grad" for c in calls):
            continue
        yield (fn, f"`{fn.name}` calls backward() and optimizer step() but "
                   f"never zero_grad(); gradients accumulate across steps "
                   f"silently")


# ----------------------------------------------------------------------
# RL008 — unguarded-reciprocal
# ----------------------------------------------------------------------
def check_unguarded_reciprocal(tree: ast.AST, ctx: Context):
    for node in ast.walk(tree):
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
            continue
        left, right = node.left, node.right
        if not (isinstance(left, ast.Constant) and left.value in (1, 1.0)):
            continue
        if isinstance(right, (ast.Name, ast.Attribute, ast.Subscript)):
            yield (node, "unguarded reciprocal `1 / x`: zero distances or "
                         "degenerate shortest paths produce Inf that flows "
                         "into softmax/log downstream; add an epsilon "
                         "(`1.0 / (x + 1e-6)`) or clamp with np.maximum")


# ----------------------------------------------------------------------
# RL009 — tensor-attr-tape-leak
# ----------------------------------------------------------------------
# A graph-attached Tensor parked on ``self`` inside a Module's forward
# path keeps the whole step's tape alive into the next step: backward
# then re-traverses the previous step's graph (wrong gradients) and
# memory grows without bound.  Carried state must be detached first —
# ``.detach()`` / ``.numpy()`` / re-wrapping in a fresh ``Tensor(...)``.
# Lifecycle methods (__init__, reset*/begin*/load*/...) construct state
# from scratch, so they are exempt; the runtime counterpart is
# graphcheck's GC004 cross-step diff.
_RL009_EXEMPT_METHOD = re.compile(
    r"^(__init__$|__setstate__$|reset|begin|load|init|save|set_|post|clear)")

# Calls that yield a detached value (fresh leaf or plain ndarray).
_DETACHING_CALLS = {"detach", "numpy", "copy", "item", "init_state",
                    "zeros_like", "asarray"} | _TENSOR_CONSTRUCTORS

_TENSOR_OP_METHODS = {
    "tanh", "relu", "sigmoid", "leaky_relu", "softmax", "log_softmax",
    "exp", "log", "sqrt", "sum", "mean", "max", "min", "reshape",
    "squeeze", "transpose", "expand_dims", "concat", "stack", "matmul",
    "norm", "clip", "abs", "backward_through", "forward",
}


def _rhs_is_detached(node: ast.AST) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Call):
            f = n.func
            name = f.attr if isinstance(f, ast.Attribute) else (
                f.id if isinstance(f, ast.Name) else "")
            if name in _DETACHING_CALLS:
                return True
    return False


def _produces_tensor(node: ast.AST, tensor_names: set[str],
                     tensor_attrs: frozenset[str] = frozenset()) -> bool:
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_produces_tensor(e, tensor_names, tensor_attrs)
                   for e in node.elts)
    if isinstance(node, ast.Name):
        return node.id in tensor_names
    if isinstance(node, ast.Attribute):
        return (isinstance(node.value, ast.Name) and node.value.id == "self"
                and node.attr in tensor_attrs)
    if isinstance(node, ast.BinOp):
        return (_produces_tensor(node.left, tensor_names, tensor_attrs)
                or _produces_tensor(node.right, tensor_names, tensor_attrs))
    if isinstance(node, ast.Subscript):
        return _produces_tensor(node.value, tensor_names, tensor_attrs)
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Attribute):
            if f.attr in _TENSOR_OP_METHODS:
                return True
            # ``self.submodule(...)``: a module call returns graph tensors.
            if isinstance(f.value, ast.Name) and f.value.id == "self":
                return True
    return False


def check_tensor_attr_tape_leak(tree: ast.AST, ctx: Context):
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        bases = {b for base in cls.bases for b in _names_in(base)}
        if "Module" not in bases:
            continue
        for fn in cls.body:
            if not isinstance(fn, _FUNCTIONS) or _RL009_EXEMPT_METHOD.match(fn.name):
                continue
            tensor_names: set[str] = set()
            tensor_attrs: set[str] = set()
            for stmt in _iter_stmts(fn.body):
                if not isinstance(stmt, ast.Assign):
                    continue
                produces = (_produces_tensor(stmt.value, tensor_names,
                                             frozenset(tensor_attrs))
                            and not _rhs_is_detached(stmt.value))
                for target in stmt.targets:
                    for leaf in _flatten_targets(target):
                        if (isinstance(leaf, ast.Attribute)
                                and isinstance(leaf.value, ast.Name)
                                and leaf.value.id == "self" and produces):
                            tensor_attrs.add(leaf.attr)
                            yield (stmt, f"`self.{leaf.attr}` stores a graph-attached "
                                         f"Tensor across timesteps; the autodiff tape "
                                         f"grows step over step and backward revisits "
                                         f"stale graphs — detach carried state "
                                         f"(`.detach()`, `.numpy()`, or wrap in a "
                                         f"fresh `Tensor(...)`)")
                        elif isinstance(leaf, ast.Name) and produces:
                            tensor_names.add(leaf.id)
                        elif isinstance(leaf, ast.Name):
                            tensor_names.discard(leaf.id)


# ----------------------------------------------------------------------
# RL010 — global-rng (the DT001 determinism check, wired into plain lint)
# ----------------------------------------------------------------------
def check_global_rng_use(tree: ast.AST, ctx: Context):
    # Lazy import: determinism.rules builds on this module's framework,
    # so the dependency must stay one-way at import time.
    from .determinism.rules import iter_global_rng

    yield from iter_global_rng(tree)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
RULES: list[Rule] = [
    Rule("RL001", "tensor-state-mutation",
         "Direct `.data`/`.grad` writes outside the engine whitelist",
         check_state_mutation, src_only=True, engine_exempt=True),
    Rule("RL002", "raw-numpy-on-tensor",
         "`np.*` math called on Tensor operands, escaping the autograd graph",
         check_raw_numpy_on_tensor, src_only=True),
    Rule("RL003", "missing-no-grad",
         "Evaluation/rollout functions that call policies without no_grad()",
         check_missing_no_grad, src_only=True),
    Rule("RL004", "float32-drift",
         "Reduced-precision dtypes mixed into the float64 engine",
         check_float32_drift, src_only=True),
    Rule("RL005", "backward-loop-capture",
         "Backward closures capturing loop variables by late binding",
         check_backward_loop_capture, src_only=False),
    Rule("RL006", "bare-assert",
         "Bare asserts in library hot paths (stripped under -O)",
         check_bare_assert, src_only=True),
    Rule("RL007", "missing-zero-grad",
         "backward() + optimizer step() without zero_grad() in between",
         check_missing_zero_grad, src_only=True),
    Rule("RL008", "unguarded-reciprocal",
         "`1 / x` with no epsilon or clamp on the denominator",
         check_unguarded_reciprocal, src_only=True),
    Rule("RL009", "tensor-attr-tape-leak",
         "Graph-attached Tensors stored on `self` across timesteps without detach",
         check_tensor_attr_tape_leak, src_only=True, engine_exempt=True),
    Rule("RL010", "global-rng",
         "Global-stream RNG draws (np.random.*, random.*, os.urandom) "
         "instead of an injected np.random.Generator (= determinism DT001)",
         check_global_rng_use, src_only=True),
]
