"""reprolint driver: file discovery, suppression handling, CLI.

Usage::

    repro lint [paths ...]          # via the main CLI
    reprolint [paths ...]           # console script
    python -m repro.analysis.lint   # module form

Exit status is 0 when no diagnostics were emitted, 1 otherwise (2 on
usage errors).  Suppress a single line with::

    something.data = x  # reprolint: disable=RL001
    risky_line()        # reprolint: disable          (all rules)
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from .rules import RULES, Context, Rule

__all__ = ["Diagnostic", "lint_source", "lint_paths", "main"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")

# Modules allowed to touch Tensor internals (`.data` / `.grad`) directly.
_ENGINE_PREFIXES = ("repro/nn/", "repro/analysis/")

_TEST_DIRS = {"tests", "test", "benchmarks"}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, formatted as ``path:line:col: CODE message [name]``."""

    path: str
    line: int
    col: int
    code: str
    name: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message} [{self.name}]")


def _classify(path: str) -> Context:
    posix = PurePosixPath(path.replace("\\", "/"))
    parts = set(posix.parts)
    stem = posix.name
    is_test = bool(parts & _TEST_DIRS) or stem.startswith("test_") or stem == "conftest.py"
    is_engine = any(prefix in str(posix) for prefix in _ENGINE_PREFIXES)
    return Context(path=str(posix), is_src=not is_test, is_engine=is_engine)


def _suppressed(lines: list[str], lineno: int, code: str) -> bool:
    if not (1 <= lineno <= len(lines)):
        return False
    match = _SUPPRESS_RE.search(lines[lineno - 1])
    if match is None:
        return False
    listed = match.group(1)
    if listed is None:
        return True  # bare `disable` silences every rule on the line
    return code in {c.strip().upper() for c in listed.split(",")}


def lint_source(source: str, path: str = "<string>",
                rules: Sequence[Rule] | None = None) -> list[Diagnostic]:
    """Lint one module's source text; returns diagnostics sorted by line."""
    ctx = _classify(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Diagnostic(path, exc.lineno or 1, exc.offset or 0,
                           "RL000", "syntax-error", f"could not parse: {exc.msg}")]
    lines = source.splitlines()
    diagnostics: list[Diagnostic] = []
    for rule in rules if rules is not None else RULES:
        if rule.src_only and not ctx.is_src:
            continue
        if rule.engine_exempt and ctx.is_engine:
            continue
        for node, message in rule.check(tree, ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if _suppressed(lines, line, rule.code):
                continue
            diagnostics.append(Diagnostic(ctx.path, line, col,
                                          rule.code, rule.name, message))
    diagnostics.sort(key=lambda d: (d.line, d.col, d.code))
    return diagnostics


def _discover(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)))
        elif p.suffix == ".py":
            files.append(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def lint_paths(paths: Iterable[str]) -> list[Diagnostic]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    diagnostics: list[Diagnostic] = []
    for file in _discover(paths):
        diagnostics.extend(lint_source(file.read_text(encoding="utf-8"), str(file)))
    return diagnostics


def _print_rules() -> None:
    for rule in RULES:
        scope = "src-only" if rule.src_only else "src+tests"
        extra = ", engine-exempt" if rule.engine_exempt else ""
        print(f"{rule.code}  {rule.name:<24} {rule.description} ({scope}{extra})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Static autodiff-misuse lint for the repro codebase")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    try:
        diagnostics = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    for diag in diagnostics:
        print(diag.format())
    if diagnostics:
        files = len({d.path for d in diagnostics})
        print(f"reprolint: {len(diagnostics)} issue(s) in {files} file(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
