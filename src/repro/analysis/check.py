"""``repro check`` — run every analysis pillar, one summary table.

The four pillars each have their own CLI with their own option surface;
this meta-command runs them all with sensible defaults and reduces the
result to a single table plus a combined exit code — the one command a
pre-push hook or a CI smoke stage needs:

* ``lint``               — reprolint autodiff-misuse rules over ``src``.
* ``graphcheck``         — GC001–GC005 IR passes on a traced step of the
                           registered methods.
* ``check-determinism``  — DT source rules + shared-state map
                           (``--quick``: the two-run bisector is skipped).
* ``perfcheck``          — PF performance rules + PC fusion/buffer/
                           recompute passes.
* ``compile``            — lower the UAV surrogate step through the
                           compiled plan executor and verify bitwise
                           replay/eager golden equivalence (``--smoke``).

Exit status is 0 only when every pillar passed.  Each pillar's full
output is buffered and replayed only when it failed (always, with
``--verbose``), so a clean run prints just the table.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
import time
from dataclasses import dataclass

__all__ = ["main", "run_all"]


@dataclass
class PillarResult:
    name: str
    exit_code: int
    seconds: float
    output: str

    @property
    def status(self) -> str:
        return "ok" if self.exit_code == 0 else f"FAIL ({self.exit_code})"


def _pillars(methods: list[str]) -> list[tuple[str, list[str]]]:
    """(name, argv) per pillar; import deferred so ``--list`` stays cheap."""
    return [
        ("lint", ["src"]),
        ("graphcheck", ["--methods", *methods]),
        ("check-determinism", ["--quick"]),
        ("perfcheck", ["src", "--methods", *methods]),
        ("compile", ["--smoke"]),
    ]


def _run_pillar(name: str, pillar_argv: list[str]) -> PillarResult:
    if name == "lint":
        from .lint import main as pillar_main
    elif name == "graphcheck":
        from .graphcheck import main as pillar_main
    elif name == "check-determinism":
        from .determinism import main as pillar_main
    elif name == "perfcheck":
        from .perfcheck import main as pillar_main
    elif name == "compile":
        from ..nn.compile_cli import main as pillar_main
    else:  # pragma: no cover - guarded by _pillars
        raise ValueError(f"unknown pillar {name!r}")

    buffer = io.StringIO()
    start = time.perf_counter()
    try:
        with contextlib.redirect_stdout(buffer), contextlib.redirect_stderr(buffer):
            code = int(pillar_main(pillar_argv) or 0)
    except SystemExit as exc:  # a pillar's argparse bailing out
        code = int(exc.code or 0)
    except Exception as exc:  # noqa: BLE001 - a crashed pillar is a failure, not ours
        buffer.write(f"\n{name} crashed: {type(exc).__name__}: {exc}\n")
        code = 3
    return PillarResult(name, code, time.perf_counter() - start, buffer.getvalue())


def run_all(methods: list[str] | None = None,
            only: list[str] | None = None) -> list[PillarResult]:
    """Run the pillars (optionally a subset) and return their results."""
    methods = methods or ["garl"]
    results = []
    for name, pillar_argv in _pillars(methods):
        if only and name not in only:
            continue
        results.append(_run_pillar(name, pillar_argv))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="run all five analysis pillars (lint, graphcheck, "
                    "check-determinism --quick, perfcheck, compile --smoke) "
                    "and summarise")
    parser.add_argument("--methods", nargs="+", default=["garl"],
                        help="registry methods the traced pillars analyse "
                             "(default: garl)")
    parser.add_argument("--only", nargs="+", default=None,
                        choices=["lint", "graphcheck", "check-determinism",
                                 "perfcheck", "compile"],
                        help="run just these pillars")
    parser.add_argument("--verbose", action="store_true",
                        help="replay every pillar's output, not only failures")
    args = parser.parse_args(argv)

    results = run_all(methods=args.methods, only=args.only)

    width = max(len(r.name) for r in results)
    print("pillar".ljust(width), " status     seconds")
    for r in results:
        print(r.name.ljust(width), f" {r.status:<9} {r.seconds:8.2f}")
    failed = [r for r in results if r.exit_code != 0]
    print(f"\n{len(results) - len(failed)}/{len(results)} pillars clean")

    for r in results:
        if args.verbose or r.exit_code != 0:
            print(f"\n--- {r.name} ---")
            print(r.output.rstrip())

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
