"""Per-iteration state fingerprinting for the divergence bisector.

A fingerprint is a small ``{component: digest}`` dict capturing every
piece of state that must match between two same-seed runs at an
iteration boundary:

* ``params``   — every policy parameter, byte-exact (via
  :func:`repro.nn.serialize.state_digest` over the agent's policy
  ``state_dict`` trees).
* ``trainer``  — optimizer moments/step counts, schedules, sampling rng.
* ``env``      — the env's rng stream + kinematic state digest (and the
  per-replica digests when vectorized collection has run).
* ``telemetry``— the iteration's training record, canonicalised exactly
  as ``TrainingLogger`` would serialise it.
* ``metrics``  — the live observability registry, when one is active.

Comparing whole fingerprints answers *whether* two runs diverged at an
iteration; comparing component-wise answers *where* the divergence
entered the state.
"""

from __future__ import annotations

import json
import math

from ...nn.serialize import state_digest

__all__ = ["fingerprint_agent", "record_payload", "diff_components"]


def record_payload(record, count: int = 0) -> dict:
    """Canonical telemetry payload for a train record.

    Mirrors ``TrainingLogger.__call__``'s field layout (including the
    non-finite → ``None`` substitution) so the fingerprint certifies the
    exact bytes an on-disk ``train.jsonl`` row would hold.
    """
    if record is None:
        return {}
    if hasattr(record, "metrics"):
        payload = {"iteration": getattr(record, "iteration", count),
                   **{f"metric_{k}": v for k, v in record.metrics.items()},
                   **{f"loss_{k}": v
                      for k, v in getattr(record, "losses", {}).items()}}
    else:
        payload = {"iteration": record.get("iteration", count)}
        payload.update({f"metric_{k}": v
                        for k, v in record.get("metrics", {}).items()})
        payload.update({f"loss_{k}": v
                        for k, v in record.get("losses", {}).items()})
    return {k: (None if isinstance(v, float) and not math.isfinite(v) else v)
            for k, v in payload.items()}


def fingerprint_agent(agent, record=None) -> dict[str, str]:
    """Fingerprint one agent's full training state at an iteration boundary."""
    fp: dict[str, str] = {}

    ugv = getattr(agent, "ugv_policy", None)
    uav = getattr(agent, "uav_policy", None)
    params = {}
    if ugv is not None and hasattr(ugv, "state_dict"):
        params["ugv"] = ugv.state_dict()
    if uav is not None and hasattr(uav, "state_dict"):
        params["uav"] = uav.state_dict()
    if not params and hasattr(agent, "state_dict"):
        params["agent"] = agent.state_dict()
    if params:
        fp["params"] = state_digest(params)

    trainer = getattr(agent, "trainer", None)
    if trainer is not None and hasattr(trainer, "state_dict"):
        state = dict(trainer.state_dict())
        state.pop("env_rng", None)  # reported under the env component
        state.pop("venv", None)
        fp["trainer"] = state_digest(state)

    env = getattr(agent, "env", None)
    if env is not None and hasattr(env, "state_digest"):
        env_part: dict = {"env": env.state_digest()}
        venv = getattr(trainer, "_venv", None)
        if venv is not None:
            env_part["replicas"] = venv.state_digests()
        fp["env"] = state_digest(env_part)

    if record is not None:
        fp["telemetry"] = state_digest(
            json.loads(json.dumps(record_payload(record))))

    from ...obs.scope import active_profiler

    prof = active_profiler()
    if prof is not None:
        fp["metrics"] = prof.metrics.digest()
    return fp


def diff_components(fp_a: dict[str, str], fp_b: dict[str, str]) -> list[str]:
    """Component names whose digests differ (missing counts as differing)."""
    keys = sorted(set(fp_a) | set(fp_b))
    return [k for k in keys if fp_a.get(k) != fp_b.get(k)]
