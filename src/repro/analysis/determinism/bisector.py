"""Runtime divergence bisector behind ``repro check-determinism``.

Runs the same training segment twice from the same seed and certifies
bit-identical state at every iteration boundary.  On mismatch it narrows
the divergence in two stages:

1. **Iteration**: both runs advance in lockstep, fingerprinted after
   every iteration (:mod:`.fingerprint`), so the first divergent
   iteration — and which state component diverged (params / trainer /
   env / telemetry) — falls straight out of the comparison.
2. **Op**: both agents are rewound to their pre-iteration snapshots
   (the PR 4 ``state_dict`` round-trip) and the divergent iteration is
   replayed under a :class:`FingerprintTrace` — the PR 2 tape tracer
   extended to digest every op output at record time.  The first tape
   index where op, creation site or value digest disagrees names the
   exact op that injected nondeterminism.

Lockstep (rather than two sequential runs) is deliberate: any hidden
*shared* state — a global rng, a module cache — is interleaved between
the two runs, so contamination that two back-to-back runs might
coincidentally reproduce identically shows up as a divergence here.
"""

from __future__ import annotations

import copy
import inspect
import sys
from dataclasses import dataclass, field

from ...nn.tracer import trace

__all__ = ["DivergenceReport", "FingerprintTrace", "check_determinism",
           "first_tape_divergence"]


class FingerprintTrace(trace):
    """A tape that digests every op output the moment it is recorded.

    Digesting at record time (not after the step) pins the value *as
    produced*: later in-place mutation of an intermediate cannot mask a
    divergence.  ``fingerprints[i]`` aligns with ``records[i]``.
    """

    # Like obs.opprof.TimedTrace: this override adds a stack frame, so
    # site attribution must skip this file and the op-name lookup has to
    # happen here where _getframe(2) still lands on the op method.
    _extra_site_skip = ("bisector.py",)

    def __init__(self, site_provenance: bool = True):
        super().__init__(site_provenance=site_provenance)
        self.fingerprints: list[str] = []

    def record_op(self, child, parents, op, attrs=None) -> None:
        if op is None:
            op = sys._getframe(2).f_code.co_name.strip("_")
        super().record_op(child, parents, op, attrs)
        self.fingerprints.append(child.fingerprint())


@dataclass
class DivergenceReport:
    """Outcome of one two-run determinism check."""

    method: str
    iterations: int
    num_envs: int
    equal: bool
    first_divergent_iteration: int | None = None
    divergent_components: list[str] = field(default_factory=list)
    op_index: int | None = None
    op: str | None = None
    site: str | None = None
    op_note: str = ""
    fingerprint_history: list[dict] = field(default_factory=list)

    def format(self) -> str:
        mode = f"num_envs={self.num_envs}" if self.num_envs > 1 else "sequential"
        if self.equal:
            return (f"check-determinism: {self.method} ({mode}): OK — "
                    f"{self.iterations} iteration(s) bit-identical across "
                    f"two same-seed runs")
        lines = [f"check-determinism: {self.method} ({mode}): DIVERGED at "
                 f"iteration {self.first_divergent_iteration} "
                 f"(components: {', '.join(self.divergent_components) or '?'})"]
        if self.op is not None:
            lines.append(f"  first divergent op: #{self.op_index} `{self.op}` "
                         f"at {self.site}")
        if self.op_note:
            lines.append(f"  {self.op_note}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {"method": self.method, "iterations": self.iterations,
                "num_envs": self.num_envs, "equal": self.equal,
                "first_divergent_iteration": self.first_divergent_iteration,
                "divergent_components": self.divergent_components,
                "op_index": self.op_index, "op": self.op, "site": self.site,
                "op_note": self.op_note}


def first_tape_divergence(tape_a: FingerprintTrace,
                          tape_b: FingerprintTrace) -> tuple[int, str, str, str] | None:
    """First index where the two tapes disagree, or None if identical.

    Returns ``(index, op, site, why)`` where ``why`` distinguishes a
    *structural* divergence (different op/site sequence — control flow
    already forked upstream) from a *value* divergence (same op, byte-
    different output — this op or its inputs injected the difference).
    """
    for i in range(min(len(tape_a), len(tape_b))):
        ra, rb = tape_a.records[i], tape_b.records[i]
        if ra.op != rb.op or ra.site != rb.site:
            return (i, ra.op, ra.site,
                    f"structural: run A recorded `{ra.op}` at {ra.site}, "
                    f"run B `{rb.op}` at {rb.site} — control flow diverged "
                    f"before this op")
        if tape_a.fingerprints[i] != tape_b.fingerprints[i]:
            return (i, ra.op, ra.site,
                    "value: same op and site, byte-different output — the "
                    "first nondeterministic input enters here")
    if len(tape_a) != len(tape_b):
        i = min(len(tape_a), len(tape_b))
        longer = tape_a if len(tape_a) > len(tape_b) else tape_b
        rec = longer.records[i]
        return (i, rec.op, rec.site,
                f"structural: tapes have different lengths "
                f"({len(tape_a)} vs {len(tape_b)} ops)")
    return None


def _default_factory(method, campus, preset, num_ugvs, num_uavs_per_ugv, seed):
    """Build a fresh agent exactly as ``run_training`` does."""
    from ...experiments.runner import build_agent

    return build_agent(method, campus, preset, num_ugvs, num_uavs_per_ugv,
                       seed)


def _step(agent, episodes: int, num_envs: int, tape=None):
    """Advance one training iteration; returns the iteration's record."""
    captured: list = []
    sig = inspect.signature(agent.train).parameters
    kwargs = {}
    if "callback" in sig:
        kwargs["callback"] = captured.append
    if num_envs > 1 and "num_envs" in sig:
        kwargs["num_envs"] = num_envs
    if tape is not None:
        with tape:
            agent.train(1, episodes, **kwargs)
    else:
        agent.train(1, episodes, **kwargs)
    if captured:
        return captured[-1]
    history = getattr(agent, "trainer", agent)
    records = getattr(history, "history", None)
    return records[-1] if records else None


def check_determinism(method: str = "garl", campus: str = "kaist",
                      preset: str = "smoke", iterations: int = 3,
                      episodes_per_iteration: int = 1, num_envs: int = 1,
                      num_ugvs: int = 2, num_uavs_per_ugv: int = 1,
                      seed: int = 0, agent_factory=None,
                      keep_history: bool = False) -> DivergenceReport:
    """Two-run lockstep determinism check with iteration→op bisection.

    ``agent_factory`` (a zero-argument callable returning a fresh agent)
    overrides the default registry construction — the test suite uses it
    to inject deliberately nondeterministic policies and assert the
    bisector names the injected op.
    """
    from .fingerprint import diff_components, fingerprint_agent

    def build():
        if agent_factory is not None:
            return agent_factory()
        return _default_factory(method, campus, preset, num_ugvs,
                                num_uavs_per_ugv, seed)

    agent_a, agent_b = build(), build()
    report = DivergenceReport(method=method, iterations=iterations,
                              num_envs=num_envs, equal=True)

    can_rewind = (hasattr(agent_a, "state_dict")
                  and hasattr(agent_a, "load_state_dict"))
    for t in range(iterations):
        snap_a = copy.deepcopy(agent_a.state_dict()) if can_rewind else None
        snap_b = copy.deepcopy(agent_b.state_dict()) if can_rewind else None
        rec_a = _step(agent_a, episodes_per_iteration, num_envs)
        rec_b = _step(agent_b, episodes_per_iteration, num_envs)
        fp_a = fingerprint_agent(agent_a, rec_a)
        fp_b = fingerprint_agent(agent_b, rec_b)
        if keep_history:
            report.fingerprint_history.append({"iteration": t, "a": fp_a,
                                               "b": fp_b})
        if fp_a == fp_b:
            continue

        report.equal = False
        report.first_divergent_iteration = t
        report.divergent_components = diff_components(fp_a, fp_b)
        if not can_rewind:
            report.op_note = ("agent exposes no state_dict/load_state_dict; "
                              "cannot rewind for the op-level replay")
            return report

        # Rewind both runs to the pre-iteration snapshot and replay the
        # divergent iteration under the fingerprinting tape tracer.
        agent_a.load_state_dict(snap_a)
        agent_b.load_state_dict(snap_b)
        tape_a = FingerprintTrace()
        tape_b = FingerprintTrace()
        _step(agent_a, episodes_per_iteration, num_envs, tape=tape_a)
        _step(agent_b, episodes_per_iteration, num_envs, tape=tape_b)
        hit = first_tape_divergence(tape_a, tape_b)
        if hit is None:
            report.op_note = ("the traced replay did not reproduce the "
                              "divergence (state-only nondeterminism, or a "
                              "race that the replay ordering hid); the "
                              "component diff above still localises the "
                              "iteration")
        else:
            report.op_index, report.op, report.site, report.op_note = hit
        return report
    return report
