"""Whole-program shared-mutable-state pass.

Answers one question for the multi-process worker pool
(:mod:`repro.env.workers`): *which state is shared between what a worker
executes and the rest of the program?*  Everything in the resulting map
must be replicated, re-seeded or locked per worker — it is the explicit
contract the worker pool builds against, and the map now audits both
sides of the fork boundary: a second reachability sweep from the worker
entrypoint (``_worker_main``) marks what a worker can write, and
``os.register_at_fork`` cleanup hooks are recorded as fork guards so the
dangerous residue — hot, unguarded, fork-crossing state — is a single
``fork_boundary_sites`` list (empty in a healthy tree).

The pass is a conservative, name-based static analysis over the package
sources (no imports are executed):

1. **Index** every module: module-level bindings (classified mutable /
   rng / file-handle / immutable), function and method definitions,
   class-level mutable attributes.
2. **Call graph**: for every function, the set of names it calls.
   Resolution is by name — precise enough for this codebase's flat call
   style, and strictly over-approximate (a name match never *misses* a
   real call; it may add spurious reachability, which only widens the
   contract).
3. **Reachability** from the long-running entrypoints (``run_training``,
   ``run_method``, ``run_service`` — the inference service — and
   ``train`` — i.e. ``agent.train`` and everything it
   pulls in) via BFS.
4. **Shared-state map**: every module global / class attribute that is
   *written* from some function, annotated with its writers and whether
   each writer is reachable from the train loop (``hot`` writers).

Emitters produce a JSON artifact (machine-readable contract, uploaded by
CI) and a DOT graph (entrypoints → writer functions → state nodes).
"""

from __future__ import annotations

import ast
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from .rules import _MUTABLE_CONSTRUCTORS, _MUTATOR_METHODS, _fork_guarded_names

__all__ = ["SharedStateMap", "StateSite", "Writer", "build_shared_state_map",
           "DEFAULT_ENTRYPOINTS", "WORKER_ENTRYPOINTS"]

DEFAULT_ENTRYPOINTS = ("run_training", "run_method", "train", "run_service")

# The rollout-worker process entrypoint (repro.env.workers): a second
# BFS from here marks which state a *worker* can write, so the map
# audits both sides of the fork boundary.
WORKER_ENTRYPOINTS = ("_worker_main",)


@dataclass
class Writer:
    """One function that writes a piece of shared state."""

    function: str        # qualified, e.g. repro.experiments.runner.get_campus
    site: str            # path:line of the writing statement
    reachable: bool = False  # from the training entrypoints
    worker_reachable: bool = False  # from the rollout-worker entrypoint

    def as_dict(self) -> dict:
        return {"function": self.function, "site": self.site,
                "reachable": self.reachable,
                "worker_reachable": self.worker_reachable}


@dataclass
class StateSite:
    """One piece of shared mutable state (module global or class attr)."""

    kind: str            # "module_global" | "class_attribute" | "rng" | "file_handle"
    module: str          # dotted module name
    name: str            # global name or Class.attr
    defined_at: str      # path:line of the definition
    value_type: str      # dict / list / set / rng / file / rebound
    writers: list[Writer] = field(default_factory=list)
    fork_guarded: bool = False  # reset by an os.register_at_fork hook

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.name}"

    @property
    def hot(self) -> bool:
        """Written from a function reachable from the train loop."""
        return any(w.reachable for w in self.writers)

    @property
    def worker_reachable(self) -> bool:
        """Written from a function a rollout worker can reach."""
        return any(w.worker_reachable for w in self.writers)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "module": self.module, "name": self.name,
                "defined_at": self.defined_at, "value_type": self.value_type,
                "hot": self.hot,
                "worker_reachable": self.worker_reachable,
                "fork_guarded": self.fork_guarded,
                "writers": [w.as_dict() for w in self.writers]}


@dataclass
class SharedStateMap:
    """The full artifact: state sites + the call graph that reached them."""

    root: str
    entrypoints: tuple[str, ...]
    sites: list[StateSite] = field(default_factory=list)
    reachable_functions: list[str] = field(default_factory=list)
    worker_entrypoints: tuple[str, ...] = WORKER_ENTRYPOINTS
    worker_reachable_functions: list[str] = field(default_factory=list)

    @property
    def hot_sites(self) -> list[StateSite]:
        return [s for s in self.sites if s.hot]

    @property
    def fork_boundary_sites(self) -> list[StateSite]:
        """Hot state crossing the fork boundary without an at-fork guard.

        These are the genuinely dangerous sites for the worker pool:
        mutated on the training path (so the parent's copy has live
        content at fork time) and not covered by an
        ``os.register_at_fork`` cleanup hook.  The pool's bootstrap
        (``reset_worker_process_state``) must clear every one of them.
        """
        return [s for s in self.sites if s.hot and not s.fork_guarded]

    def to_json(self, indent: int = 2) -> str:
        return json.dumps({
            "schema": "repro.sharedstate/1",
            "root": self.root,
            "entrypoints": list(self.entrypoints),
            "worker_entrypoints": list(self.worker_entrypoints),
            "summary": {"sites": len(self.sites),
                        "hot_sites": len(self.hot_sites),
                        "fork_guarded_sites": sum(
                            1 for s in self.sites if s.fork_guarded),
                        "worker_reachable_sites": sum(
                            1 for s in self.sites if s.worker_reachable),
                        "unguarded_fork_boundary_sites": len(
                            self.fork_boundary_sites),
                        "reachable_functions": len(self.reachable_functions),
                        "worker_reachable_functions": len(
                            self.worker_reachable_functions)},
            "sites": [s.as_dict() for s in sorted(
                self.sites, key=lambda s: (not s.hot, s.qualified))],
        }, indent=indent, sort_keys=False)

    def to_dot(self) -> str:
        lines = ["digraph sharedstate {", "  rankdir=LR;",
                 '  node [fontname="monospace" fontsize=10];']
        for ep in self.entrypoints:
            lines.append(f'  "{ep}" [shape=doubleoctagon];')
        for site in self.sites:
            color = "red" if site.hot else "gray"
            lines.append(f'  "{site.qualified}" [shape=box style=filled '
                         f'fillcolor=white color={color} '
                         f'label="{site.qualified}\\n({site.value_type})"];')
            for writer in site.writers:
                style = "solid" if writer.reachable else "dashed"
                lines.append(f'  "{writer.function}" [shape=ellipse];')
                lines.append(f'  "{writer.function}" -> "{site.qualified}" '
                             f'[style={style}];')
        lines.append("}")
        return "\n".join(lines)

    def format_summary(self) -> str:
        hot = self.hot_sites
        out = [f"shared-state map: {len(self.sites)} site(s), "
               f"{len(hot)} written on the training path, "
               f"{len(self.fork_boundary_sites)} unguarded at the fork "
               f"boundary"]
        for site in sorted(self.sites, key=lambda s: (not s.hot, s.qualified)):
            marker = "HOT " if site.hot else "    "
            writers = ", ".join(sorted({w.function.rsplit('.', 1)[-1]
                                        for w in site.writers})) or "-"
            flags = "".join([" [fork-guarded]" if site.fork_guarded else "",
                             " [worker]" if site.worker_reachable else ""])
            out.append(f"  {marker}{site.qualified} ({site.value_type}) "
                       f"<- {writers}{flags}")
        return "\n".join(out)


# ----------------------------------------------------------------------
# Module indexing
# ----------------------------------------------------------------------

@dataclass
class _FunctionInfo:
    qualname: str
    module: str
    node: ast.AST
    calls: set[str] = field(default_factory=set)


def _module_name(path: Path, root: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else root.name


def _called_names(fn: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name):
                names.add(f.id)
            elif isinstance(f, ast.Attribute):
                names.add(f.attr)
    return names


def _site(path: Path, node: ast.AST) -> str:
    return f"{path}:{getattr(node, 'lineno', 0)}"


def _classify_value(value: ast.AST) -> str | None:
    """Mutability class of a binding's RHS, or None for immutable."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        f = value.func
        fname = (f.id if isinstance(f, ast.Name)
                 else f.attr if isinstance(f, ast.Attribute) else "")
        if fname in _MUTABLE_CONSTRUCTORS:
            return fname if fname in ("dict", "list", "set") else "dict"
        if fname in ("default_rng", "Generator", "RandomState", "Random"):
            return "rng"
        if fname == "open":
            return "file"
    return None


def _reach(by_name: dict[str, list[str]], functions: dict[str, "_FunctionInfo"],
           entrypoints: tuple[str, ...]) -> set[str]:
    """BFS over the name-resolved call graph from ``entrypoints``."""
    work: deque[str] = deque()
    reachable: set[str] = set()
    for ep in entrypoints:
        for qual in by_name.get(ep, []):
            if qual not in reachable:
                reachable.add(qual)
                work.append(qual)
    while work:
        qual = work.popleft()
        for callee_name in functions[qual].calls:
            for callee in by_name.get(callee_name, []):
                if callee not in reachable:
                    reachable.add(callee)
                    work.append(callee)
    return reachable


def build_shared_state_map(root: str | Path = "src/repro",
                           entrypoints: tuple[str, ...] = DEFAULT_ENTRYPOINTS,
                           worker_entrypoints: tuple[str, ...] = WORKER_ENTRYPOINTS,
                           ) -> SharedStateMap:
    """Run the whole-program pass over every ``.py`` file under ``root``."""
    root = Path(root)
    functions: dict[str, _FunctionInfo] = {}
    by_name: dict[str, list[str]] = {}          # bare name -> qualnames
    sites: dict[str, StateSite] = {}
    # (module, global name) -> StateSite for writer attachment
    globals_index: dict[tuple[str, str], StateSite] = {}

    files = sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)
    trees: list[tuple[Path, str, ast.Module]] = []
    for path in files:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue
        trees.append((path, _module_name(path, root), tree))

    # Every module-level simple binding, mutable or not: a scalar global
    # rebound from a function (``global _ACTIVE``) is shared state too.
    module_bindings: dict[tuple[str, str], str] = {}

    # Pass 1: index definitions and module-level state.
    fork_guarded: dict[str, set[str]] = {}  # module -> guarded global names
    for path, module, tree in trees:
        fork_guarded[module] = _fork_guarded_names(tree)
        for stmt in tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                value = stmt.value
                if value is None:
                    continue
                for t in targets:
                    if isinstance(t, ast.Name):
                        module_bindings[(module, t.id)] = _site(path, stmt)
                vtype = _classify_value(value)
                if vtype is None:
                    continue
                for t in targets:
                    if not isinstance(t, ast.Name):
                        continue
                    kind = {"rng": "rng", "file": "file_handle"}.get(
                        vtype, "module_global")
                    site = StateSite(kind=kind, module=module, name=t.id,
                                     defined_at=_site(path, stmt),
                                     value_type=vtype)
                    sites[site.qualified] = site
                    globals_index[(module, t.id)] = site
        # functions and methods (+ class-level mutable attributes)
        def _index_fn(fn: ast.AST, qual: str):
            info = _FunctionInfo(qualname=qual, module=module, node=fn,
                                 calls=_called_names(fn))
            functions[qual] = info
            by_name.setdefault(fn.name, []).append(qual)

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _index_fn(stmt, f"{module}.{stmt.name}")
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        _index_fn(item, f"{module}.{stmt.name}.{item.name}")
                    elif isinstance(item, ast.Assign):
                        vtype = _classify_value(item.value)
                        if vtype is None:
                            continue
                        for t in item.targets:
                            if isinstance(t, ast.Name):
                                site = StateSite(
                                    kind="class_attribute", module=module,
                                    name=f"{stmt.name}.{t.id}",
                                    defined_at=_site(path, item),
                                    value_type=vtype)
                                sites[site.qualified] = site
                                globals_index[(module, f"{stmt.name}.{t.id}")] = site

    # Pass 2: find writers.
    for path, module, tree in trees:
        class_attrs = {key[1].split(".", 1)[1]: site
                       for key, site in globals_index.items()
                       if key[0] == module and site.kind == "class_attribute"}
        for qual, info in functions.items():
            if info.module != module:
                continue
            fn = info.node
            declared_global = {name for node in ast.walk(fn)
                               if isinstance(node, ast.Global)
                               for name in node.names}
            for node in ast.walk(fn):
                written: StateSite | None = None
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                    targets = (node.targets
                               if isinstance(node, (ast.Assign, ast.Delete))
                               else [node.target])
                    for t in targets:
                        base = t.value if isinstance(t, ast.Subscript) else t
                        if isinstance(base, ast.Name):
                            key = (module, base.id)
                            if key in globals_index and (
                                    isinstance(t, ast.Subscript)
                                    or base.id in declared_global):
                                written = globals_index[key]
                            elif (base.id in declared_global
                                    and not isinstance(t, ast.Subscript)):
                                # A scalar module global rebound from a
                                # function (``global _ACTIVE``): pass 1
                                # skipped it (immutable RHS) but the
                                # rebinding itself is shared state.
                                rebound = StateSite(
                                    kind="module_global", module=module,
                                    name=base.id,
                                    defined_at=module_bindings.get(
                                        key, _site(path, node)),
                                    value_type="rebound")
                                sites[rebound.qualified] = rebound
                                globals_index[key] = rebound
                                written = rebound
                        # cls.attr / ClassName.attr writes to class attributes
                        if (isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id in ("cls",)
                                and t.attr in class_attrs):
                            written = class_attrs[t.attr]
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATOR_METHODS):
                    owner = node.func.value
                    if isinstance(owner, ast.Name):
                        key = (module, owner.id)
                        if key in globals_index:
                            written = globals_index[key]
                    elif (isinstance(owner, ast.Attribute)
                            and isinstance(owner.value, ast.Name)
                            and owner.value.id in ("self", "cls")
                            and owner.attr in class_attrs):
                        written = class_attrs[owner.attr]
                if written is not None:
                    writer = Writer(function=qual, site=_site(path, node))
                    if not any(w.function == qual and w.site == writer.site
                               for w in written.writers):
                        written.writers.append(writer)

    # Pass 3: reachability — once from the training entrypoints (the
    # parent/learner side) and once from the worker entrypoint (what a
    # forked rollout worker can execute).  A site both hot and
    # worker-reachable is contested across the fork boundary.
    reachable = _reach(by_name, functions, tuple(entrypoints))
    worker_reachable = _reach(by_name, functions, tuple(worker_entrypoints))

    for site in sites.values():
        site.fork_guarded = (site.kind != "class_attribute"
                             and site.name in fork_guarded.get(site.module, ()))
        for writer in site.writers:
            writer.reachable = writer.function in reachable
            writer.worker_reachable = writer.function in worker_reachable

    # Only sites with at least one writer are *shared* state; untouched
    # module constants are configuration, not hazards.  rng/file handles
    # are hazards by existence.
    kept = [s for s in sites.values()
            if s.writers or s.kind in ("rng", "file_handle")]
    return SharedStateMap(root=str(root), entrypoints=tuple(entrypoints),
                          sites=kept,
                          reachable_functions=sorted(reachable),
                          worker_entrypoints=tuple(worker_entrypoints),
                          worker_reachable_functions=sorted(worker_reachable))
