"""DT-rule family: static determinism hazards.

A third rule family beside reprolint's RL-rules and graphcheck's
GC-passes, focused on silent *nondeterminism* rather than silent
numerical corruption.  Every rule is a ``check(tree, ctx)`` generator on
the :mod:`repro.analysis.rules` framework, so the standard
``# reprolint: disable=DT00x`` inline suppression applies.

The four rules encode the failure modes that break the repo's
bit-determinism contract (resume ≡ uninterrupted, K=1 ≡ sequential):

* **DT001** — global-state RNG (``np.random.rand`` and friends,
  stdlib ``random.*``, ``os.urandom``) instead of an injected
  ``np.random.Generator``.  Global streams are shared across every
  caller and every fork, so draw order depends on unrelated code.
* **DT002** — wall-clock values (``time.time()``, ``datetime.now()``)
  feeding *control flow* rather than telemetry.
* **DT003** — unordered-iteration hazards: iterating a ``set``,
  ``os.listdir``/``glob`` results used unsorted, and ``id()``-keyed
  dict access (the PR 3 ``(episode, t)`` grouping bug class).
* **DT004** — fork-unsafety across the multi-process worker pool:
  module-level mutable state (weakref containers included) mutated from
  functions, and module-level file handles / rng objects that a forked
  worker would share.  Globals reset by an ``os.register_at_fork``
  cleanup hook are exempt — the hook makes the fork boundary safe by
  construction (see :func:`_fork_guarded_names`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..rules import Context, Rule, _calls

__all__ = ["DT_RULES", "iter_global_rng", "check_global_rng",
           "check_wall_clock_control_flow", "check_unordered_iteration",
           "check_fork_unsafe_state"]


# ----------------------------------------------------------------------
# DT001 — global-rng
# ----------------------------------------------------------------------
# Constructors that *produce an independent, seedable stream* are the
# sanctioned alternative and are never flagged.
_NP_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
}

# stdlib ``random`` module functions drawing from the hidden global
# Mersenne-Twister instance.
_STDLIB_RANDOM_FUNCS = {
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "sample", "shuffle", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "seed", "setstate", "getstate",
    "binomialvariate", "SystemRandom",
}


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute chain (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def iter_global_rng(tree: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, message)`` for every global-RNG draw in ``tree``.

    Shared by DT001 and reprolint's RL010 so both CLIs agree on what
    counts as a hit.
    """
    for call in _calls(tree):
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue
        value = func.value
        # np.random.<fn>(...) — module-function form on the global stream.
        if (isinstance(value, ast.Attribute) and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and func.attr not in _NP_RANDOM_ALLOWED):
            yield (call, f"`{_dotted(func)}(...)` draws from numpy's "
                         f"process-global stream; draw order then depends on "
                         f"every other caller (and differs across forked "
                         f"workers) — inject a `np.random.Generator` "
                         f"(`np.random.default_rng(seed)`) instead")
        # stdlib random.<fn>(...) on the hidden module instance.
        elif (isinstance(value, ast.Name) and value.id == "random"
                and func.attr in _STDLIB_RANDOM_FUNCS):
            yield (call, f"`random.{func.attr}(...)` uses the stdlib's hidden "
                         f"global Mersenne-Twister; seed it nowhere and share "
                         f"it everywhere — inject a seeded "
                         f"`np.random.Generator` (or `random.Random(seed)`) "
                         f"instead")
        # os.urandom: OS entropy, unseedable by construction.
        elif (isinstance(value, ast.Name) and value.id == "os"
                and func.attr == "urandom"):
            yield (call, "`os.urandom(...)` is OS entropy and can never be "
                         "seeded; derive bytes from an injected "
                         "`np.random.Generator` if reproducibility matters")


def check_global_rng(tree: ast.AST, ctx: Context):
    yield from iter_global_rng(tree)


# ----------------------------------------------------------------------
# DT002 — wall-clock-control-flow
# ----------------------------------------------------------------------
_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "time_ns"),
    ("time", "monotonic_ns"), ("datetime", "now"), ("datetime", "utcnow"),
    ("date", "today"),
}


def _is_clock_call(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    func = node.func
    owner = func.value
    owner_name = (owner.id if isinstance(owner, ast.Name)
                  else owner.attr if isinstance(owner, ast.Attribute) else "")
    return (owner_name, func.attr) in _CLOCK_CALLS


def _contains_clock(node: ast.AST) -> ast.AST | None:
    for n in ast.walk(node):
        if _is_clock_call(n):
            return n
    return None


def check_wall_clock_control_flow(tree: ast.AST, ctx: Context):
    """Wall-clock reads are fine as *telemetry* but poison *logic*.

    Flagged: clock calls inside ``if``/``while`` tests, comparison
    operands, and seed arguments.  Durations recorded into metrics
    (``time.perf_counter()`` spans assigned and reported) pass clean.
    """
    flagged: set[int] = set()

    def _flag(clock: ast.AST, where: str):
        if id(clock) not in flagged:
            flagged.add(id(clock))
            return [(clock, f"wall-clock value feeds {where}; two identical "
                            f"runs take different branches depending on host "
                            f"speed — gate on iteration/step counters instead, "
                            f"and keep clock reads for telemetry only")]
        return []

    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While)):
            clock = _contains_clock(node.test)
            if clock is not None:
                yield from _flag(clock, "a branch condition")
        elif isinstance(node, ast.Compare):
            for operand in (node.left, *node.comparators):
                clock = _contains_clock(operand)
                if clock is not None:
                    yield from _flag(clock, "a comparison")
        elif isinstance(node, ast.Call):
            # seeding from the clock: seed(time.time()), default_rng(now…)
            name = (node.func.attr if isinstance(node.func, ast.Attribute)
                    else node.func.id if isinstance(node.func, ast.Name) else "")
            if "seed" in name.lower() or name == "default_rng":
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    clock = _contains_clock(arg)
                    if clock is not None:
                        yield from _flag(clock, "an rng seed")


# ----------------------------------------------------------------------
# DT003 — unordered-iteration
# ----------------------------------------------------------------------
_LISTING_CALLS = {"listdir", "glob", "iglob", "rglob", "iterdir", "scandir"}


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name) and f.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr,
                                                            ast.BitXor, ast.Sub)):
        return (_is_set_expr(node.left, set_names)
                and _is_set_expr(node.right, set_names))
    return False


def _sorted_subtrees(tree: ast.AST) -> set[int]:
    """ids of all nodes living under a ``sorted(...)`` call."""
    inside: set[int] = set()
    for call in _calls(tree):
        f = call.func
        if isinstance(f, ast.Name) and f.id == "sorted":
            for sub in ast.walk(call):
                inside.add(id(sub))
    return inside


def check_unordered_iteration(tree: ast.AST, ctx: Context):
    in_sorted = _sorted_subtrees(tree)

    # (a) iterating sets: for-loops and comprehension generators.
    set_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            if _is_set_expr(node.value, set_names):
                set_names.add(node.targets[0].id)
            else:
                set_names.discard(node.targets[0].id)
    for node in ast.walk(tree):
        iters: list[ast.AST] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if id(it) in in_sorted:
                continue
            if _is_set_expr(it, set_names):
                yield (it, "iterating a `set` visits elements in hash order, "
                           "which varies across processes (PYTHONHASHSEED) "
                           "and runs; wrap in `sorted(...)` before iterating")

    # (b) directory listings consumed unsorted.
    for call in _calls(tree):
        f = call.func
        name = (f.attr if isinstance(f, ast.Attribute)
                else f.id if isinstance(f, ast.Name) else "")
        if name in _LISTING_CALLS and id(call) not in in_sorted:
            yield (call, f"`{name}(...)` returns entries in filesystem order, "
                         f"which differs across machines and runs; wrap the "
                         f"listing in `sorted(...)`")

    # (c) id()-keyed dicts: the PR 3 grouping bug class.
    key_exprs: list[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript):
            key_exprs.append(node.slice)
        elif isinstance(node, ast.Dict):
            key_exprs.extend(k for k in node.keys if k is not None)
        elif isinstance(node, ast.DictComp):
            key_exprs.append(node.key)
    for key in key_exprs:
        for n in ast.walk(key):
            if (isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
                    and n.func.id == "id"):
                yield (n, "dict keyed by `id(...)`: object addresses change "
                          "every run, so grouping/ordering built on them is "
                          "unreproducible (the PR 3 rollout-grouping bug) — "
                          "key by a stable value such as `(episode, t)`")
                break


# ----------------------------------------------------------------------
# DT004 — fork-unsafe-state
# ----------------------------------------------------------------------
_MUTABLE_CONSTRUCTORS = {"dict", "list", "set", "defaultdict", "OrderedDict",
                         "deque", "Counter",
                         # weakref containers hold registries (e.g. the
                         # compiled-plan cache set) and fork exactly like
                         # their strong counterparts.
                         "WeakSet", "WeakValueDictionary",
                         "WeakKeyDictionary"}
_MUTATOR_METHODS = {"append", "add", "update", "extend", "insert", "pop",
                    "popitem", "remove", "discard", "clear", "setdefault",
                    "appendleft", "extendleft"}


def _module_level_hazards(tree: ast.Module) -> tuple[set[str], list[tuple[ast.AST, str]]]:
    """(mutable global names, immediate per-definition findings)."""
    mutable: set[str] = set()
    findings: list[tuple[ast.AST, str]] = []
    for stmt in tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        value = stmt.value
        if value is None:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            mutable.update(names)
        elif isinstance(value, ast.Call):
            f = value.func
            fname = (f.id if isinstance(f, ast.Name)
                     else f.attr if isinstance(f, ast.Attribute) else "")
            if fname in _MUTABLE_CONSTRUCTORS:
                mutable.update(names)
            elif fname == "open":
                findings.append((stmt, f"module-level `open(...)` handle "
                                       f"`{names[0]}` is shared by forked "
                                       f"workers — interleaved writes corrupt "
                                       f"the file; open per-process instead"))
            elif fname in ("default_rng", "Generator", "RandomState", "Random"):
                findings.append((stmt, f"module-level rng object `{names[0]}` "
                                       f"is cloned into every forked worker — "
                                       f"all workers then draw *identical* "
                                       f"streams; construct per-worker rngs "
                                       f"from `replica_seed`/`SeedSequence.spawn` "
                                       f"instead"))
    return mutable, findings


def _fork_guarded_names(tree: ast.Module) -> set[str]:
    """Module globals reset by an ``os.register_at_fork`` hook.

    Two sanctioned guard shapes (both used across the repo)::

        os.register_at_fork(after_in_child=_CACHE.clear)
        os.register_at_fork(after_in_child=_reset_in_child)

    A bound-method callback guards its owner directly; a function
    callback guards every module global it touches (names it loads,
    stores, or declares ``global``).  State a child is guaranteed to
    clear at the fork boundary cannot leak parent mutations into a
    worker, so DT004 exempts mutations of guarded names — the audit
    trail for *what* is guarded lives in the shared-state map.
    """
    funcs = {fn.name: fn for fn in ast.walk(tree)
             if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))}
    guarded: set[str] = set()
    for call in _calls(tree):
        f = call.func
        if not (isinstance(f, ast.Attribute) and f.attr == "register_at_fork"):
            continue
        for value in (*call.args, *(kw.value for kw in call.keywords)):
            if (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)):
                guarded.add(value.value.id)
            elif isinstance(value, ast.Name) and value.id in funcs:
                for node in ast.walk(funcs[value.id]):
                    if isinstance(node, ast.Name):
                        guarded.add(node.id)
                    elif isinstance(node, ast.Global):
                        guarded.update(node.names)
    return guarded


def check_fork_unsafe_state(tree: ast.AST, ctx: Context):
    if not isinstance(tree, ast.Module):
        return
    mutable_globals, findings = _module_level_hazards(tree)
    yield from findings
    mutable_globals -= _fork_guarded_names(tree)
    if not mutable_globals:
        return
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared_global = {name for node in ast.walk(fn)
                           if isinstance(node, ast.Global)
                           for name in node.names}
        for node in ast.walk(fn):
            # NAME[...] = value / del NAME[...]
            target_name = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, (ast.Assign, ast.Delete))
                           else [node.target])
                for t in targets:
                    if (isinstance(t, ast.Subscript)
                            and isinstance(t.value, ast.Name)
                            and t.value.id in mutable_globals):
                        target_name = t.value.id
                    elif (isinstance(t, ast.Name) and t.id in declared_global
                            and t.id in mutable_globals):
                        target_name = t.id
            # NAME.mutator(...)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in mutable_globals):
                target_name = node.func.value.id
            if target_name is not None:
                yield (node, f"function `{fn.name}` mutates module-level "
                             f"state `{target_name}`; after fork each worker "
                             f"mutates its own silent copy (or races over "
                             f"shared memory) and replicas diverge — pass "
                             f"state explicitly, or confine it to one process "
                             f"and document it in the shared-state map")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
DT_RULES: list[Rule] = [
    Rule("DT001", "global-rng",
         "Global-stream RNG draws (np.random.*, random.*, os.urandom) "
         "instead of an injected np.random.Generator",
         check_global_rng, src_only=True),
    Rule("DT002", "wall-clock-control-flow",
         "time.time()/datetime.now() feeding branches, comparisons or seeds",
         check_wall_clock_control_flow, src_only=True),
    # engine_exempt: the tape tracer / IR builder key maps by tensor
    # id() as *identity* (never ordered or persisted), which is exactly
    # the pattern this rule exists to flag everywhere else.
    Rule("DT003", "unordered-iteration",
         "set iteration, unsorted directory listings, id()-keyed dicts",
         check_unordered_iteration, src_only=True, engine_exempt=True),
    Rule("DT004", "fork-unsafe-state",
         "Module-level mutable state (incl. weakref containers) mutated "
         "from functions; module-level file handles / rng objects shared "
         "across forks; os.register_at_fork cleanup hooks exempt",
         check_fork_unsafe_state, src_only=True, engine_exempt=True),
]
