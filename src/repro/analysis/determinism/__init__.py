"""Determinism & shared-state analysis: the third pillar of ``repro.analysis``.

Three cooperating layers, one CLI (``repro check-determinism``):

* :mod:`~repro.analysis.determinism.rules` — the static **DT rule
  family** (DT001 global RNG, DT002 wall-clock control flow, DT003
  unordered iteration, DT004 fork-unsafe state) on the reprolint
  framework, sharing its ``# reprolint: disable`` suppressions.
* :mod:`~repro.analysis.determinism.sharedstate` — the **whole-program
  shared-state pass**: call-graph reachability from the train loop down
  to every module global / class attribute written along the way,
  emitted as a JSON/DOT contract for the multi-process worker pool.
* :mod:`~repro.analysis.determinism.bisector` — the **runtime
  divergence bisector**: two same-seed lockstep runs, per-iteration
  state fingerprints, and an op-level tape replay that names the first
  divergent op and its creation site.

See docs/static_analysis.md ("Determinism analysis") for the workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .bisector import (
    DivergenceReport,
    FingerprintTrace,
    check_determinism,
    first_tape_divergence,
)
from .fingerprint import diff_components, fingerprint_agent, record_payload
from .rules import DT_RULES, iter_global_rng
from .sharedstate import SharedStateMap, StateSite, build_shared_state_map

__all__ = [
    "DT_RULES", "iter_global_rng",
    "SharedStateMap", "StateSite", "build_shared_state_map",
    "DivergenceReport", "FingerprintTrace", "check_determinism",
    "first_tape_divergence", "fingerprint_agent", "record_payload",
    "diff_components", "lint_determinism", "main",
]


def lint_determinism(paths=("src",)):
    """Run the DT rule family over ``paths``; returns Diagnostics.

    Same discovery, classification and inline-suppression semantics as
    ``repro lint`` — only the rule set differs.
    """
    from ..lint import _discover, lint_source

    diagnostics = []
    for file in _discover(paths):
        diagnostics.extend(lint_source(file.read_text(encoding="utf-8"),
                                       str(file), rules=DT_RULES))
    return diagnostics


def main(argv: list[str] | None = None) -> int:
    """``repro check-determinism`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro check-determinism",
        description="static DT rules + shared-state map + two-run runtime "
                    "divergence bisection (exit 1 on findings)")
    parser.add_argument("--method", default="garl")
    parser.add_argument("--campus", default="kaist")
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--episodes", type=int, default=1)
    parser.add_argument("--num-envs", type=int, default=1,
                        help="vectorized replicas for the runtime check "
                             "(default: 1, sequential)")
    parser.add_argument("--ugvs", type=int, default=2)
    parser.add_argument("--uavs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: 2-iteration runtime checks on the "
                             "tiny coalition, sequential AND --num-envs 4")
    parser.add_argument("--static-only", action="store_true",
                        help="skip the runtime two-run check")
    parser.add_argument("--runtime-only", action="store_true",
                        help="skip the DT scan and shared-state map")
    parser.add_argument("--paths", nargs="*", default=["src"],
                        help="files/directories for the DT scan "
                             "(default: src)")
    parser.add_argument("--state-map", default=None, metavar="PATH",
                        help="write the shared-state map JSON artifact")
    parser.add_argument("--state-map-dot", default=None, metavar="PATH",
                        help="write the shared-state map DOT graph")
    parser.add_argument("--root", default="src/repro",
                        help="package root for the shared-state pass")
    args = parser.parse_args(argv)

    failures = 0

    if not args.runtime_only:
        try:
            diags = lint_determinism(args.paths)
        except FileNotFoundError as exc:
            print(f"check-determinism: {exc} (run from the repo root or "
                  f"pass --paths)", file=sys.stderr)
            return 2
        for diag in diags:
            print(diag.format())
        print(f"determinism static scan: {len(diags)} finding(s) over "
              f"{', '.join(args.paths)}")
        failures += len(diags)

        if Path(args.root).is_dir():
            state_map = build_shared_state_map(args.root)
            print(state_map.format_summary())
            if args.state_map:
                Path(args.state_map).write_text(state_map.to_json())
                print(f"shared-state map written to {args.state_map}")
            if args.state_map_dot:
                Path(args.state_map_dot).write_text(state_map.to_dot())
                print(f"shared-state DOT written to {args.state_map_dot}")
        else:
            print(f"shared-state pass skipped: no package root at {args.root}")

    if not args.static_only:
        if args.quick:
            runs = [(2, 1), (2, 4)]  # (iterations, num_envs)
        else:
            runs = [(args.iterations, args.num_envs)]
        for iterations, num_envs in runs:
            report = check_determinism(
                method=args.method, campus=args.campus, preset=args.preset,
                iterations=iterations, episodes_per_iteration=args.episodes,
                num_envs=num_envs, num_ugvs=args.ugvs,
                num_uavs_per_ugv=args.uavs, seed=args.seed)
            print(report.format())
            if not report.equal:
                failures += 1

    if failures:
        print(f"\ncheck-determinism: {failures} finding(s)")
        return 1
    print("\ncheck-determinism: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
