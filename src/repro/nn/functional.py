"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

Contains the convolution/pooling kernels (im2col based), loss functions and
a few indexing helpers needed by policy networks (gathering log-probs of
sampled actions).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "gather",
    "embedding_lookup",
    "mse_loss",
    "huber_loss",
    "cross_entropy",
    "nll_loss",
    "binary_cross_entropy_with_logits",
]


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int):
    """Unfold ``x`` (N, C, H, W) into column form for convolution.

    Returns the column tensor with shape (N, C*kh*kw, OH*OW) plus the
    output spatial dims.
    """
    n, c, h, w = x.shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(cols: np.ndarray, x_shape, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Fold column-form gradients back into input shape (adjoint of im2col)."""
    n, c, h, w = x_shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    # Loops over the kh x kw kernel taps (typically 3x3), not array
    # elements; each iteration is one strided block accumulate.
    for i in range(kh):  # reprolint: disable=PF003
        for j in range(kw):
            padded[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols[:, :, i, j]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, padding: int = 0) -> Tensor:
    """2D convolution.

    Parameters
    ----------
    x : Tensor of shape (N, C_in, H, W)
    weight : Tensor of shape (C_out, C_in, KH, KW)
    bias : optional Tensor of shape (C_out,)
    """
    x = as_tensor(x)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input {c_in} vs weight {c_in_w}")

    cols, oh, ow = _im2col(x.data, kh, kw, stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    # (o,k) @ (n,k,p): one BLAS gemm per image beats the naive einsum
    # contraction by a wide margin on these kernel sizes.
    out_data = np.matmul(w_mat, cols).reshape(n, c_out, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])
    out = x._make_child(out_data, parents, op="conv2d",
                        attrs={"stride": stride, "padding": padding})

    def _backward() -> None:
        grad = out.grad.reshape(n, c_out, oh * ow)
        if weight.requires_grad:
            gw = np.tensordot(grad, cols, axes=([0, 2], [0, 2]))
            weight._accumulate(gw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(out.grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gcols = np.matmul(w_mat.T, grad)
            x._accumulate(_col2im(gcols, x.shape, kh, kw, stride, padding))

    out._backward = _backward if out.requires_grad else None
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (by default) square windows."""
    stride = stride or kernel
    x = as_tensor(x)
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    cols, _, _ = _im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, oh * ow)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2).reshape(n, c, oh, ow)
    out = x._make_child(out_data, (x,), op="max_pool2d",
                        attrs={"kernel": kernel, "stride": stride})

    def _backward() -> None:
        if not x.requires_grad:
            return
        gcols = np.zeros((n, c, kernel * kernel, oh * ow), dtype=x.data.dtype)
        np.put_along_axis(gcols, argmax[:, :, None, :], out.grad.reshape(n, c, 1, oh * ow), axis=2)
        gx = _col2im(gcols.reshape(n * c, kernel * kernel, oh * ow), (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    out._backward = _backward if out.requires_grad else None
    return out


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    x = as_tensor(x)
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    cols, _, _ = _im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, oh * ow)
    out = x._make_child(cols.mean(axis=2).reshape(n, c, oh, ow), (x,), op="avg_pool2d",
                        attrs={"kernel": kernel, "stride": stride})

    def _backward() -> None:
        if not x.requires_grad:
            return
        g = out.grad.reshape(n, c, 1, oh * ow) / (kernel * kernel)
        gcols = np.broadcast_to(g, (n, c, kernel * kernel, oh * ow)).copy()
        gx = _col2im(gcols.reshape(n * c, kernel * kernel, oh * ow), (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    out._backward = _backward if out.requires_grad else None
    return out


def gather(x: Tensor, indices: np.ndarray, axis: int = -1) -> Tensor:
    """Pick one element per row along ``axis`` (e.g. log-prob of an action).

    ``indices`` has the shape of ``x`` minus ``axis``.
    """
    x = as_tensor(x)
    idx = np.asarray(indices, dtype=np.int64)
    expanded = np.expand_dims(idx, axis)
    out_data = np.take_along_axis(x.data, expanded, axis=axis).squeeze(axis)
    out = x._make_child(out_data, (x,), op="gather",
                        attrs={"indices": idx, "axis": axis})

    def _backward() -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        np.put_along_axis(gx, expanded, np.expand_dims(out.grad, axis), axis=axis)
        x._accumulate(gx)

    out._backward = _backward if out.requires_grad else None
    return out


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding table with sparse gradient scatter."""
    idx = np.asarray(indices, dtype=np.int64)
    out = table._make_child(table.data[idx], (table,), op="embedding_lookup",
                            attrs={"indices": idx})

    def _backward() -> None:
        if not table.requires_grad:
            return
        g = np.zeros_like(table.data)
        np.add.at(g, idx, out.grad)
        table._accumulate(g)

    out._backward = _backward if out.requires_grad else None
    return out


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target).detach()
    diff = pred - target
    return (diff * diff).mean()


def huber_loss(pred: Tensor, target, delta: float = 1.0) -> Tensor:
    """Smooth-L1 / Huber loss, robust to outlier returns."""
    target = as_tensor(target).detach()
    diff = (pred - target).abs()
    quadratic = Tensor.minimum(diff, as_tensor(delta))
    linear = diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Cross entropy from raw logits against integer class targets."""
    logp = logits.log_softmax(axis=-1)
    picked = gather(logp, np.asarray(targets, dtype=np.int64), axis=-1)
    return -picked.mean()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log likelihood given log-probabilities."""
    picked = gather(log_probs, np.asarray(targets, dtype=np.int64), axis=-1)
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically stable BCE-with-logits (used by AE-Comm's decoder)."""
    targets = as_tensor(targets).detach()
    # max(x,0) - x*z + log(1 + exp(-|x|))
    relu_part = logits.relu()
    abs_part = logits.abs()
    log_part = ((-abs_part).exp() + 1.0).log()
    return (relu_part - logits * targets + log_part).mean()
