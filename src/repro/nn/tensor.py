"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` substrate: a small but
complete autograd engine providing the same semantics PyTorch tensors would
give the original GARL implementation.  Every differentiable operation
records a backward closure; :meth:`Tensor.backward` runs a topological sort
over the recorded graph and accumulates gradients.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``.
* Broadcasting follows numpy rules; :func:`_unbroadcast` sums gradients
  back down to the shape of the input operand.
* The engine is eager and single-threaded, which is all the reproduction
  needs on CPU.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Sequence

import numpy as np

from . import anomaly as _anomaly
from . import tracer as _tracer

__all__ = ["Tensor", "no_grad", "enable_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


class _GradMode:
    """Shared machinery for :class:`no_grad` / :class:`enable_grad`.

    Instances work both as context managers::

        with no_grad():
            values = policy(obs)

    and as decorators (note the parentheses, as with ``torch.no_grad()``)::

        @no_grad()
        def evaluate(policy, obs): ...
    """

    _target = True

    def __enter__(self) -> "_GradMode":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = self._target
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self.__class__():
                return fn(*args, **kwargs)

        return wrapper


class no_grad(_GradMode):
    """Disable graph recording, like ``torch.no_grad``."""

    _target = False


class enable_grad(_GradMode):
    """Re-enable graph recording inside a ``no_grad`` scope."""

    _target = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions that broadcasting added.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, array, scalar, nested list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Stored as ``float64`` unless
        already a float dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name",
                 "_version", "_anomaly")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name
        # In-place mutation counter; the anomaly mode compares it (plus a
        # data fingerprint) between forward and backward.
        self._version: int = 0
        self._anomaly = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """The underlying array's shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """The underlying numpy dtype."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose (reverses all axes); alias for ``transpose()``."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The single element as a Python float."""
        return float(self.data.item())

    def fingerprint(self) -> str:
        """Byte-exact digest of :attr:`data` (dtype + shape + contents).

        Used by the determinism bisector to compare op outputs between
        two runs: equal fingerprints certify bit-identical values.
        """
        from .serialize import array_digest

        return array_digest(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Reset the accumulated gradient.

        ``set_to_none=True`` (the default) drops the gradient entirely, so
        stale-gradient bugs surface as ``None`` errors instead of silent
        accumulation; ``set_to_none=False`` keeps a zero array, matching
        the legacy torch behaviour.
        """
        self.grad = None if set_to_none else np.zeros_like(self.data)

    def bump_version(self) -> None:
        """Declare an intentional in-place mutation of :attr:`data`.

        Engine-owned mutation sites (optimisers, ``load_state_dict``) call
        this; the anomaly mode uses it to report version drift when a
        stale graph is backpropagated.
        """
        self._version += 1

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"],
                    op: str | None = None, attrs: dict | None = None) -> "Tensor":
        child = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            child.requires_grad = True
            child._prev = tuple(parents)
        if _anomaly._ENABLED:
            _anomaly.record_op(child, parents, op)
        if _tracer._ACTIVE is not None:
            _tracer._ACTIVE.record_op(child, parents, op, attrs)
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad))

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        sanitize = _anomaly._ENABLED
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                if sanitize:
                    _anomaly.check_before_backward(node)
                node._backward()
                if sanitize:
                    _anomaly.check_after_backward(node)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data + other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad)
            if other.requires_grad:
                other._accumulate(out.grad)

        out._backward = _backward if out.requires_grad else None
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out._backward = _backward if out.requires_grad else None
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data * other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * other.data)
            if other.requires_grad:
                other._accumulate(out.grad * self.data)

        out._backward = _backward if out.requires_grad else None
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data / other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / other.data)
            if other.requires_grad:
                other._accumulate(-out.grad * self.data / (other.data**2))

        out._backward = _backward if out.requires_grad else None
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data**exponent, (self,),
                               attrs={"exponent": exponent})

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward if out.requires_grad else None
        return out

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data @ other.data, (self, other))

        def _backward() -> None:
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1 and self.data.ndim == 1:
                    self._accumulate(grad * other.data)
                elif other.data.ndim == 1:
                    self._accumulate(np.expand_dims(grad, -1) * other.data)
                elif self.data.ndim == 1:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1 and other.data.ndim == 1:
                    other._accumulate(grad * self.data)
                elif self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                elif other.data.ndim == 1:
                    g = np.swapaxes(self.data, -1, -2) @ np.expand_dims(grad, -1)
                    other._accumulate(_unbroadcast(g.squeeze(-1), other.data.shape))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.data.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise ``e**x``."""
        out = self._make_child(np.exp(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = _backward if out.requires_grad else None
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out = self._make_child(np.log(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = _backward if out.requires_grad else None
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out = self._make_child(np.tanh(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data**2))

        out._backward = _backward if out.requires_grad else None
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid ``1 / (1 + e**-x)``."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(sig, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward if out.requires_grad else None
        return out

    def relu(self) -> "Tensor":
        """Elementwise ``max(x, 0)``."""
        out = self._make_child(np.maximum(self.data, 0.0), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (self.data > 0))

        out._backward = _backward if out.requires_grad else None
        return out

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        """Elementwise ``x if x > 0 else slope * x``."""
        out = self._make_child(np.where(self.data > 0, self.data, slope * self.data), (self,),
                               attrs={"slope": slope})

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * np.where(self.data > 0, 1.0, slope))

        out._backward = _backward if out.requires_grad else None
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        out = self._make_child(np.abs(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * np.sign(self.data))

        out._backward = _backward if out.requires_grad else None
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the active range."""
        out = self._make_child(np.clip(self.data, low, high), (self,),
                               attrs={"low": low, "high": high})

        def _backward() -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(out.grad * mask)

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when None)."""
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,),
                               attrs={"axis": axis, "keepdims": keepdims})

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all elements when None)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient flows to the argmax elements."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(out_data, (self,),
                               attrs={"axis": axis, "keepdims": keepdims})

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            maxval = out.data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
                    maxval = np.expand_dims(maxval, a)
            mask = (self.data == maxval).astype(self.data.dtype)
            # Split gradient evenly among ties, matching subgradient choice.
            if axis is None:
                denom = mask.sum()
            else:
                denom = mask.sum(axis=axis, keepdims=True)
            self._accumulate(grad * mask / denom)

        out._backward = _backward if out.requires_grad else None
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over ``axis``; gradient flows to the argmin elements."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Same elements in a new shape (one dimension may be -1)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,),
                               attrs={"shape": tuple(shape)})

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    def flatten(self) -> "Tensor":
        """Reshape to one dimension."""
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed order when ``axes`` is empty)."""
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes), (self,),
                               attrs={"axes": tuple(axes)})
        inverse = np.argsort(axes)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward if out.requires_grad else None
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        """Exchange axes ``a`` and ``b``."""
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,),
                               attrs={"index": index})

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward = _backward if out.requires_grad else None
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        """Insert a length-1 axis at ``axis``."""
        out = self._make_child(np.expand_dims(self.data, axis), (self,),
                               attrs={"axis": axis})

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(out.grad, axis=axis))

        out._backward = _backward if out.requires_grad else None
        return out

    def squeeze(self, axis: int | None = None) -> "Tensor":
        """Drop length-1 axes (all of them, or just ``axis``)."""
        out = self._make_child(np.squeeze(self.data, axis=axis), (self,),
                               attrs={"axis": axis})

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Composite ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        soft = exp / exp.sum(axis=axis, keepdims=True)
        out = self._make_child(soft, (self,), attrs={"axis": axis})

        def _backward() -> None:
            if self.requires_grad:
                s = out.data
                g = out.grad
                inner = (g * s).sum(axis=axis, keepdims=True)
                self._accumulate(s * (g - inner))

        out._backward = _backward if out.requires_grad else None
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = self._make_child(shifted - logsumexp, (self,), attrs={"axis": axis})

        def _backward() -> None:
            if self.requires_grad:
                soft = np.exp(out.data)
                g = out.grad
                self._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

        out._backward = _backward if out.requires_grad else None
        return out

    def norm(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """L2 norm with a smooth epsilon to avoid NaN gradients at zero."""
        return ((self * self).sum(axis=axis, keepdims=keepdims) + eps).sqrt()

    # ------------------------------------------------------------------
    # Static constructors / combinators
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        """All-zeros tensor of the given shape."""
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        """All-ones tensor of the given shape."""
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along an existing axis."""
        tensors = [as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        out = tensors[0]._make_child(data, tensors, attrs={"axis": axis})

        def _backward() -> None:
            offset = 0
            ax = axis % data.ndim
            for t in tensors:
                width = t.data.shape[ax]
                slicer = [slice(None)] * data.ndim
                slicer[ax] = slice(offset, offset + width)
                if t.requires_grad:
                    t._accumulate(out.grad[tuple(slicer)])
                offset += width

        out._backward = _backward if out.requires_grad else None
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis."""
        tensors = [as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)
        out = tensors[0]._make_child(data, tensors, attrs={"axis": axis})

        def _backward() -> None:
            grads = np.moveaxis(out.grad, axis, 0)
            for t, g in zip(tensors, grads):
                if t.requires_grad:
                    t._accumulate(g)

        out._backward = _backward if out.requires_grad else None
        return out

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        """Select from ``a`` where ``condition`` else ``b``."""
        a, b = as_tensor(a), as_tensor(b)
        cond = np.asarray(condition, dtype=bool)
        out = a._make_child(np.where(cond, a.data, b.data), (a, b),
                            attrs={"cond": cond})

        def _backward() -> None:
            if a.requires_grad:
                a._accumulate(np.where(cond, out.grad, 0.0))
            if b.requires_grad:
                b._accumulate(np.where(cond, 0.0, out.grad))

        out._backward = _backward if out.requires_grad else None
        return out

    @staticmethod
    def maximum(a: "Tensor", b: "Tensor") -> "Tensor":
        """Elementwise maximum of two tensors.

        A first-class op (not a ``where`` with a baked mask) so the
        compiled executor can recompute the selection mask from fresh
        inputs on replay; ties take the gradient from ``a``, matching
        the historical ``where(a >= b, a, b)`` lowering bit-for-bit.
        """
        a, b = as_tensor(a), as_tensor(b)
        cond = a.data >= b.data
        out = a._make_child(np.where(cond, a.data, b.data), (a, b), op="maximum")

        def _backward() -> None:
            if a.requires_grad:
                a._accumulate(np.where(cond, out.grad, 0.0))
            if b.requires_grad:
                b._accumulate(np.where(cond, 0.0, out.grad))

        out._backward = _backward if out.requires_grad else None
        return out

    @staticmethod
    def minimum(a: "Tensor", b: "Tensor") -> "Tensor":
        """Elementwise minimum of two tensors (ties favour ``a``)."""
        a, b = as_tensor(a), as_tensor(b)
        cond = a.data <= b.data
        out = a._make_child(np.where(cond, a.data, b.data), (a, b), op="minimum")

        def _backward() -> None:
            if a.requires_grad:
                a._accumulate(np.where(cond, out.grad, 0.0))
            if b.requires_grad:
                b._accumulate(np.where(cond, 0.0, out.grad))

        out._backward = _backward if out.requires_grad else None
        return out
