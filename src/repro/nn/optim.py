"""Optimisers and gradient utilities."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "clip_grad_norm"]


class Optimizer:
    """Base optimiser over a fixed list of parameters.

    All optimisers support full-state (de)serialisation via
    :meth:`state_dict` / :meth:`load_state_dict`: scalar hyper-state
    (step counts, lr) plus every per-parameter slot array, keyed by the
    parameter's position — enough to make a resumed update sequence
    bit-identical to an uninterrupted one.
    """

    # Names of per-parameter slot-array lists (aligned with self.params)
    # that subclasses persist in their state dict.
    _slot_names: tuple[str, ...] = ()

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Reset gradients of all parameters.

        With ``set_to_none=True`` (the default) gradients become ``None``,
        so a forgotten ``backward()`` or a stale retained graph raises
        under the anomaly sanitizer instead of silently accumulating;
        ``set_to_none=False`` keeps zero-filled arrays for code that reads
        ``p.grad`` unconditionally.
        """
        for p in self.params:
            p.zero_grad(set_to_none=set_to_none)

    def step(self) -> None:
        """Apply one update from the accumulated gradients (subclasses override)."""
        raise NotImplementedError

    # -- (de)serialisation ----------------------------------------------
    def _scalar_state(self) -> dict:
        """Scalar (JSON-able) state; subclasses extend."""
        return {"lr": float(self.lr)}

    def _load_scalar_state(self, state: dict) -> None:
        self.lr = float(state["lr"])

    def state_dict(self) -> dict:
        """Full optimiser state: scalars + per-parameter slot arrays."""
        state: dict = dict(self._scalar_state())
        for slot in self._slot_names:
            arrays = getattr(self, slot)
            for i, arr in enumerate(arrays):
                state[f"{slot}.{i}"] = arr.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        Slot arrays are validated against the parameter list (count and
        shape) before anything is mutated.
        """
        for slot in self._slot_names:
            for i, p in enumerate(self.params):
                key = f"{slot}.{i}"
                if key not in state:
                    raise KeyError(f"optimizer state missing slot {key!r}")
                arr = np.asarray(state[key])
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"optimizer slot {key!r} has shape {arr.shape}, "
                        f"parameter has shape {p.data.shape}")
        self._load_scalar_state(state)
        for slot in self._slot_names:
            arrays = getattr(self, slot)
            for i in range(len(self.params)):
                arrays[i] = np.asarray(state[f"{slot}.{i}"], dtype=float).copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    _slot_names = ("_velocity",)

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _scalar_state(self) -> dict:
        return {**super()._scalar_state(), "momentum": float(self.momentum)}

    def _load_scalar_state(self, state: dict) -> None:
        super()._load_scalar_state(state)
        self.momentum = float(state["momentum"])

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad
            p.bump_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimiser used by PPO implementations."""

    _slot_names = ("_m", "_v")

    def __init__(self, params: Iterable[Parameter], lr: float = 3e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def _scalar_state(self) -> dict:
        return {**super()._scalar_state(), "t": int(self._t),
                "beta1": float(self.beta1), "beta2": float(self.beta2),
                "eps": float(self.eps), "weight_decay": float(self.weight_decay)}

    def _load_scalar_state(self, state: dict) -> None:
        super()._load_scalar_state(state)
        self._t = int(state["t"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.bump_version()


class RMSProp(Optimizer):
    """RMSProp, used by the MADDPG baseline's critics in some variants."""

    _slot_names = ("_sq",)

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 alpha: float = 0.99, eps: float = 1e-8):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def _scalar_state(self) -> dict:
        return {**super()._scalar_state(), "alpha": float(self.alpha),
                "eps": float(self.eps)}

    def _load_scalar_state(self, state: dict) -> None:
        super()._load_scalar_state(state)
        self.alpha = float(state["alpha"])
        self.eps = float(state["eps"])

    def step(self) -> None:
        for p, sq in zip(self.params, self._sq):
            if p.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * p.grad * p.grad
            p.data = p.data - self.lr * p.grad / (np.sqrt(sq) + self.eps)
            p.bump_version()


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
