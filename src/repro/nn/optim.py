"""Optimisers and gradient utilities."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "clip_grad_norm"]


class Optimizer:
    """Base optimiser over a fixed list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Reset gradients of all parameters.

        With ``set_to_none=True`` (the default) gradients become ``None``,
        so a forgotten ``backward()`` or a stale retained graph raises
        under the anomaly sanitizer instead of silently accumulating;
        ``set_to_none=False`` keeps zero-filled arrays for code that reads
        ``p.grad`` unconditionally.
        """
        for p in self.params:
            p.zero_grad(set_to_none=set_to_none)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad
            p.bump_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimiser used by PPO implementations."""

    def __init__(self, params: Iterable[Parameter], lr: float = 3e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.bump_version()


class RMSProp(Optimizer):
    """RMSProp, used by the MADDPG baseline's critics in some variants."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 alpha: float = 0.99, eps: float = 1e-8):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, sq in zip(self.params, self._sq):
            if p.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * p.grad * p.grad
            p.data = p.data - self.lr * p.grad / (np.sqrt(sq) + self.eps)
            p.bump_version()


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
