"""Dot-product attention blocks used by DGN and the MC-GCN module."""

from __future__ import annotations

import numpy as np

from .anomaly import annotate
from .init import xavier_uniform
from .layers import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["ScaledDotProductAttention", "SelfAttentionBlock", "MultiHeadAttention"]


class ScaledDotProductAttention(Module):
    """softmax(Q K^T / sqrt(d)) V with an optional boolean mask."""

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.w_q = Parameter(xavier_uniform((dim, dim), rng))
        self.w_k = Parameter(xavier_uniform((dim, dim), rng))
        self.w_v = Parameter(xavier_uniform((dim, dim), rng))

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = as_tensor(x)
        q = x @ self.w_q
        k = x @ self.w_k
        v = x @ self.w_v
        scores = (q @ k.swapaxes(-1, -2)) / np.sqrt(self.dim)
        if mask is not None:
            scores = scores + Tensor(np.where(np.asarray(mask, dtype=bool), 0.0, -1e9))
        weights = annotate(scores.softmax(axis=-1), "ScaledDotProductAttention.weights")
        return weights @ v


class MultiHeadAttention(Module):
    """Multi-head self attention (the DGN paper's relational kernel).

    ``dim`` must be divisible by ``heads``; each head attends in its own
    ``dim / heads`` subspace and the concatenated result is re-projected.
    """

    def __init__(self, dim: int, heads: int = 2, rng: np.random.Generator | None = None):
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.w_q = Parameter(xavier_uniform((dim, dim), rng))
        self.w_k = Parameter(xavier_uniform((dim, dim), rng))
        self.w_v = Parameter(xavier_uniform((dim, dim), rng))
        self.w_o = Parameter(xavier_uniform((dim, dim), rng))

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = as_tensor(x)
        n = x.shape[0]
        # (N, D) -> (heads, N, head_dim)
        def split(t: Tensor) -> Tensor:
            return t.reshape(n, self.heads, self.head_dim).transpose(1, 0, 2)

        q, k, v = split(x @ self.w_q), split(x @ self.w_k), split(x @ self.w_v)
        scores = (q @ k.swapaxes(-1, -2)) / np.sqrt(self.head_dim)  # (H, N, N)
        if mask is not None:
            bias = np.where(np.asarray(mask, dtype=bool), 0.0, -1e9)
            scores = scores + Tensor(np.broadcast_to(bias, scores.shape).copy())
        weights = annotate(scores.softmax(axis=-1), "MultiHeadAttention.weights")
        attended = weights @ v  # (H, N, head_dim)
        merged = attended.transpose(1, 0, 2).reshape(n, self.dim)
        return merged @ self.w_o


class SelfAttentionBlock(Module):
    """Attention followed by a residual projection (DGN-style block)."""

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attn = ScaledDotProductAttention(dim, rng)
        self.proj = Parameter(xavier_uniform((dim, dim), rng))

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = as_tensor(x)
        attended = self.attn(x, mask)
        return (x + attended @ self.proj).relu()
