"""Save/load model state to ``.npz`` checkpoint files."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(module: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Serialise a module's parameters (plus optional JSON metadata)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = {f"param::{k}": v for k, v in state.items()}
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def load_checkpoint(module: Module, path: str | Path) -> dict:
    """Load parameters into ``module``; returns the stored metadata."""
    path = Path(path)
    with np.load(path) as data:
        state = {
            key[len("param::"):]: data[key]
            for key in data.files
            if key.startswith("param::")
        }
        meta_bytes = bytes(data["__metadata__"]) if "__metadata__" in data.files else b"{}"
    module.load_state_dict(state)
    return json.loads(meta_bytes.decode("utf-8"))
