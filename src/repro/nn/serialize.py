"""Save/load model state to ``.npz`` checkpoint files.

Writes are *atomic*: the payload is serialised to a temporary file in the
destination directory, fsync'd, and renamed over the target — a crash
mid-save can never leave a truncated checkpoint where a valid one is
expected.  Loads are *validated upfront*: the stored keys are diffed
against the module's ``named_parameters()`` (names, shapes and dtype
compatibility) before any parameter is touched, so a mismatched
architecture raises one diagnostic listing every problem instead of a
cryptic numpy broadcast error halfway through.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "atomic_write_bytes",
    "atomic_savez",
    "validate_state_dict",
    "CheckpointMismatchError",
    "rng_state",
    "rng_from_state",
    "set_rng_state",
    "array_digest",
    "state_digest",
]


class CheckpointMismatchError(ValueError):
    """A checkpoint does not fit the module it is being loaded into.

    Carries the full diagnosis: ``missing`` (in the module, not the
    file), ``unexpected`` (in the file, not the module) and
    ``mismatched`` (present in both with incompatible shape/dtype).
    """

    def __init__(self, missing: list[str], unexpected: list[str],
                 mismatched: list[str], context: str = "checkpoint"):
        self.missing = list(missing)
        self.unexpected = list(unexpected)
        self.mismatched = list(mismatched)
        lines = [f"{context} does not match the target module:"]
        if missing:
            lines.append(f"  missing keys ({len(missing)}): {', '.join(missing)}")
        if unexpected:
            lines.append(f"  unexpected keys ({len(unexpected)}): {', '.join(unexpected)}")
        if mismatched:
            lines.append(f"  mismatched keys ({len(mismatched)}):")
            lines.extend(f"    {m}" for m in mismatched)
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------

def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Write ``payload`` to ``path`` atomically (temp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_savez(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """``np.savez`` into ``path`` atomically."""
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return atomic_write_bytes(path, buf.getvalue())


# ----------------------------------------------------------------------
# State fingerprints (determinism analysis)
# ----------------------------------------------------------------------

def array_digest(arr: np.ndarray) -> str:
    """Short sha256 digest of an array's dtype, shape and contents.

    Byte-exact: two arrays digest equal iff they are bit-identical, which
    is the equality the ``repro check-determinism`` bisector certifies.
    """
    import hashlib

    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()[:16]


def state_digest(state) -> str:
    """Canonical digest of a nested state tree (dicts/lists/arrays/scalars).

    Arrays hash by bytes (see :func:`array_digest`), everything else by a
    sorted-key JSON encoding, so the digest of ``module.state_dict()`` /
    ``optimizer.state_dict()`` trees is stable across processes and runs.
    """
    import hashlib

    def canon(node):
        if isinstance(node, np.ndarray):
            return {"__array__": array_digest(node)}
        if isinstance(node, dict):
            return {str(k): canon(v) for k, v in sorted(
                node.items(), key=lambda kv: str(kv[0]))}
        if isinstance(node, (list, tuple)):
            return [canon(v) for v in node]
        if isinstance(node, (np.integer,)):
            return int(node)
        if isinstance(node, (np.floating,)):
            return float(node)
        if isinstance(node, (np.bool_,)):
            return bool(node)
        return node

    blob = json.dumps(canon(state), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# rng stream capture
# ----------------------------------------------------------------------

def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a Generator's bit-stream position."""
    return json.loads(json.dumps(rng.bit_generator.state))


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a Generator positioned exactly at a captured state."""
    bit_gen = getattr(np.random, state["bit_generator"])()
    bit_gen.state = state
    return np.random.Generator(bit_gen)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Reposition an existing Generator at a captured state (in place)."""
    if rng.bit_generator.state["bit_generator"] != state["bit_generator"]:
        raise ValueError(
            f"rng state is for {state['bit_generator']!r}, generator uses "
            f"{rng.bit_generator.state['bit_generator']!r}")
    rng.bit_generator.state = state


# ----------------------------------------------------------------------
# Module checkpoints
# ----------------------------------------------------------------------

def save_checkpoint(module, path: str | Path, metadata: dict | None = None) -> Path:
    """Serialise a module's parameters (plus optional JSON metadata)."""
    state = module.state_dict()
    payload = {f"param::{k}": v for k, v in state.items()}
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    return atomic_savez(path, payload)


def validate_state_dict(module, state: dict[str, np.ndarray],
                        context: str = "checkpoint") -> None:
    """Diff ``state`` against the module's parameters; raise on mismatch.

    Checks key sets, shapes and dtype castability *before* any mutation,
    raising a single :class:`CheckpointMismatchError` that lists every
    missing / unexpected / mismatched key.
    """
    own = dict(module.named_parameters())
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    mismatched = []
    for name in sorted(set(own) & set(state)):
        value = np.asarray(state[name])
        param = own[name]
        if value.shape != param.data.shape:
            mismatched.append(f"{name}: checkpoint shape {value.shape} vs "
                              f"parameter shape {param.data.shape}")
        elif not np.can_cast(value.dtype, param.data.dtype, casting="same_kind"):
            mismatched.append(f"{name}: checkpoint dtype {value.dtype} not "
                              f"castable to parameter dtype {param.data.dtype}")
    if missing or unexpected or mismatched:
        raise CheckpointMismatchError(missing, unexpected, mismatched, context)


def load_checkpoint(module, path: str | Path) -> dict:
    """Load parameters into ``module``; returns the stored metadata.

    The stored state is validated against ``module.named_parameters()``
    upfront (see :func:`validate_state_dict`), so an architecture
    mismatch produces one complete diagnostic and leaves the module
    untouched.
    """
    path = Path(path)
    with np.load(path) as data:
        state = {
            key[len("param::"):]: data[key]
            for key in data.files
            if key.startswith("param::")
        }
        meta_bytes = bytes(data["__metadata__"]) if "__metadata__" in data.files else b"{}"
    validate_state_dict(module, state, context=str(path))
    module.load_state_dict(state)
    return json.loads(meta_bytes.decode("utf-8"))
