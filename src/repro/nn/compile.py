"""Compiled execution backend: trace once, replay as a fused arena plan.

:class:`CompiledStep` wraps a step function ``fn(*arrays) -> Tensor |
tuple[Tensor, ...]`` (first output = the scalar loss).  The first call
per input signature runs eagerly under the PR-2 tape tracer, lowers the
tape through the graphcheck IR (:mod:`repro.analysis.graphcheck.ir`)
and the shared transformation passes
(:mod:`repro.analysis.graphcheck.transforms`) — value-numbered CSE over
gradient-free subgraphs, single-consumer elementwise fusion, last-use
liveness with a greedy arena — into a :class:`CompiledPlan`.  Later
calls with the same input shapes/dtypes replay the plan as plain numpy
array code: no Tensor construction, no backward closures, no
topological sort, and ``out=`` dispatch into preallocated arena slots
for the ufunc-style ops.

Bit-exactness contract
----------------------

Replay must be indistinguishable from the eager tape: every forward
kernel mirrors the exact numpy expression ``Tensor``'s op methods
evaluate, every VJP mirrors the corresponding backward closure
(including per-parent accumulation order and ``_accumulate``'s
cast/unbroadcast/copy semantics), data-dependent selection masks
(``maximum``/``minimum``, relu, clip, pool argmax, conv columns) are
recomputed from the replay inputs rather than reused from capture, and
the backward sweep replays the same iterative-DFS topological order
``Tensor.backward`` produces.  CSE only merges ``requires_grad=False``
nodes — merging gradient-carrying duplicates would re-associate the
gradient sum ``(g1 + g2) * local`` vs ``g1 * local + g2 * local``,
which is not bit-identical in floating point.

What the step function must guarantee
-------------------------------------

* Every call-varying array reaches the graph **as a tensor leaf** (the
  exact array object passed in, wrapped via ``Tensor(arr)``); a plan
  refuses to build (:class:`CompileError`, permanent eager fallback)
  when an input never appears as a leaf.
* Values baked at capture — ``where`` conditions, ``getitem`` indices,
  ``gather`` indices, clip bounds, reduction axes — must be static per
  input signature.  This matches the engine API (those are plain numpy
  arguments, not Tensors, in eager mode too).
* Parameters are bound by Tensor *reference*: replay reads ``.data``
  fresh (so optimiser updates are seen) and writes gradients into
  ``.grad`` exactly as ``_accumulate`` would.

Fallbacks to the eager tape: ``enabled=False``, anomaly mode active, a
plain (non-profiling) ``repro.nn.trace`` scope active, an unsupported
graph (permanent), an unseen input signature once the plan cache is
full.  Under a profiling trace (``repro.obs.opprof.TimedTrace``) replay
still runs and reports each executed segment via ``record_fused``.
"""

from __future__ import annotations

import os
import time
import weakref
from dataclasses import dataclass, field

import numpy as np

from . import anomaly as _anomaly
from . import tracer as _tracer
from .functional import _col2im, _im2col
from .tensor import Tensor, _unbroadcast

__all__ = ["CompileError", "CompiledPlan", "CompiledStep", "StepResult",
           "clear_plan_caches", "compile_step"]

# Every live CompiledStep, tracked weakly so plan caches can be cleared
# process-wide (rollout workers must not inherit the parent's plans:
# arena buffers alias large arrays and replay counters would lie).  The
# weak registry holds no instance alive; mutation sites are guarded by
# the register_at_fork hook below (audited by determinism rule DT004).
_COMPILED_STEPS: "weakref.WeakSet[CompiledStep]" = weakref.WeakSet()


def clear_plan_caches() -> None:
    """Drop every cached :class:`CompiledPlan` in this process.

    Each registered :class:`CompiledStep` falls back to capture-on-next-
    call, exactly as if it had never compiled.  Called automatically in
    forked children (workers re-capture locally if they ever compile)
    and usable from tests to get a cold-cache state.
    """
    for step in list(_COMPILED_STEPS):
        step.plans.clear()


if hasattr(os, "register_at_fork"):  # not available on all platforms
    os.register_at_fork(after_in_child=clear_plan_caches)


class CompileError(RuntimeError):
    """A traced step cannot be lowered to a replayable plan."""


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------
@dataclass
class PlanNode:
    """One vertex of the executable plan (a slimmed-down IRNode)."""

    id: int
    op: str                      # engine op name, or "" for leaves
    shape: tuple[int, ...]
    np_dtype: np.dtype
    requires_grad: bool
    inputs: tuple[int, ...]      # already remapped through CSE aliases
    attrs: dict | None
    label: str = ""

    @property
    def is_leaf(self) -> bool:
        return not self.inputs


def _leaf_value(arr: np.ndarray) -> np.ndarray:
    """Mirror ``Tensor.__init__``'s dtype coercion for a bound input."""
    a = np.asarray(arr)
    if not np.issubdtype(a.dtype, np.floating):
        a = a.astype(np.float64)
    return a


# ----------------------------------------------------------------------
# Forward kernels — each mirrors the exact numpy expression the eager op
# method evaluates, so replayed values are bit-identical to the tape.
# ----------------------------------------------------------------------
def _axes_expand(g: np.ndarray, axis, keepdims: bool, ndim: int) -> np.ndarray:
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for a in sorted(ax % ndim for ax in axes):
            g = np.expand_dims(g, a)
    return g


def _k_conv2d(nodes, n, vals, aux):
    x, w = n.inputs[0], n.inputs[1]
    stride, padding = n.attrs["stride"], n.attrs["padding"]
    c_out, _, kh, kw = nodes[w].shape
    nb = nodes[x].shape[0]
    cols, oh, ow = _im2col(vals[x], kh, kw, stride, padding)
    aux[n.id] = cols
    w_mat = vals[w].reshape(c_out, -1)
    out = np.matmul(w_mat, cols).reshape(nb, c_out, oh, ow)
    if len(n.inputs) == 3:
        out = out + vals[n.inputs[2]].reshape(1, c_out, 1, 1)
    return out


def _k_max_pool2d(nodes, n, vals, aux):
    nb, c, h, w = nodes[n.inputs[0]].shape
    kernel, stride = n.attrs["kernel"], n.attrs["stride"]
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    cols, _, _ = _im2col(vals[n.inputs[0]].reshape(nb * c, 1, h, w),
                         kernel, kernel, stride, 0)
    cols = cols.reshape(nb, c, kernel * kernel, oh * ow)
    argmax = cols.argmax(axis=2)
    aux[n.id] = argmax
    return np.take_along_axis(cols, argmax[:, :, None, :],
                              axis=2).squeeze(2).reshape(nb, c, oh, ow)


def _k_avg_pool2d(nodes, n, vals, aux):
    nb, c, h, w = nodes[n.inputs[0]].shape
    kernel, stride = n.attrs["kernel"], n.attrs["stride"]
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    cols, _, _ = _im2col(vals[n.inputs[0]].reshape(nb * c, 1, h, w),
                         kernel, kernel, stride, 0)
    cols = cols.reshape(nb, c, kernel * kernel, oh * ow)
    return cols.mean(axis=2).reshape(nb, c, oh, ow)


def _k_softmax(nodes, n, vals, aux):
    x = vals[n.inputs[0]]
    axis = n.attrs["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def _k_log_softmax(nodes, n, vals, aux):
    x = vals[n.inputs[0]]
    axis = n.attrs["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def _k_gather(nodes, n, vals, aux):
    axis = n.attrs["axis"]
    expanded = np.expand_dims(n.attrs["indices"], axis)
    return np.take_along_axis(vals[n.inputs[0]], expanded, axis=axis).squeeze(axis)


KERNELS = {
    "add": lambda nodes, n, v, aux: v[n.inputs[0]] + v[n.inputs[1]],
    "neg": lambda nodes, n, v, aux: -v[n.inputs[0]],
    "mul": lambda nodes, n, v, aux: v[n.inputs[0]] * v[n.inputs[1]],
    "truediv": lambda nodes, n, v, aux: v[n.inputs[0]] / v[n.inputs[1]],
    "pow": lambda nodes, n, v, aux: v[n.inputs[0]] ** n.attrs["exponent"],
    "matmul": lambda nodes, n, v, aux: v[n.inputs[0]] @ v[n.inputs[1]],
    "exp": lambda nodes, n, v, aux: np.exp(v[n.inputs[0]]),
    "log": lambda nodes, n, v, aux: np.log(v[n.inputs[0]]),
    "tanh": lambda nodes, n, v, aux: np.tanh(v[n.inputs[0]]),
    "sigmoid": lambda nodes, n, v, aux: 1.0 / (1.0 + np.exp(-v[n.inputs[0]])),
    "relu": lambda nodes, n, v, aux: np.maximum(v[n.inputs[0]], 0.0),
    "leaky_relu": lambda nodes, n, v, aux: np.where(
        v[n.inputs[0]] > 0, v[n.inputs[0]], n.attrs["slope"] * v[n.inputs[0]]),
    "abs": lambda nodes, n, v, aux: np.abs(v[n.inputs[0]]),
    "clip": lambda nodes, n, v, aux: np.clip(
        v[n.inputs[0]], n.attrs["low"], n.attrs["high"]),
    "sum": lambda nodes, n, v, aux: v[n.inputs[0]].sum(
        axis=n.attrs["axis"], keepdims=n.attrs["keepdims"]),
    "max": lambda nodes, n, v, aux: v[n.inputs[0]].max(
        axis=n.attrs["axis"], keepdims=n.attrs["keepdims"]),
    "reshape": lambda nodes, n, v, aux: v[n.inputs[0]].reshape(n.attrs["shape"]),
    "transpose": lambda nodes, n, v, aux: v[n.inputs[0]].transpose(n.attrs["axes"]),
    "getitem": lambda nodes, n, v, aux: v[n.inputs[0]][n.attrs["index"]],
    "expand_dims": lambda nodes, n, v, aux: np.expand_dims(
        v[n.inputs[0]], n.attrs["axis"]),
    "squeeze": lambda nodes, n, v, aux: np.squeeze(
        v[n.inputs[0]], axis=n.attrs["axis"]),
    "softmax": _k_softmax,
    "log_softmax": _k_log_softmax,
    "concat": lambda nodes, n, v, aux: np.concatenate(
        [v[i] for i in n.inputs], axis=n.attrs["axis"]),
    "stack": lambda nodes, n, v, aux: np.stack(
        [v[i] for i in n.inputs], axis=n.attrs["axis"]),
    "where": lambda nodes, n, v, aux: np.where(
        n.attrs["cond"], v[n.inputs[0]], v[n.inputs[1]]),
    "maximum": lambda nodes, n, v, aux: np.where(
        v[n.inputs[0]] >= v[n.inputs[1]], v[n.inputs[0]], v[n.inputs[1]]),
    "minimum": lambda nodes, n, v, aux: np.where(
        v[n.inputs[0]] <= v[n.inputs[1]], v[n.inputs[0]], v[n.inputs[1]]),
    "conv2d": _k_conv2d,
    "max_pool2d": _k_max_pool2d,
    "avg_pool2d": _k_avg_pool2d,
    "gather": _k_gather,
    "embedding_lookup": lambda nodes, n, v, aux: v[n.inputs[0]][n.attrs["indices"]],
}


def _ko_sigmoid(nodes, n, v, aux, out):
    # Stepwise mirror of 1.0 / (1.0 + np.exp(-x)): same ufunc sequence,
    # chained in place through the arena slot.
    np.negative(v[n.inputs[0]], out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)
    return out


# Ufunc-style ops that can write straight into their arena slot.  Each
# produces the same bits as its KERNELS twin (same ufunc, out= added).
OUT_KERNELS = {
    "add": lambda nodes, n, v, aux, out: np.add(v[n.inputs[0]], v[n.inputs[1]], out=out),
    "neg": lambda nodes, n, v, aux, out: np.negative(v[n.inputs[0]], out=out),
    "mul": lambda nodes, n, v, aux, out: np.multiply(v[n.inputs[0]], v[n.inputs[1]], out=out),
    "truediv": lambda nodes, n, v, aux, out: np.divide(v[n.inputs[0]], v[n.inputs[1]], out=out),
    "exp": lambda nodes, n, v, aux, out: np.exp(v[n.inputs[0]], out=out),
    "log": lambda nodes, n, v, aux, out: np.log(v[n.inputs[0]], out=out),
    "tanh": lambda nodes, n, v, aux, out: np.tanh(v[n.inputs[0]], out=out),
    "relu": lambda nodes, n, v, aux, out: np.maximum(v[n.inputs[0]], 0.0, out=out),
    "abs": lambda nodes, n, v, aux, out: np.abs(v[n.inputs[0]], out=out),
    "clip": lambda nodes, n, v, aux, out: np.clip(
        v[n.inputs[0]], n.attrs["low"], n.attrs["high"], out=out),
    "sigmoid": _ko_sigmoid,
}


# ----------------------------------------------------------------------
# VJP registry — each mirrors the op's eager backward closure, with
# data-dependent values (masks, argmax, im2col columns) recomputed or
# read from the forward pass's aux cache, never reused from capture.
# The ``acc`` callback replicates ``Tensor._accumulate`` (cast ->
# unbroadcast -> copy-or-add) and skips parents without requires_grad.
# ----------------------------------------------------------------------
def _vjp_matmul(nodes, n, g, vals, aux, acc):
    a, b = n.inputs
    av, bv = vals[a], vals[b]
    if nodes[a].requires_grad:
        if bv.ndim == 1 and av.ndim == 1:
            acc(a, g * bv)
        elif bv.ndim == 1:
            acc(a, np.expand_dims(g, -1) * bv)
        elif av.ndim == 1:
            acc(a, g @ np.swapaxes(bv, -1, -2))
        else:
            acc(a, _unbroadcast(g @ np.swapaxes(bv, -1, -2), nodes[a].shape))
    if nodes[b].requires_grad:
        if av.ndim == 1 and bv.ndim == 1:
            acc(b, g * av)
        elif av.ndim == 1:
            acc(b, np.outer(av, g))
        elif bv.ndim == 1:
            gb = np.swapaxes(av, -1, -2) @ np.expand_dims(g, -1)
            acc(b, _unbroadcast(gb.squeeze(-1), nodes[b].shape))
        else:
            acc(b, _unbroadcast(np.swapaxes(av, -1, -2) @ g, nodes[b].shape))


def _vjp_sum(nodes, n, g, vals, aux, acc):
    (a,) = n.inputs
    pshape = nodes[a].shape
    g = _axes_expand(g, n.attrs["axis"], n.attrs["keepdims"], len(pshape))
    acc(a, np.broadcast_to(g, pshape))


def _vjp_max(nodes, n, g, vals, aux, acc):
    (a,) = n.inputs
    axis, keepdims = n.attrs["axis"], n.attrs["keepdims"]
    pshape = nodes[a].shape
    maxval = vals[n.id]
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for ax in sorted(x % len(pshape) for x in axes):
            g = np.expand_dims(g, ax)
            maxval = np.expand_dims(maxval, ax)
    mask = (vals[a] == maxval).astype(nodes[a].np_dtype)
    if axis is None:
        denom = mask.sum()
    else:
        denom = mask.sum(axis=axis, keepdims=True)
    acc(a, g * mask / denom)


def _vjp_getitem(nodes, n, g, vals, aux, acc):
    (a,) = n.inputs
    if nodes[a].requires_grad:
        grad = np.zeros(nodes[a].shape, dtype=nodes[a].np_dtype)
        np.add.at(grad, n.attrs["index"], g)
        acc(a, grad)


def _vjp_softmax(nodes, n, g, vals, aux, acc):
    s = vals[n.id]
    inner = (g * s).sum(axis=n.attrs["axis"], keepdims=True)
    acc(n.inputs[0], s * (g - inner))


def _vjp_log_softmax(nodes, n, g, vals, aux, acc):
    soft = np.exp(vals[n.id])
    acc(n.inputs[0], g - soft * g.sum(axis=n.attrs["axis"], keepdims=True))


def _vjp_concat(nodes, n, g, vals, aux, acc):
    offset = 0
    ax = n.attrs["axis"] % len(n.shape)
    for t in n.inputs:
        width = nodes[t].shape[ax]
        slicer = [slice(None)] * len(n.shape)
        slicer[ax] = slice(offset, offset + width)
        acc(t, g[tuple(slicer)])
        offset += width


def _vjp_stack(nodes, n, g, vals, aux, acc):
    for t, gt in zip(n.inputs, np.moveaxis(g, n.attrs["axis"], 0)):
        acc(t, gt)


def _vjp_select(cond, a, b, g, acc):
    acc(a, np.where(cond, g, 0.0))
    acc(b, np.where(cond, 0.0, g))


def _vjp_conv2d(nodes, n, g, vals, aux, acc):
    x, w = n.inputs[0], n.inputs[1]
    stride, padding = n.attrs["stride"], n.attrs["padding"]
    c_out, _, kh, kw = nodes[w].shape
    nb, _, oh, ow = n.shape
    grad = g.reshape(nb, c_out, oh * ow)
    cols = aux.get(n.id)
    if cols is None:
        cols, _, _ = _im2col(vals[x], kh, kw, stride, padding)
    if nodes[w].requires_grad:
        gw = np.tensordot(grad, cols, axes=([0, 2], [0, 2]))
        acc(w, gw.reshape(nodes[w].shape))
    if len(n.inputs) == 3 and nodes[n.inputs[2]].requires_grad:
        acc(n.inputs[2], g.sum(axis=(0, 2, 3)))
    if nodes[x].requires_grad:
        w_mat = vals[w].reshape(c_out, -1)
        gcols = np.matmul(w_mat.T, grad)
        acc(x, _col2im(gcols, nodes[x].shape, kh, kw, stride, padding))


def _vjp_max_pool2d(nodes, n, g, vals, aux, acc):
    (x,) = n.inputs
    if not nodes[x].requires_grad:
        return
    nb, c, h, w = nodes[x].shape
    kernel, stride = n.attrs["kernel"], n.attrs["stride"]
    oh, ow = n.shape[2], n.shape[3]
    argmax = aux.get(n.id)
    if argmax is None:
        cols, _, _ = _im2col(vals[x].reshape(nb * c, 1, h, w),
                             kernel, kernel, stride, 0)
        argmax = cols.reshape(nb, c, kernel * kernel, oh * ow).argmax(axis=2)
    gcols = np.zeros((nb, c, kernel * kernel, oh * ow), dtype=nodes[x].np_dtype)
    np.put_along_axis(gcols, argmax[:, :, None, :],
                      g.reshape(nb, c, 1, oh * ow), axis=2)
    gx = _col2im(gcols.reshape(nb * c, kernel * kernel, oh * ow),
                 (nb * c, 1, h, w), kernel, kernel, stride, 0)
    acc(x, gx.reshape(nb, c, h, w))


def _vjp_avg_pool2d(nodes, n, g, vals, aux, acc):
    (x,) = n.inputs
    if not nodes[x].requires_grad:
        return
    nb, c, h, w = nodes[x].shape
    kernel, stride = n.attrs["kernel"], n.attrs["stride"]
    oh, ow = n.shape[2], n.shape[3]
    gk = g.reshape(nb, c, 1, oh * ow) / (kernel * kernel)
    gcols = np.broadcast_to(gk, (nb, c, kernel * kernel, oh * ow)).copy()
    gx = _col2im(gcols.reshape(nb * c, kernel * kernel, oh * ow),
                 (nb * c, 1, h, w), kernel, kernel, stride, 0)
    acc(x, gx.reshape(nb, c, h, w))


def _vjp_gather(nodes, n, g, vals, aux, acc):
    (a,) = n.inputs
    if not nodes[a].requires_grad:
        return
    axis = n.attrs["axis"]
    expanded = np.expand_dims(n.attrs["indices"], axis)
    gx = np.zeros(nodes[a].shape, dtype=nodes[a].np_dtype)
    np.put_along_axis(gx, expanded, np.expand_dims(g, axis), axis=axis)
    acc(a, gx)


def _vjp_embedding(nodes, n, g, vals, aux, acc):
    (a,) = n.inputs
    if not nodes[a].requires_grad:
        return
    gx = np.zeros(nodes[a].shape, dtype=nodes[a].np_dtype)
    np.add.at(gx, n.attrs["indices"], g)
    acc(a, gx)


VJPS = {
    "add": lambda nodes, n, g, v, aux, acc: (acc(n.inputs[0], g),
                                             acc(n.inputs[1], g)),
    "neg": lambda nodes, n, g, v, aux, acc: acc(n.inputs[0], -g),
    "mul": lambda nodes, n, g, v, aux, acc: (
        acc(n.inputs[0], g * v[n.inputs[1]]),
        acc(n.inputs[1], g * v[n.inputs[0]])),
    "truediv": lambda nodes, n, g, v, aux, acc: (
        acc(n.inputs[0], g / v[n.inputs[1]]),
        acc(n.inputs[1], -g * v[n.inputs[0]] / (v[n.inputs[1]] ** 2))),
    "pow": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g * n.attrs["exponent"]
        * v[n.inputs[0]] ** (n.attrs["exponent"] - 1)),
    "matmul": _vjp_matmul,
    "exp": lambda nodes, n, g, v, aux, acc: acc(n.inputs[0], g * v[n.id]),
    "log": lambda nodes, n, g, v, aux, acc: acc(n.inputs[0], g / v[n.inputs[0]]),
    "tanh": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g * (1.0 - v[n.id] ** 2)),
    "sigmoid": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g * v[n.id] * (1.0 - v[n.id])),
    "relu": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g * (v[n.inputs[0]] > 0)),
    "leaky_relu": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g * np.where(v[n.inputs[0]] > 0, 1.0, n.attrs["slope"])),
    "abs": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g * np.sign(v[n.inputs[0]])),
    "clip": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g * ((v[n.inputs[0]] >= n.attrs["low"])
                          & (v[n.inputs[0]] <= n.attrs["high"]))),
    "sum": _vjp_sum,
    "max": _vjp_max,
    "reshape": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g.reshape(nodes[n.inputs[0]].shape)),
    "transpose": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g.transpose(np.argsort(n.attrs["axes"]))),
    "getitem": _vjp_getitem,
    "expand_dims": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], np.squeeze(g, axis=n.attrs["axis"])),
    "squeeze": lambda nodes, n, g, v, aux, acc: acc(
        n.inputs[0], g.reshape(nodes[n.inputs[0]].shape)),
    "softmax": _vjp_softmax,
    "log_softmax": _vjp_log_softmax,
    "concat": _vjp_concat,
    "stack": _vjp_stack,
    "where": lambda nodes, n, g, v, aux, acc: _vjp_select(
        n.attrs["cond"], n.inputs[0], n.inputs[1], g, acc),
    "maximum": lambda nodes, n, g, v, aux, acc: _vjp_select(
        v[n.inputs[0]] >= v[n.inputs[1]], n.inputs[0], n.inputs[1], g, acc),
    "minimum": lambda nodes, n, g, v, aux, acc: _vjp_select(
        v[n.inputs[0]] <= v[n.inputs[1]], n.inputs[0], n.inputs[1], g, acc),
    "conv2d": _vjp_conv2d,
    "max_pool2d": _vjp_max_pool2d,
    "avg_pool2d": _vjp_avg_pool2d,
    "gather": _vjp_gather,
    "embedding_lookup": _vjp_embedding,
}

# Ops whose VJP reads the node's *own* forward value (kept live through
# the backward sweep, pinning its arena slot).
_READS_OUT = frozenset({"exp", "tanh", "sigmoid", "softmax", "log_softmax",
                        "max"})
# Ops whose VJP reads some parent's forward value.
_READS_IN = frozenset({"mul", "truediv", "pow", "matmul", "log", "relu",
                       "leaky_relu", "abs", "clip", "max", "maximum",
                       "minimum", "conv2d", "max_pool2d"})
# Ops whose kernel may return a numpy *view* of a parent's buffer.  The
# base buffer of every view chain is pinned in the arena: releasing it
# would let a later out= kernel rewrite memory the view still exposes.
_MAY_VIEW = frozenset({"reshape", "squeeze", "expand_dims", "transpose",
                       "getitem"})


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
class StepResult:
    """Uniform handle returned by :class:`CompiledStep` in every mode.

    ``outputs`` holds the step function's output values as numpy arrays
    (copies on the replay path, so they survive arena reuse);
    ``backward()`` backpropagates from the first output — through the
    eager tape when the call ran eagerly, through the plan's VJP sweep
    when it replayed.
    """

    __slots__ = ("outputs", "mode", "_tensors", "_backward_fn")

    def __init__(self, tensors=None, outputs=None, backward_fn=None,
                 mode: str = "eager"):
        if tensors is not None:
            self._tensors = tensors
            self.outputs = tuple(t.data for t in tensors)
        else:
            self._tensors = None
            self.outputs = outputs
        self._backward_fn = backward_fn
        self.mode = mode

    def backward(self) -> None:
        """Accumulate gradients into the bound parameters' ``.grad``."""
        if self._tensors is not None:
            self._tensors[0].backward()
        else:
            self._backward_fn()

    def item(self, index: int = 0) -> float:
        """Output ``index`` as a Python float (must be one element)."""
        return float(np.asarray(self.outputs[index]).item())


class CompiledPlan:
    """One lowered, replayable trace for a fixed input signature."""

    def __init__(self, name: str, nodes: list[PlanNode]):
        self.name = name
        self.nodes = nodes               # indexed by node id (alias slots stay None-valued)
        self.segments: list[tuple[str, tuple[int, ...], str]] = []
        self.input_bindings: dict[int, int] = {}   # leaf node id -> input index
        self.param_refs: dict[int, Tensor] = {}    # requires_grad leaves, by reference
        self.const_refs: dict[int, Tensor] = {}    # captured constants, by reference
        self.aliases: dict[int, int] = {}          # CSE: dropped node -> representative
        self.outputs: tuple[int, ...] = ()
        self.backward_order: list[int] = []
        self.guards: tuple[tuple[tuple[int, ...], str], ...] = ()
        self.fusion = None                          # FusionPlan
        self.arena = None                           # ArenaPlan
        self.slot_buffers: list[np.ndarray] = []
        self.out_views: dict[int, np.ndarray] = {}  # node id -> arena view
        # Flat dispatch state, precomputed by build() so the replay loops
        # touch only local tuples instead of per-op dict/table lookups.
        self.input_list: list[tuple[int, int, bool]] = []   # (nid, src, cast)
        self.run_list: list[tuple] = []      # (nid, node, kernel, view|None)
        self.bwd_list: list[tuple] = []      # (nid, node, vjp)
        self.grad_buffers: dict[int, np.ndarray] = {}
        self.replays = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, tape, outs, arrays, name: str = "step") -> "CompiledPlan":
        """Lower a captured tape + outputs into an executable plan.

        Raises :class:`CompileError` when the trace cannot be replayed
        soundly (unsupported op, an input array that never entered the
        graph as a leaf, a gradient-carrying input leaf, or a non-scalar
        loss root).
        """
        # Imported lazily: repro.analysis pulls in repro.core at package
        # init, which imports repro.nn — eager imports here would cycle.
        import dataclasses

        from ..analysis.graphcheck.ir import GraphIR, build_ir
        from ..analysis.graphcheck.transforms import (analyze_buffers,
                                                      find_duplicates,
                                                      find_fusion_groups,
                                                      node_bytes,
                                                      value_number)

        ir = build_ir(tape, roots=outs)

        # Tensor objects for every leaf (the tape holds strong refs).
        tensors: dict[int, object] = {}
        for rec in tape:
            tensors[id(rec.tensor)] = rec.tensor
            for p in rec.parents:
                tensors[id(p)] = p
        for t in outs:
            tensors[id(t)] = t
        leaf_tensor = {nid: tensors[tid] for tid, nid in ir.tensor_ids.items()
                       if ir.node(nid).is_leaf and tid in tensors}

        for n in ir:
            if n.is_leaf:
                continue
            if n.op not in KERNELS:
                raise CompileError(f"unsupported op '{n.op}'")
            if n.requires_grad and n.op not in VJPS:
                raise CompileError(f"op '{n.op}' has no replayable VJP")
        root = ir.roots[0]
        root_node = ir.node(root)
        if not root_node.requires_grad:
            raise CompileError("loss root does not require grad")
        if int(np.prod(root_node.shape)) != 1:
            raise CompileError("loss root is not a scalar")

        # CSE over gradient-free subgraphs: structural value numbering
        # with identity leaves (two inputs are never merged just because
        # their capture-time values coincided).
        vn = value_number(ir, identity_leaves=True)
        dup = {d: r for d, r in find_duplicates(ir, vn).items()
               if not ir.node(d).requires_grad
               and not ir.node(r).requires_grad}

        plan = cls(name, [None] * len(ir.nodes))
        plan.aliases = dup
        remap = lambda ids: tuple(dup.get(i, i) for i in ids)
        for n in ir:
            if n.id in dup:
                continue
            plan.nodes[n.id] = PlanNode(
                id=n.id, op="" if n.is_leaf else n.op, shape=tuple(n.shape),
                np_dtype=np.dtype(n.dtype), requires_grad=n.requires_grad,
                inputs=remap(n.inputs), attrs=n.attrs, label=n.label)
        plan.outputs = remap(ir.roots)

        # Leaf binding: inputs by array identity, parameters/constants by
        # Tensor reference (read fresh each replay).
        arr_index = {id(a): i for i, a in enumerate(arrays)}
        bound: set[int] = set()
        for nid, t in leaf_tensor.items():
            if nid in dup:
                continue
            src = arr_index.get(id(t.data))
            if src is not None:
                if plan.nodes[nid].requires_grad:
                    raise CompileError(f"input {src} is a requires_grad leaf")
                plan.input_bindings[nid] = src
                bound.add(src)
            elif plan.nodes[nid].requires_grad:
                plan.param_refs[nid] = t
            else:
                plan.const_refs[nid] = t
        missing = sorted(set(range(len(arrays))) - bound)
        if missing:
            raise CompileError(
                f"inputs {missing} never entered the graph as tensor leaves")
        plan.guards = tuple((tuple(a.shape), str(a.dtype)) for a in arrays)

        # Backward: replicate Tensor.backward()'s iterative DFS on node
        # ids (edges = inputs of requires_grad nodes, pushed in order).
        nodes = plan.nodes
        topo: list[int] = []
        visited: set[int] = set()
        stack: list[tuple[int, bool]] = [(plan.outputs[0], False)]
        while stack:
            nid, processed = stack.pop()
            if processed:
                topo.append(nid)
                continue
            if nid in visited:
                continue
            visited.add(nid)
            stack.append((nid, True))
            if nodes[nid].requires_grad:
                for p in nodes[nid].inputs:
                    if p not in visited:
                        stack.append((p, False))
        plan.backward_order = [nid for nid in reversed(topo)
                               if nodes[nid].inputs and nodes[nid].requires_grad]

        # Values the backward sweep will read stay pinned in the arena.
        pinned: set[int] = set(plan.outputs)
        for nid in plan.backward_order:
            n = nodes[nid]
            if n.op in _READS_OUT:
                pinned.add(nid)
            if n.op in _READS_IN:
                pinned.update(p for p in n.inputs if nodes[p].inputs)
        # View chains alias their base buffer for the whole step: pin the
        # view node and every ancestor down to the first non-view op.
        for n in nodes:
            if n is None or not n.inputs or n.op not in _MAY_VIEW:
                continue
            base = n.id
            while nodes[base].op in _MAY_VIEW and nodes[base].inputs:
                pinned.add(base)
                base = nodes[base].inputs[0]
            if nodes[base].inputs:
                pinned.add(base)

        # Shared passes over the deduplicated graph: fusion groups on
        # tape order, then the arena over the *execution* order (fused
        # chains run contiguously at their last member's position, so
        # liveness must be computed on that order).
        ir_nodes = [dataclasses.replace(n, inputs=remap(n.inputs), data=None)
                    for n in ir if n.id not in dup]
        plan_ir = GraphIR(ir_nodes, roots=plan.outputs)
        plan.fusion = find_fusion_groups(plan_ir, min_size=2)
        group_of: dict[int, object] = {}
        for g in plan.fusion.groups:
            for m in g.nodes:
                group_of[m.id] = g
        exec_ids: list[int] = []
        for n in plan_ir:
            if n.is_leaf:
                continue
            grp = group_of.get(n.id)
            if grp is None:
                plan.segments.append(("op", (n.id,), n.label))
                exec_ids.append(n.id)
            elif n.id == grp.nodes[-1].id:
                member_ids = tuple(m.id for m in grp.nodes)
                plan.segments.append(
                    ("fused", member_ids, grp.label or "+".join(grp.ops)))
                exec_ids.extend(member_ids)
        by_id = {n.id: n for n in ir_nodes}
        exec_ir = GraphIR([n for n in ir_nodes if n.is_leaf]
                          + [by_id[i] for i in exec_ids], roots=plan.outputs)
        plan.arena = analyze_buffers(exec_ir, keep_alive=frozenset(pinned))

        # Preallocated slots + per-node views for the out=-capable ops.
        plan.slot_buffers = [np.empty(size, dtype=np.uint8)
                             for size in plan.arena.slot_sizes]
        for nid, (slot, size, _, _) in plan.arena.assignments.items():
            n = nodes[nid]
            if n.op not in OUT_KERNELS:
                continue
            count = int(np.prod(n.shape)) if n.shape else 1
            nbytes = count * n.np_dtype.itemsize
            view = plan.slot_buffers[slot][:nbytes].view(n.np_dtype)
            plan.out_views[nid] = view.reshape(n.shape)

        # Flat dispatch lists.  The dtype guard pins replay inputs to the
        # capture dtypes, so whether a bound input needs the float cast
        # from ``Tensor.__init__`` is a build-time fact.
        for nid, src in plan.input_bindings.items():
            a = np.asarray(arrays[src])
            plan.input_list.append(
                (nid, src, not np.issubdtype(a.dtype, np.floating)))
        for _, ids, _ in plan.segments:
            for nid in ids:
                n = nodes[nid]
                view = plan.out_views.get(nid)
                kern = OUT_KERNELS[n.op] if view is not None else KERNELS[n.op]
                plan.run_list.append((nid, n, kern, view))
        plan.bwd_list = [(nid, nodes[nid], VJPS[nodes[nid].op])
                         for nid in plan.backward_order]

        # Gradient accumulation buffers for interior nodes, reused across
        # replays: the first contribution copies in, later ones add in
        # place — value-identical to the eager copy/add pair.  Parameter
        # gradients stay freshly allocated because ``t.grad`` escapes the
        # plan (optimizers and clipping hold references to it).
        receivers = {plan.outputs[0]}
        for nid in plan.backward_order:
            receivers.update(p for p in nodes[nid].inputs
                             if nodes[p].requires_grad)
        plan.grad_buffers = {
            nid: np.empty(nodes[nid].shape, dtype=nodes[nid].np_dtype)
            for nid in receivers if nid not in plan.param_refs}
        return plan

    # -- execution ------------------------------------------------------
    def execute(self, arrays, profile=None) -> StepResult:
        """Replay the plan on ``arrays``; returns a :class:`StepResult`."""
        nodes = self.nodes
        vals: list = [None] * len(nodes)
        aux: dict[int, np.ndarray] = {}
        for nid, src, cast in self.input_list:
            a = np.asarray(arrays[src])
            vals[nid] = a.astype(np.float64) if cast else a
        for nid, t in self.param_refs.items():
            vals[nid] = t.data
        for nid, t in self.const_refs.items():
            vals[nid] = t.data

        if profile is None:
            for nid, n, kern, view in self.run_list:
                if view is None:
                    vals[nid] = kern(nodes, n, vals, aux)
                else:
                    vals[nid] = kern(nodes, n, vals, aux, view)
        else:
            out_views = self.out_views
            t_prev = time.perf_counter()
            for kind, ids, label in self.segments:
                for nid in ids:
                    n = nodes[nid]
                    view = out_views.get(nid)
                    if view is not None:
                        vals[nid] = OUT_KERNELS[n.op](nodes, n, vals, aux, view)
                    else:
                        vals[nid] = KERNELS[n.op](nodes, n, vals, aux)
                stamp = time.perf_counter()
                op = "fused" if kind == "fused" else nodes[ids[0]].op
                nbytes = sum(vals[i].nbytes for i in ids)
                profile.record_fused(op, label, "nn.compile", stamp,
                                     stamp - t_prev, nbytes)
                t_prev = stamp

        self.replays += 1
        outputs = tuple(vals[nid].copy() for nid in self.outputs)
        return StepResult(outputs=outputs, mode="replay",
                          backward_fn=lambda: self._backward(vals, aux))

    def _backward(self, vals, aux) -> None:
        """VJP sweep mirroring the eager tape's backward pass."""
        nodes = self.nodes
        grads: list = [None] * len(nodes)
        for nid, t in self.param_refs.items():
            grads[nid] = t.grad
        bufs = self.grad_buffers

        def acc(nid: int, g) -> None:
            n = nodes[nid]
            if not n.requires_grad:
                return
            g = _unbroadcast(np.asarray(g, dtype=n.np_dtype), n.shape)
            cur = grads[nid]
            if cur is None:
                buf = bufs.get(nid)
                if buf is None:
                    grads[nid] = g.copy()
                else:
                    np.copyto(buf, g)
                    grads[nid] = buf
            elif cur is bufs.get(nid):
                cur += g
            else:
                grads[nid] = cur + g

        root = self.outputs[0]
        acc(root, np.ones_like(vals[root]))
        for nid, n, vjp in self.bwd_list:
            g = grads[nid]
            if g is None:
                continue
            vjp(nodes, n, g, vals, aux, acc)
        for nid, t in self.param_refs.items():
            t.grad = grads[nid]

    # -- reporting ------------------------------------------------------
    def describe(self) -> dict:
        """Plan statistics for ``repro compile`` and the check pillar."""
        ops = [n for n in self.nodes if n is not None and n.inputs]
        return {
            "name": self.name,
            "guards": [{"shape": list(s), "dtype": d} for s, d in self.guards],
            "nodes": len(ops),
            "inputs": len(self.input_bindings),
            "params": len(self.param_refs),
            "consts": len(self.const_refs),
            "cse_merged": len(self.aliases),
            "fused_groups": [{"ops": g.ops, "saved_bytes": g.saved_bytes}
                             for g in self.fusion.groups],
            "arena_bytes": self.arena.arena_bytes,
            "total_alloc_bytes": self.arena.total_alloc_bytes,
            "peak_live_bytes": self.arena.peak_live_bytes,
            "reuse_ratio": self.arena.reuse_ratio,
            "arena_backed_ops": len(self.out_views),
            "backward_ops": len(self.backward_order),
            "replays": self.replays,
        }


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------
class CompiledStep:
    """Shape-guarded compile-on-first-call wrapper around a step function.

    ``fn(*arrays)`` must build its graph purely from Tensor leaves over
    the call arrays and captured parameters/constants, and return a
    tuple of Tensors whose first element is the scalar loss.  The first
    call per input signature runs eagerly under a trace and lowers the
    tape into a :class:`CompiledPlan`; later calls with the same
    signature replay the plan.  Anything the plan cannot honour —
    anomaly mode, an enclosing plain trace, an unsupported graph — falls
    back to the eager path (permanently, when lowering itself failed).
    """

    def __init__(self, fn, name: str = "step", enabled: bool = True,
                 max_plans: int = 8):
        self.fn = fn
        self.name = name
        self.enabled = enabled
        self.max_plans = max_plans
        self.plans: dict[tuple, CompiledPlan] = {}
        self.disabled_reason: str | None = None
        self.calls = 0
        self.eager_calls = 0
        self.replay_calls = 0
        _COMPILED_STEPS.add(self)

    def __call__(self, *arrays) -> StepResult:
        self.calls += 1
        if not self.enabled or self.disabled_reason is not None:
            return self._eager(arrays)
        if _anomaly._ENABLED:
            return self._eager(arrays)
        active = _tracer._ACTIVE
        profile = None
        if active is not None:
            if not hasattr(active, "record_fused"):
                # A plain graph trace wants the real tape, not a replay.
                return self._eager(arrays)
            profile = active
        sig = tuple((tuple(a.shape), str(a.dtype))
                    for a in (np.asarray(a) for a in arrays))
        plan = self.plans.get(sig)
        if plan is not None:
            self.replay_calls += 1
            return plan.execute(arrays, profile=profile)
        if profile is not None or len(self.plans) >= self.max_plans:
            return self._eager(arrays)
        return self._capture(sig, arrays)

    def _eager(self, arrays) -> StepResult:
        self.eager_calls += 1
        return StepResult(tensors=tuple(self.fn(*arrays)), mode="eager")

    def _capture(self, sig, arrays) -> StepResult:
        """Run eagerly under a private trace and lower the tape."""
        self.eager_calls += 1
        with _tracer.trace() as tape:
            outs = tuple(self.fn(*arrays))
        try:
            self.plans[sig] = CompiledPlan.build(tape, outs, arrays,
                                                 name=self.name)
        except CompileError as exc:
            self.disabled_reason = str(exc)
        return StepResult(tensors=outs, mode="capture")

    def describe(self) -> dict:
        """Dispatcher + per-plan statistics."""
        return {
            "name": self.name,
            "enabled": self.enabled,
            "disabled_reason": self.disabled_reason,
            "calls": self.calls,
            "eager_calls": self.eager_calls,
            "replay_calls": self.replay_calls,
            "plans": [p.describe() for p in self.plans.values()],
        }


def compile_step(fn=None, *, name: str = "step", enabled: bool = True,
                 max_plans: int = 8):
    """Decorator/factory form of :class:`CompiledStep`."""
    if fn is None:
        return lambda f: CompiledStep(f, name=name, enabled=enabled,
                                      max_plans=max_plans)
    return CompiledStep(fn, name=name, enabled=enabled, max_plans=max_plans)
