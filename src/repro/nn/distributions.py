"""Probability distributions for stochastic policies.

``Categorical`` drives the UGV release/next-stop head; ``DiagGaussian``
drives the UAV's continuous 2-D movement head.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor

__all__ = ["Categorical", "DiagGaussian"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class Categorical:
    """Categorical distribution parameterised by raw logits (last axis)."""

    def __init__(self, logits: Tensor):
        self.logits = as_tensor(logits)
        self.log_probs_all = self.logits.log_softmax(axis=-1)

    @property
    def probs(self) -> np.ndarray:
        return np.exp(self.log_probs_all.data)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample action indices; works on any batch shape."""
        p = self.probs
        flat = p.reshape(-1, p.shape[-1])
        # Guard against tiny numeric drift off the simplex.
        flat = flat / flat.sum(axis=-1, keepdims=True)
        cdf = np.cumsum(flat, axis=-1)
        u = rng.random((flat.shape[0], 1))
        idx = (u > cdf).sum(axis=-1)
        return idx.reshape(p.shape[:-1])

    def mode(self) -> np.ndarray:
        return self.log_probs_all.data.argmax(axis=-1)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        return F.gather(self.log_probs_all, np.asarray(actions, dtype=np.int64), axis=-1)

    def entropy(self) -> Tensor:
        p = self.log_probs_all.exp()
        return -(p * self.log_probs_all).sum(axis=-1)


class DiagGaussian:
    """Diagonal Gaussian with state-independent log-std (PPO convention)."""

    def __init__(self, mean: Tensor, log_std: Tensor):
        self.mean = as_tensor(mean)
        self.log_std = as_tensor(log_std)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        std = np.exp(self.log_std.data)
        return self.mean.data + std * rng.standard_normal(self.mean.shape)

    def mode(self) -> np.ndarray:
        return self.mean.data.copy()

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Sum of per-dimension log densities (last axis)."""
        actions = np.asarray(actions, dtype=np.float64)
        var_inv = (-2.0 * self.log_std).exp()
        diff = Tensor(actions) - self.mean
        per_dim = diff * diff * var_inv * (-0.5) - self.log_std - 0.5 * _LOG_2PI
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        per_dim = self.log_std + 0.5 * (_LOG_2PI + 1.0)
        # Broadcast to the batch shape of the mean for consistent reduction.
        if self.mean.ndim > 1:
            batch = Tensor(np.zeros(self.mean.shape[:-1] + (self.log_std.shape[-1],)))
            per_dim = per_dim + batch
        return per_dim.sum(axis=-1)
