"""``repro compile`` — lower GARL's UAV step into a plan and report it.

Builds the real GARL trainer on a small campus, captures one UAV
surrogate-loss minibatch through :class:`repro.nn.CompiledStep`, and
prints the resulting :class:`~repro.nn.compile.CompiledPlan`: fused
groups, arena footprint vs. per-op allocation, the input guard set, and
the CSE/backward statistics.

Two gates make the command CI-usable:

* the default report exits 1 when the plan misses the quality floor
  (fewer than 3 fused groups, or an arena not strictly below the sum of
  per-op allocations);
* ``--smoke`` additionally replays the plan against the eager tape and
  exits 2 on any bitwise mismatch in outputs or parameter gradients —
  the golden-equivalence contract of :mod:`repro.nn.compile`.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import replace

import numpy as np

__all__ = ["build_uav_step", "golden_smoke", "main"]


def build_uav_step(campus: str = "kaist", preset: str = "smoke",
                   num_ugvs: int = 2, num_uavs_per_ugv: int = 1,
                   seed: int = 0, minibatch: int = 16):
    """GARL trainer (compile enabled) + one real UAV minibatch.

    Returns ``(trainer, args)`` where ``args`` is the argument tuple of
    :meth:`IPPOTrainer._uav_loss_arrays` for one rollout minibatch.
    """
    # Heavy imports stay local: repro.nn must not pull the experiment
    # stack at import time.
    from ..core import IPPOTrainer, UAVPolicy, UGVPolicy
    from ..experiments.presets import get_preset
    from ..experiments.runner import build_env

    preset_obj = get_preset(preset)
    env = build_env(campus, preset_obj, num_ugvs, num_uavs_per_ugv, seed)
    cfg = preset_obj.garl_config()
    rng = np.random.default_rng(seed)
    ugv = UGVPolicy(env.stops, cfg, rng=rng)
    uav = UAVPolicy(env.config.uav_obs_size, cfg, rng=rng)
    trainer = IPPOTrainer(env, ugv, uav, replace(cfg.ppo, compile=True),
                          seed=seed)

    _, uav_roll, *_ = trainer.collect_vec(episodes=1, num_envs=2)
    flat = uav_roll.flat_samples(trainer.ppo.gamma, trainer.ppo.gae_lambda)
    if len(flat) == 0:
        raise RuntimeError("rollout produced no airborne UAV samples")
    adv = flat.advantages
    norm_adv = (adv - adv.mean()) / (adv.std() + 1e-8)
    idxs = np.arange(min(minibatch, len(flat)))
    args = (flat.grids[idxs], flat.aux[idxs], flat.actions[idxs],
            flat.log_probs[idxs], norm_adv[idxs], flat.values[idxs],
            flat.returns[idxs],
            np.asarray(trainer._entropy_coef, dtype=np.float64))
    return trainer, args


def golden_smoke(trainer, args) -> list[str]:
    """Bitwise golden-equivalence check; returns mismatch descriptions.

    Captures the plan, replays it twice, runs the same minibatch through
    a plain eager step, and demands bit-for-bit identical outputs and
    parameter gradients everywhere — plus an eager fallback (not a
    corrupt replay) when the input signature changes.
    """
    step = trainer._uav_step
    params = trainer.uav_optimizer.params
    errors: list[str] = []

    def grads():
        out = [None if p.grad is None else p.grad.copy() for p in params]
        for p in params:
            p.grad = None
        return out

    def run(label):
        res = step(*args)
        res.backward()
        return res.mode, tuple(np.asarray(o).copy() for o in res.outputs), grads()

    _, out_cap, g_cap = run("capture")
    mode1, out_rep1, g_rep1 = run("replay-1")
    mode2, out_rep2, g_rep2 = run("replay-2")
    step.enabled = False
    _, out_eager, g_eager = run("eager")
    step.enabled = True

    if step.disabled_reason:
        errors.append(f"plan lowering failed: {step.disabled_reason}")
        return errors
    if mode1 != "replay" or mode2 != "replay":
        errors.append(f"expected replays, got {mode1}/{mode2}")

    for label, outs, gs in (("replay-1", out_rep1, g_rep1),
                            ("replay-2", out_rep2, g_rep2),
                            ("eager", out_eager, g_eager)):
        if not all(np.array_equal(a, b) for a, b in zip(out_cap, outs)):
            errors.append(f"{label}: outputs differ from capture")
        bad = [i for i, (a, b) in enumerate(zip(g_cap, gs))
               if not np.array_equal(a, b)]
        if bad:
            errors.append(f"{label}: gradients differ at params {bad}")

    # Shape-guard fallback: a different batch size must not replay the
    # stale plan (fresh capture or eager are both sound).
    half = tuple(a[: max(1, len(args[0]) // 2)] if a.ndim else a
                 for a in args)
    res = step(*half)
    if res.mode == "replay" and len(half[0]) != len(args[0]):
        errors.append("guard failure: replayed a plan for a different shape")
    return errors


def _print_plan(stats: dict) -> None:
    print(f"plan '{stats['name']}': {stats['nodes']} ops, "
          f"{stats['inputs']} inputs, {stats['params']} params, "
          f"{stats['consts']} consts")
    print(f"  guards: {[tuple(g['shape']) for g in stats['guards']]}")
    print(f"  cse merged: {stats['cse_merged']}, "
          f"backward ops: {stats['backward_ops']}")
    print(f"  fused groups: {len(stats['fused_groups'])}")
    for i, g in enumerate(stats["fused_groups"]):
        print(f"    [{i}] {'+'.join(g['ops'])} (saves {g['saved_bytes']} B)")
    total = stats["total_alloc_bytes"]
    arena = stats["arena_bytes"]
    print(f"  arena: {arena} B over {stats['arena_backed_ops']} out= ops "
          f"(per-op alloc {total} B, peak live {stats['peak_live_bytes']} B, "
          f"reuse {stats['reuse_ratio']:.1%})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro compile",
        description="lower GARL's UAV surrogate step through the compiled "
                    "plan executor and report fused groups, arena bytes "
                    "and the guard set")
    parser.add_argument("--campus", default="kaist")
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--ugvs", type=int, default=2)
    parser.add_argument("--uavs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--minibatch", type=int, default=16)
    parser.add_argument("--smoke", action="store_true",
                        help="also verify bitwise replay/eager equivalence "
                             "(exit 2 on mismatch)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the plan statistics as JSON")
    args = parser.parse_args(argv)

    trainer, step_args = build_uav_step(
        campus=args.campus, preset=args.preset, num_ugvs=args.ugvs,
        num_uavs_per_ugv=args.uavs, seed=args.seed,
        minibatch=args.minibatch)

    smoke_errors: list[str] = []
    if args.smoke:
        smoke_errors = golden_smoke(trainer, step_args)
    else:
        trainer._uav_step(*step_args)  # capture only

    step = trainer._uav_step
    if step.disabled_reason:
        print(f"compile: lowering failed: {step.disabled_reason}")
        return 1
    stats = step.describe()["plans"][0]
    _print_plan(stats)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")

    ok = True
    if len(stats["fused_groups"]) < 3:
        print("compile: FAIL — fewer than 3 fused groups")
        ok = False
    if stats["arena_bytes"] >= stats["total_alloc_bytes"]:
        print("compile: FAIL — arena does not beat per-op allocation")
        ok = False
    if smoke_errors:
        for e in smoke_errors:
            print(f"compile: MISMATCH — {e}")
        print("\ncompile: golden equivalence FAILED")
        return 2
    if not ok:
        return 1
    suffix = " (golden equivalence verified)" if args.smoke else ""
    print(f"\ncompile: plan ok{suffix}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
