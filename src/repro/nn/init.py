"""Weight initialisation schemes for the nn substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "orthogonal", "zeros", "uniform"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in / fan-out for dense or convolutional weights."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:  # (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (the PPO-standard choice for policy layers)."""
    if len(shape) < 2:
        return rng.normal(0.0, 1.0, size=shape) * gain
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).reshape(shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape)
