"""``repro.nn`` — a from-scratch numpy neural-network substrate.

The paper trained GARL with PyTorch on GPUs; this package provides the
same building blocks (autograd tensors, dense/conv/recurrent/graph layers,
Adam, PPO-style distributions) so the whole system runs offline on CPU.
"""

from . import functional
from .anomaly import (
    AnomalyError,
    InplaceMutationError,
    annotate,
    detect_anomaly,
    is_anomaly_enabled,
)
from .attention import MultiHeadAttention, ScaledDotProductAttention, SelfAttentionBlock
from .distributions import Categorical, DiagGaussian
from .graph import GATLayer, GCNLayer, normalized_laplacian
from .layers import (
    MLP,
    Conv2d,
    Flatten,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import SGD, Adam, Optimizer, RMSProp, clip_grad_norm
from .recurrent import GRUCell, LSTMCell
from .serialize import (
    CheckpointMismatchError,
    atomic_savez,
    atomic_write_bytes,
    load_checkpoint,
    rng_from_state,
    rng_state,
    save_checkpoint,
    set_rng_state,
    validate_state_dict,
)
from .tensor import Tensor, as_tensor, enable_grad, is_grad_enabled, no_grad
from .tracer import TapeRecord, active_trace, is_tracing, trace

# Imported last: the compiler reaches into repro.analysis lazily, but its
# module body touches most of the engine surface above.
from .compile import (
    CompiledPlan,
    CompiledStep,
    CompileError,
    StepResult,
    clear_plan_caches,
    compile_step,
)

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "detect_anomaly",
    "is_anomaly_enabled",
    "trace",
    "is_tracing",
    "active_trace",
    "TapeRecord",
    "annotate",
    "AnomalyError",
    "InplaceMutationError",
    "CompileError",
    "CompiledPlan",
    "CompiledStep",
    "StepResult",
    "clear_plan_caches",
    "compile_step",
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Sequential",
    "LayerNorm",
    "MLP",
    "LSTMCell",
    "GRUCell",
    "GCNLayer",
    "GATLayer",
    "normalized_laplacian",
    "ScaledDotProductAttention",
    "MultiHeadAttention",
    "SelfAttentionBlock",
    "Categorical",
    "DiagGaussian",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "clip_grad_norm",
    "save_checkpoint",
    "load_checkpoint",
    "validate_state_dict",
    "CheckpointMismatchError",
    "atomic_savez",
    "atomic_write_bytes",
    "rng_state",
    "rng_from_state",
    "set_rng_state",
]
