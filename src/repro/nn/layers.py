"""Neural-network layers: Module base class plus the layers GARL needs.

The :class:`Module` protocol mirrors the familiar PyTorch one (parameters,
submodule discovery, state dicts) at the scale this reproduction requires.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from . import functional as F
from . import init as weight_init
from .tensor import Tensor, as_tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Sequential",
    "LayerNorm",
    "MLP",
]


class Parameter(Tensor):
    """A Tensor that is registered as a trainable parameter of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimisation and
    (de)serialisation.
    """

    def __init__(self) -> None:
        self.training = True

    # -- discovery ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Every parameter of this module and its submodules."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module, then every registered submodule, depth-first."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- training state -------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively; returns ``self`` for chaining."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Shortcut for ``train(False)``."""
        return self.train(False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear every parameter's gradient (dropped, or zero-filled)."""
        for p in self.parameters():
            p.zero_grad(set_to_none=set_to_none)

    def num_parameters(self) -> int:
        """Total count of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- (de)serialisation ----------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Dotted-name -> copied-array snapshot of all parameters."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a :meth:`state_dict` snapshot; strict on names and shapes."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, p in own.items():
            value = np.asarray(state[name])
            if value.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {p.data.shape}")
            p.data = value.astype(p.data.dtype).copy()
            p.bump_version()

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output (subclasses override)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None, init: str = "xavier_uniform",
                 gain: float = 1.0):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        initializer = getattr(weight_init, init)
        self.weight = Parameter(initializer((in_features, out_features), rng, gain=gain)
                                if init in ("xavier_uniform", "xavier_normal", "orthogonal")
                                else initializer((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2D convolution layer over (N, C, H, W) inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(weight_init.kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(as_tensor(x), self.weight, self.bias, stride=self.stride, padding=self.padding)


class MaxPool2d(Module):
    """Max pooling over ``kernel``-sized windows of (N, C, H, W) input."""
    def __init__(self, kernel: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(as_tensor(x), self.kernel, self.stride)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        return x.reshape(x.shape[0], -1)


class ReLU(Module):
    """Elementwise ``max(x, 0)`` activation."""
    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).relu()


class Tanh(Module):
    """Elementwise hyperbolic-tangent activation."""
    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).tanh()


class Sigmoid(Module):
    """Elementwise logistic-sigmoid activation."""
    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).sigmoid()


class LeakyReLU(Module):
    """Leaky ReLU activation: ``x if x > 0 else slope * x``."""
    def __init__(self, slope: float = 0.01):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).leaky_relu(self.slope)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``sizes`` gives the full chain of layer widths, e.g. ``[64, 128, 5]``.
    The activation is applied between layers; ``output_activation`` (a
    Module factory or None) applies after the last layer.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator | None = None,
                 activation: Callable[[], Module] = Tanh,
                 output_activation: Callable[[], Module] | None = None,
                 init: str = "orthogonal", final_gain: float = 0.01):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng(0)
        layers: list[Module] = []
        for i, (a, b) in enumerate(zip(sizes[:-1], sizes[1:])):
            last = i == len(sizes) - 2
            gain = final_gain if last else np.sqrt(2.0)
            layers.append(Linear(a, b, rng=rng, init=init, gain=gain))
            if not last:
                layers.append(activation())
            elif output_activation is not None:
                layers.append(output_activation())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
