"""Graph tracer: capture the autodiff tape into an inspectable record.

This is the *third* leg of the correctness tooling (source lint in
``repro.analysis.rules``, runtime sanitizer in ``repro.nn.anomaly``): a
zero-configuration tape capture that records every tensor the engine
creates while a :class:`trace` scope is active, together with op name,
creation site, parents and an optional phase tag.  The records are the
raw material :mod:`repro.analysis.graphcheck` compiles into a typed
graph IR for static verification (shape propagation, gradient flow,
softmax invariants, cross-step diffs, common-subexpression detection).

Unlike the anomaly provenance, trace records

* keep *all* parent edges, even through tensors with
  ``requires_grad=False`` — invariants like "attention rows sum to 1"
  live on constant subgraphs the backward tape prunes away;
* never raise: tracing observes, analyses judge afterwards;
* skip input fingerprinting, so tracing is cheap enough to wrap a full
  forward+backward step.

When no trace is active the engine pays a single ``is None`` test per
op (see ``benchmarks/graphcheck_overhead.py`` / ``BENCH_graphcheck.json``).

Usage::

    from repro.nn import trace

    with trace() as tape:
        tape.set_phase("forward")
        out = policy(observations)
        tape.set_phase("loss")
        loss = surrogate_loss(out)
        loss.backward()          # backward creates no new tape entries
    print(len(tape))             # number of recorded ops
"""

from __future__ import annotations

import os as _os
import sys
import traceback
from typing import Iterator, Sequence

__all__ = ["TapeRecord", "trace", "is_tracing", "active_trace"]

# The currently active trace, or None.  ``_make_child`` tests this once
# per op; keeping it a plain module global (not a list/stack) makes the
# disabled path a single LOAD_GLOBAL + POP_JUMP.
_ACTIVE: "trace | None" = None


def _reset_in_child() -> None:
    """Drop any inherited live trace in a forked child process.

    A rollout worker forked while the parent traced would otherwise
    append its ops to a tape nobody reads (and pay per-op recording
    cost).  Children always start with tracing off.
    """
    global _ACTIVE
    _ACTIVE = None


if hasattr(_os, "register_at_fork"):  # not available on all platforms
    _os.register_at_fork(after_in_child=_reset_in_child)

# Engine-internal files skipped when attributing an op to user code
# (mirrors repro.nn.anomaly._ENGINE_FILES).
_ENGINE_FILES = ("tensor.py", "functional.py", "anomaly.py", "tracer.py")


def is_tracing() -> bool:
    """Return whether a :class:`trace` scope is currently active."""
    return _ACTIVE is not None


def active_trace() -> "trace | None":
    """Return the active trace (used by ``annotate`` to attach labels)."""
    return _ACTIVE


def _creation_site(extra_skip: tuple = ()) -> str:
    """First stack frame outside the engine, as ``path:line in func``.

    ``extra_skip`` lets :class:`trace` subclasses that add their own
    frames to the record path (e.g. ``repro.obs.opprof.TimedTrace``)
    exclude those files from the attribution walk.
    """
    for frame in reversed(traceback.extract_stack()):
        fname = frame.filename.replace("\\", "/")
        base = fname.rsplit("/", 1)[-1]
        if "repro/nn/" in fname and base in _ENGINE_FILES:
            continue
        if extra_skip and base in extra_skip:
            continue
        return f"{fname}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class TapeRecord:
    """One recorded op: the created tensor plus its provenance.

    Strong references to ``tensor`` and ``parents`` keep the traced step's
    tape alive for as long as the trace object itself, which is what lets
    the cross-step diff pass compare tensor identities between steps.
    """

    __slots__ = ("tensor", "op", "site", "label", "phase", "parents", "attrs")

    def __init__(self, tensor, op: str, site: str, phase: str, parents: tuple,
                 attrs: dict | None = None):
        self.tensor = tensor
        self.op = op
        self.site = site
        self.label = ""
        self.phase = phase
        self.parents = parents
        # Static op parameters (axis, clip bounds, conv stride, ...) the
        # compiled executor needs to replay the op on fresh inputs.
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TapeRecord(op={self.op!r}, shape={tuple(self.tensor.shape)}, "
                f"site={self.site!r})")


class trace:
    """Context manager capturing every engine op into a tape.

    Nesting raises: a trace is a measurement of one step, and nested
    scopes would silently attribute inner ops to the outer tape.
    """

    # Subclasses whose ``record_op`` override adds stack frames list their
    # file names here so site attribution skips them (see _creation_site).
    _extra_site_skip: tuple = ()

    def __init__(self, site_provenance: bool = True):
        # site_provenance=False skips the stack walk per op (used by the
        # overhead benchmark to isolate the record-keeping cost).
        self.records: list[TapeRecord] = []
        self._by_id: dict[int, TapeRecord] = {}
        self._phase = "forward"
        self._sites = site_provenance

    # -- context protocol ----------------------------------------------
    def __enter__(self) -> "trace":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("repro.nn.trace scopes do not nest")
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        _ACTIVE = None

    # -- recording ------------------------------------------------------
    def record_op(self, child, parents: Sequence, op: str | None,
                  attrs: dict | None = None) -> None:
        """Called by ``Tensor._make_child`` while this trace is active."""
        if op is None:
            # record_op <- _make_child <- the op method: two frames up.
            op = sys._getframe(2).f_code.co_name.strip("_")
        site = (_creation_site(self._extra_site_skip) if self._sites
                else "<untracked>")
        rec = TapeRecord(child, op, site, self._phase, tuple(parents), attrs)
        self.records.append(rec)
        self._by_id[id(child)] = rec

    def label(self, tensor, label: str) -> None:
        """Attach a semantic label (from ``annotate``) to a traced tensor."""
        rec = self._by_id.get(id(tensor))
        if rec is not None:
            rec.label = label

    # -- phases ---------------------------------------------------------
    def set_phase(self, phase: str) -> None:
        """Tag subsequently recorded ops with ``phase`` (e.g. "loss")."""
        self._phase = str(phase)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TapeRecord]:
        return iter(self.records)

    def record_for(self, tensor) -> TapeRecord | None:
        """The record that created ``tensor``, or None for leaves."""
        return self._by_id.get(id(tensor))
