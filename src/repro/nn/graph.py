"""Graph neural-network layers: GCN (Eqn. 1 of the paper) and GAT.

These operate on dense adjacency matrices, which is appropriate for the
stop graphs in this reproduction (a few hundred nodes).
"""

from __future__ import annotations

import numpy as np

from .anomaly import annotate
from .init import xavier_uniform
from .layers import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["normalized_laplacian", "GCNLayer", "GATLayer"]


def normalized_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric-normalised adjacency with self loops (Eqn. 1b).

    ``L = D^{-1/2} (A + I) D^{-1/2}`` where ``D`` is the degree matrix of
    ``A + I``.  Isolated nodes keep a self-loop weight of 1.
    """
    a = np.asarray(adjacency, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"adjacency must be square, got {a.shape}")
    a_tilde = a + np.eye(a.shape[0])
    degree = a_tilde.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return a_tilde * inv_sqrt[:, None] * inv_sqrt[None, :]


class GCNLayer(Module):
    """One graph-convolution layer ``X' = sigma(L X W)`` (Eqn. 1a)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None, activation: str = "relu"):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features))
        self.activation = activation

    def forward(self, x: Tensor, laplacian: np.ndarray) -> Tensor:
        x = as_tensor(x)
        lap = Tensor(laplacian)
        out = lap @ (x @ self.weight) + self.bias
        if self.activation == "relu":
            return out.relu()
        if self.activation == "tanh":
            return out.tanh()
        if self.activation == "none":
            return out
        raise ValueError(f"unknown activation {self.activation!r}")


class GATLayer(Module):
    """Graph attention layer (Velickovic et al., 2017), single head.

    Attention coefficients use the standard LeakyReLU( a^T [Wh_i || Wh_j] )
    form, masked to graph edges (plus self loops) and softmax-normalised.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None, slope: float = 0.2):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.attn_src = Parameter(xavier_uniform((out_features, 1), rng))
        self.attn_dst = Parameter(xavier_uniform((out_features, 1), rng))
        self.slope = slope

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        x = as_tensor(x)
        h = x @ self.weight  # (N, F')
        src = h @ self.attn_src  # (N, 1)
        dst = h @ self.attn_dst  # (N, 1)
        # e_ij = leaky_relu(src_i + dst_j)
        logits = (src + dst.transpose()).leaky_relu(self.slope)  # (N, N)
        mask = np.asarray(adjacency, dtype=bool) | np.eye(len(adjacency), dtype=bool)
        neg = Tensor(np.where(mask, 0.0, -1e9))
        alpha = annotate((logits + neg).softmax(axis=-1), "GATLayer.alpha")
        return (alpha @ h).tanh()
