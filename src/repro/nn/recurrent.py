"""Recurrent cells (LSTM / GRU) used by the IC3Net and GAM baselines."""

from __future__ import annotations

import numpy as np

from .init import orthogonal, xavier_uniform
from .layers import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["LSTMCell", "GRUCell"]


class LSTMCell(Module):
    """Single-step LSTM cell.

    Weights are packed gate-wise: input, forget, cell, output — each of
    shape (input+hidden, hidden).
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        total = input_size + hidden_size
        self.w_i = Parameter(xavier_uniform((total, hidden_size), rng))
        self.w_f = Parameter(xavier_uniform((total, hidden_size), rng))
        self.w_c = Parameter(xavier_uniform((total, hidden_size), rng))
        self.w_o = Parameter(xavier_uniform((total, hidden_size), rng))
        # Forget-gate bias starts at 1 so early training does not erase memory.
        self.b_i = Parameter(np.zeros(hidden_size))
        self.b_f = Parameter(np.ones(hidden_size))
        self.b_c = Parameter(np.zeros(hidden_size))
        self.b_o = Parameter(np.zeros(hidden_size))

    def init_state(self, batch: int) -> tuple[Tensor, Tensor]:
        return (Tensor(np.zeros((batch, self.hidden_size))),
                Tensor(np.zeros((batch, self.hidden_size))))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        h, c = state
        x = as_tensor(x)
        z = Tensor.concat([x, as_tensor(h)], axis=-1)
        i = (z @ self.w_i + self.b_i).sigmoid()
        f = (z @ self.w_f + self.b_f).sigmoid()
        g = (z @ self.w_c + self.b_c).tanh()
        o = (z @ self.w_o + self.b_o).sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, (h_new, c_new)


class GRUCell(Module):
    """Single-step GRU cell."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        total = input_size + hidden_size
        self.w_r = Parameter(xavier_uniform((total, hidden_size), rng))
        self.w_z = Parameter(xavier_uniform((total, hidden_size), rng))
        self.w_h = Parameter(orthogonal((total, hidden_size), rng))
        self.b_r = Parameter(np.zeros(hidden_size))
        self.b_z = Parameter(np.zeros(hidden_size))
        self.b_h = Parameter(np.zeros(hidden_size))

    def init_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        x = as_tensor(x)
        h = as_tensor(h)
        z_in = Tensor.concat([x, h], axis=-1)
        r = (z_in @ self.w_r + self.b_r).sigmoid()
        z = (z_in @ self.w_z + self.b_z).sigmoid()
        h_in = Tensor.concat([x, r * h], axis=-1)
        h_tilde = (h_in @ self.w_h + self.b_h).tanh()
        ones = Tensor(np.ones_like(z.data))
        return (ones - z) * h + z * h_tilde
