"""Runtime numerics sanitizer with per-op provenance.

This is the dynamic half of the correctness tooling (the static half is
``repro.analysis``): an opt-in anomaly-detection mode mirroring
``torch.autograd.set_detect_anomaly``.  While enabled, every operation the
autograd engine records

* is checked for NaN/Inf in its forward output,
* remembers *provenance* — the op name and the user-code location that
  created it, plus the shapes/dtypes of its inputs,
* fingerprints its inputs so that in-place mutation of ``Tensor.data``
  between forward and backward raises :class:`InplaceMutationError`
  instead of silently corrupting gradients,
* has the gradients it produces during backward checked for NaN/Inf.

All hooks sit behind a single module-level flag, so the engine pays one
boolean test per op when the mode is disabled and nothing else.

Usage::

    from repro.nn import detect_anomaly

    with detect_anomaly():
        loss = model(batch)
        loss.backward()   # raises AnomalyError naming the culprit op
"""

from __future__ import annotations

import sys
import traceback
import zlib

import numpy as np

from . import tracer as _tracer

__all__ = [
    "AnomalyError",
    "InplaceMutationError",
    "detect_anomaly",
    "is_anomaly_enabled",
    "annotate",
]

_ENABLED = False

# Engine-internal files skipped when attributing an op to user code.
_ENGINE_FILES = ("tensor.py", "functional.py", "anomaly.py")


class AnomalyError(RuntimeError):
    """A NaN/Inf was produced by a recorded autograd operation."""


class InplaceMutationError(AnomalyError):
    """An op input was mutated in place between forward and backward."""


class detect_anomaly:
    """Context manager / decorator toggling the numerics sanitizer.

    ``detect_anomaly(False)`` temporarily disables an enclosing anomaly
    scope, mirroring the torch API.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)

    def __enter__(self) -> "detect_anomaly":
        global _ENABLED
        self._prev = _ENABLED
        _ENABLED = self._enabled
        return self

    def __exit__(self, *exc_info) -> None:
        global _ENABLED
        _ENABLED = self._prev

    def __call__(self, fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with detect_anomaly(self._enabled):
                return fn(*args, **kwargs)

        return wrapper


def is_anomaly_enabled() -> bool:
    """Return whether the runtime numerics sanitizer is active."""
    return _ENABLED


# ----------------------------------------------------------------------
# Provenance records
# ----------------------------------------------------------------------
class OpRecord:
    """Provenance attached to a tensor created while the mode is active."""

    __slots__ = ("op", "site", "label", "parents")

    def __init__(self, op: str, site: str,
                 parents: list[tuple[object, int, tuple]]):
        self.op = op
        self.site = site
        self.label = ""
        self.parents = parents  # (tensor, version_at_creation, fingerprint)

    def describe(self) -> str:
        name = f"'{self.op}'" + (f" [{self.label}]" if self.label else "")
        ins = ", ".join(
            f"{tuple(p.data.shape)} {p.data.dtype}"
            + (f" <- '{p._anomaly.op}'" if getattr(p, "_anomaly", None) is not None else "")
            for p, _, _ in self.parents
        )
        return f"op {name} created at {self.site} with inputs ({ins})"


def _fingerprint(arr: np.ndarray) -> tuple:
    return (arr.shape, zlib.adler32(arr.tobytes()))


def _creation_site() -> str:
    for frame in reversed(traceback.extract_stack()):
        fname = frame.filename.replace("\\", "/")
        base = fname.rsplit("/", 1)[-1]
        if "repro/nn/" in fname and base in _ENGINE_FILES:
            continue
        return f"{fname}:{frame.lineno} in {frame.name}"
    return "<unknown>"


def _nonfinite_counts(arr: np.ndarray) -> tuple[int, int]:
    nan = int(np.isnan(arr).sum())
    inf = int(np.isinf(arr).sum())
    return nan, inf


def record_op(child, parents, op: str | None) -> None:
    """Attach provenance to ``child`` and check its forward output.

    Called by ``Tensor._make_child`` only while the mode is enabled; the
    op name defaults to the name of the engine method that created the
    tensor (two frames up: record_op <- _make_child <- the op).
    """
    if op is None:
        op = sys._getframe(2).f_code.co_name.strip("_")
    rec = OpRecord(op, _creation_site(),
                   [(p, p._version, _fingerprint(p.data)) for p in parents])
    child._anomaly = rec
    data = child.data
    if not np.isfinite(data).all():
        nan, inf = _nonfinite_counts(data)
        raise AnomalyError(
            f"detect_anomaly: forward of {rec.describe()} produced "
            f"{nan} NaN / {inf} Inf values (output shape {tuple(data.shape)})"
        )


def check_before_backward(node) -> None:
    """Verify no op input was mutated since the forward pass recorded it."""
    rec = getattr(node, "_anomaly", None)
    if rec is None:
        return
    for parent, version, fp in rec.parents:
        if parent._version != version:
            how = f"version counter {version} -> {parent._version}"
        elif _fingerprint(parent.data) != fp:
            how = "data fingerprint changed with no version bump"
        else:
            continue
        raise InplaceMutationError(
            f"detect_anomaly: an input of {rec.describe()} was mutated "
            f"in place between forward and backward ({how}); the "
            f"computed gradient would be silently wrong"
        )


def check_after_backward(node) -> None:
    """Check the gradients ``node``'s backward just accumulated."""
    rec = getattr(node, "_anomaly", None)
    for parent in node._prev:
        grad = parent.grad
        if grad is not None and not np.isfinite(grad).all():
            nan, inf = _nonfinite_counts(grad)
            what = rec.describe() if rec is not None else "an unrecorded op"
            raise AnomalyError(
                f"detect_anomaly: backward of {what} produced a gradient "
                f"with {nan} NaN / {inf} Inf values for an input of shape "
                f"{tuple(parent.data.shape)}"
            )


def annotate(tensor, label: str):
    """Tag ``tensor``'s provenance with a semantic label (hook point).

    Model code calls this at numerically delicate spots (attention
    weights, inverse-distance softmaxes, losses) so sanitizer errors name
    the construct, not just the raw op.  The graph tracer (``repro.nn.trace``)
    picks the label up too, so graphcheck diagnostics name the construct.
    Free when both modes are disabled.
    """
    if _tracer._ACTIVE is not None:
        _tracer._ACTIVE.label(tensor, label)
        tensor.name = label
    if _ENABLED:
        rec = getattr(tensor, "_anomaly", None)
        if rec is not None:
            rec.label = label
        tensor.name = label
        data = tensor.data
        if not np.isfinite(data).all():
            nan, inf = _nonfinite_counts(data)
            where = rec.describe() if rec is not None else f"tensor '{label}'"
            raise AnomalyError(
                f"detect_anomaly: '{label}' ({where}) holds {nan} NaN / "
                f"{inf} Inf values"
            )
    return tensor
