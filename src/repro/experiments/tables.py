"""Formatting experiment results into the paper's table/figure layouts."""

from __future__ import annotations

from collections import defaultdict

from ..baselines.registry import METHOD_LABELS
from .records import ResultRecord

__all__ = [
    "format_layer_sweep",
    "format_ablation",
    "format_coalition_series",
    "format_complexity",
    "format_trajectory_stats",
    "coalition_series",
]

_METRIC_ROWS = ("efficiency", "psi", "xi", "zeta", "beta")
_METRIC_NAMES = {"efficiency": "λ", "psi": "ψ", "xi": "ξ", "zeta": "ζ", "beta": "β"}


def _label(method: str) -> str:
    return METHOD_LABELS.get(method, method)


def format_layer_sweep(records: list[ResultRecord], which: str) -> str:
    """Table II layout: metric rows x layer-count columns."""
    by_layers = {r.extra["sweep"]["layers"]: r for r in records}
    layers = sorted(by_layers)
    header = f"{'metric':8s}" + "".join(f"  L{which.upper()}={n:<4d}" for n in layers)
    lines = [header]
    for metric in _METRIC_ROWS:
        row = f"{_METRIC_NAMES[metric]:8s}"
        for n in layers:
            row += f"  {by_layers[n].metrics[metric]:<7.4f}"
        lines.append(row)
    return "\n".join(lines)


def format_ablation(records: list[ResultRecord]) -> str:
    """Table III layout: method rows, metric columns."""
    header = f"{'method':16s}" + "".join(f"  {_METRIC_NAMES[m]:>7s}" for m in _METRIC_ROWS)
    lines = [header]
    for record in records:
        row = f"{_label(record.method):16s}"
        for metric in _METRIC_ROWS:
            row += f"  {record.metrics[metric]:7.4f}"
        lines.append(row)
    return "\n".join(lines)


def coalition_series(records: list[ResultRecord], axis: str,
                     metric: str = "efficiency") -> dict[str, list[tuple[int, float]]]:
    """Figs. 3-6 series: method -> [(x, metric)] along ``axis``."""
    series: dict[str, list[tuple[int, float]]] = defaultdict(list)
    for record in records:
        sweep = record.extra.get("sweep", {})
        if sweep.get("axis") != axis:
            continue
        series[record.method].append((sweep["value"], record.metrics[metric]))
    return {m: sorted(points) for m, points in series.items()}


def format_coalition_series(records: list[ResultRecord], axis: str,
                            metric: str = "efficiency") -> str:
    """Print one Fig. 3-6 panel as a text table (methods x sweep values)."""
    series = coalition_series(records, axis, metric)
    xs = sorted({x for pts in series.values() for x, _ in pts})
    axis_name = "U" if axis == "ugvs" else "V'"
    header = f"{'method':16s}" + "".join(f"  {axis_name}={x:<6d}" for x in xs)
    lines = [f"metric: {_METRIC_NAMES.get(metric, metric)}", header]
    for method, points in sorted(series.items()):
        lookup = dict(points)
        row = f"{_label(method):16s}"
        for x in xs:
            value = lookup.get(x)
            row += f"  {value:<8.4f}" if value is not None else "  " + "-" * 8
        lines.append(row)
    return "\n".join(lines)


def format_complexity(rows: list[dict]) -> str:
    """Table IV layout: per-step latency and parameter count per method."""
    header = f"{'method':16s}  {'ms/step':>9s}  {'parameters':>11s}"
    lines = [header]
    for row in rows:
        lines.append(f"{_label(row['method']):16s}  {row['ms_per_step']:9.3f}"
                     f"  {row['parameters']:11d}")
    return "\n".join(lines)


def format_trajectory_stats(stats_by_method: dict[str, dict]) -> str:
    """Fig. 7 quantification: coverage / overlap / travel per method."""
    header = f"{'method':16s}  {'coverage':>9s}  {'overlap':>8s}  {'travel_m':>10s}"
    lines = [header]
    for method, payload in stats_by_method.items():
        stats = payload["stats"] if "stats" in payload else payload
        lines.append(f"{_label(method):16s}  {stats['coverage']:9.3f}"
                     f"  {stats['overlap']:8.3f}  {stats['ugv_travel_metres']:10.1f}")
    return "\n".join(lines)
