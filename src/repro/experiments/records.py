"""Result records and JSON persistence for experiment outputs."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["ResultRecord", "save_records", "load_records"]


@dataclass
class ResultRecord:
    """One (method, campus, configuration) measurement."""

    method: str
    campus: str
    num_ugvs: int
    num_uavs_per_ugv: int
    metrics: dict[str, float]
    seed: int = 0
    preset: str = "smoke"
    extra: dict = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        return self.metrics.get("efficiency", 0.0)

    def as_dict(self) -> dict:
        return asdict(self)


def save_records(records: list[ResultRecord], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump([r.as_dict() for r in records], fh, indent=2)
    return path


def load_records(path: str | Path) -> list[ResultRecord]:
    with open(path) as fh:
        raw = json.load(fh)
    return [ResultRecord(**item) for item in raw]
