"""``repro.experiments`` — the Section-V evaluation harness."""

from .paper_values import QUALITATIVE_CLAIMS, TABLE2, TABLE3, TABLE4
from .presets import PRESETS, ScalePreset, get_preset
from .records import ResultRecord, load_records, save_records
from .runner import build_env, campus_cache_clear, get_campus, method_seed, run_method
from .stats import AggregateResult, aggregate_records, bootstrap_ci, run_method_seeds
from .telemetry import MovingAverage, TrainingLogger, read_jsonl_log
from .sweeps import (
    ablation_study,
    coalition_sweep,
    complexity_study,
    layer_sweep,
    trajectory_statistics,
    trajectory_study,
)
from .tables import (
    coalition_series,
    format_ablation,
    format_coalition_series,
    format_complexity,
    format_layer_sweep,
    format_trajectory_stats,
)

__all__ = [
    "ScalePreset",
    "PRESETS",
    "get_preset",
    "ResultRecord",
    "save_records",
    "load_records",
    "run_method",
    "method_seed",
    "run_method_seeds",
    "AggregateResult",
    "aggregate_records",
    "bootstrap_ci",
    "TrainingLogger",
    "MovingAverage",
    "read_jsonl_log",
    "build_env",
    "get_campus",
    "campus_cache_clear",
    "layer_sweep",
    "ablation_study",
    "coalition_sweep",
    "complexity_study",
    "trajectory_study",
    "trajectory_statistics",
    "format_layer_sweep",
    "format_ablation",
    "format_coalition_series",
    "format_complexity",
    "format_trajectory_stats",
    "coalition_series",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "QUALITATIVE_CLAIMS",
]
