"""Train-and-evaluate driver producing :class:`ResultRecord` rows."""

from __future__ import annotations

import inspect
import os
import time
import zlib
from pathlib import Path

import numpy as np

from ..baselines.registry import make_agent
from ..core.config import GARLConfig
from ..env.airground import AirGroundEnv
from ..env.vector import replica_seed
from ..maps.campus import CampusMap, build_campus
from ..maps.stop_graph import StopGraph, build_stop_graph
from ..obs.scope import active_profiler, scope as obs_scope
from .checkpoint import (
    GracefulInterrupt,
    TrainingCheckpointer,
    config_fingerprint,
    find_latest,
    load_training_checkpoint,
)
from .presets import ScalePreset, get_preset
from .records import ResultRecord
from .telemetry import TrainingLogger

__all__ = ["run_method", "run_training", "build_agent", "build_env",
           "campus_cache_clear", "get_campus", "method_seed", "replica_seed"]

# Campus construction is deterministic but not free; cache per (name, scale).
_CAMPUS_CACHE: dict[tuple[str, float], tuple[CampusMap, StopGraph]] = {}

if hasattr(os, "register_at_fork"):  # not available on all platforms
    # Rollout workers (repro.env.workers) receive their campus/stop graph
    # through the worker spec; a forked child must not alias the parent's
    # cached objects, so the cache is emptied on the child side of every
    # fork (spawned children start empty by construction).
    os.register_at_fork(after_in_child=_CAMPUS_CACHE.clear)


def get_campus(name: str, scale: float) -> tuple[CampusMap, StopGraph]:
    """Cached campus + stop graph (both are treated as immutable)."""
    key = (name, scale)
    if key not in _CAMPUS_CACHE:
        campus = build_campus(name, scale=scale)
        # Deliberate process-local cache of immutable values; listed as a
        # HOT site in the check-determinism shared-state map — workers
        # must rebuild it per process, never share it.
        _CAMPUS_CACHE[key] = (campus, build_stop_graph(campus))  # reprolint: disable=DT004
    return _CAMPUS_CACHE[key]


def campus_cache_clear() -> None:
    """Drop all cached campus/stop-graph pairs (test isolation hook)."""
    _CAMPUS_CACHE.clear()  # reprolint: disable=DT004


def method_seed(method: str, seed: int) -> int:
    """Derive a per-method seed so undertrained (near-uniform) policies do
    not share identical sampling streams and collapse to one trajectory.

    Vectorized collection derives env-replica seeds from this value via
    :func:`repro.env.replica_seed` — the per-method offsets live in
    ``[0, 1000)`` while replicas stride by a large prime, so no two
    (method, replica) pairs collide."""
    return seed + (zlib.crc32(method.encode()) % 1000)


def build_env(campus_name: str, preset: ScalePreset, num_ugvs: int,
              num_uavs_per_ugv: int, seed: int = 0) -> AirGroundEnv:
    """Construct an env for a (campus, preset, coalition, seed) choice."""
    campus, stops = get_campus(campus_name, preset.campus_scale)
    env_cfg = preset.env_config(num_ugvs, num_uavs_per_ugv)
    return AirGroundEnv(campus, env_cfg, stops=stops, seed=seed)


def build_agent(method: str, campus_name: str,
                preset: str | ScalePreset = "smoke", num_ugvs: int = 4,
                num_uavs_per_ugv: int = 2, seed: int = 0,
                garl_config: GARLConfig | None = None):
    """Construct the fully seeded agent exactly as training runs do.

    The single construction path shared by :func:`run_method`,
    :func:`run_training` and the determinism bisector's two-run setup —
    env seeding and the per-method config seed derivation live here so
    every consumer builds bit-identical agents from the same inputs.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    env = build_env(campus_name, preset_obj, num_ugvs, num_uavs_per_ugv, seed)
    config = (garl_config
              or preset_obj.garl_config()).replace(seed=method_seed(method, seed))
    return make_agent(method, env, config)


def run_method(method: str, campus_name: str, preset: str | ScalePreset = "smoke",
               num_ugvs: int = 4, num_uavs_per_ugv: int = 2, seed: int = 0,
               garl_config: GARLConfig | None = None,
               train_iterations: int | None = None,
               num_envs: int = 1, num_workers: int = 1) -> ResultRecord:
    """Train ``method`` on ``campus_name`` at ``preset`` scale and evaluate.

    Evaluation samples stochastically (greedy=False): at smoke training
    budgets the stochastic policy is the better-behaved estimator, and it
    is how the paper's own evaluation episodes are rolled.

    ``num_envs > 1`` collects training episodes from that many env
    replicas at once (replica k reseeds with ``replica_seed(method_seed,
    k)``); ``num_workers > 1`` shards those replicas over rollout worker
    processes (results are bitwise worker-count invariant).  Agents
    without vectorization support train sequentially.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    _check_workers(num_workers, num_envs)
    with obs_scope("setup"):
        agent = build_agent(method, campus_name, preset_obj, num_ugvs,
                            num_uavs_per_ugv, seed, garl_config)

    iterations = (train_iterations if train_iterations is not None
                  else preset_obj.train_iterations)
    sig = inspect.signature(agent.train).parameters
    train_kwargs = {}
    if num_envs > 1 and "num_envs" in sig:
        train_kwargs["num_envs"] = num_envs
    if num_workers > 1 and "num_workers" in sig:
        train_kwargs["num_workers"] = num_workers
    t_train = time.perf_counter()
    try:
        with obs_scope("train"):
            agent.train(iterations, preset_obj.episodes_per_iteration,
                        **train_kwargs)
        train_seconds = time.perf_counter() - t_train

        t_eval = time.perf_counter()
        snapshot = agent.evaluate(episodes=preset_obj.eval_episodes, greedy=False)
        eval_seconds = time.perf_counter() - t_eval
    finally:
        _close_agent(agent)

    return ResultRecord(
        method=method, campus=campus_name,
        num_ugvs=num_ugvs, num_uavs_per_ugv=num_uavs_per_ugv,
        metrics=snapshot.as_dict(), seed=seed, preset=preset_obj.name,
        extra={"train_seconds": round(train_seconds, 3),
               "eval_seconds": round(eval_seconds, 3)})


def _check_workers(num_workers: int, num_envs: int) -> None:
    """Fail fast on an unsatisfiable worker/replica combination."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if num_workers > max(1, num_envs):
        raise ValueError(f"num_workers={num_workers} needs at least as many "
                         f"env replicas, got num_envs={num_envs}")


def _close_agent(agent) -> None:
    """Release an agent's rollout workers, if it holds any."""
    close = getattr(agent, "close", None)
    if close is not None:
        close()


def run_training(method: str, campus_name: str,
                 preset: str | ScalePreset = "smoke",
                 num_ugvs: int = 4, num_uavs_per_ugv: int = 2, seed: int = 0,
                 garl_config: GARLConfig | None = None,
                 train_iterations: int | None = None, num_envs: int = 1,
                 num_workers: int = 1,
                 checkpoint_dir: str | Path | None = None,
                 save_every: int = 10, keep_last: int = 3,
                 resume: str | Path | None = None,
                 handle_signals: bool = True) -> tuple[ResultRecord, object]:
    """Fault-tolerant variant of :func:`run_method`.

    Identical seeding and training flow — without checkpoint options it
    produces exactly :func:`run_method`'s result — plus:

    * ``checkpoint_dir``: write full-training-state checkpoints (every
      ``save_every`` iterations, last-``keep_last`` + best-by-λ
      retention) and per-iteration telemetry to ``train.jsonl`` in that
      directory.
    * ``resume``: ``"latest"`` (resolve via the run directory's pointer)
      or a path to a specific checkpoint; the manifest's config
      fingerprint must match this invocation's configuration.  The
      telemetry log is rewound to the checkpoint's cursor, so the
      resumed file ends up bit-for-bit identical to an uninterrupted
      run's.
    * graceful SIGINT/SIGTERM: the in-flight iteration finishes, a
      resume-ready checkpoint is saved, and
      :class:`~repro.experiments.checkpoint.TrainingInterrupted`
      propagates (the CLI turns it into exit code
      :data:`~repro.experiments.checkpoint.RESUME_EXIT_CODE`).

    ``num_workers > 1`` shards the ``num_envs`` replicas over that many
    rollout worker processes.  The worker count is deliberately *not*
    part of the config fingerprint: collection is bitwise identical for
    every worker count, so a ``--workers 1`` checkpoint may resume with
    ``--workers 4`` (and vice versa) without breaking the byte-for-byte
    resume guarantee.

    Returns ``(record, agent)`` so callers can persist or further
    inspect the trained agent without retraining.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    _check_workers(num_workers, num_envs)
    # Resolve the per-method seeded config here too: the checkpoint
    # fingerprint below must hash exactly what the agent was built with.
    config = (garl_config
              or preset_obj.garl_config()).replace(seed=method_seed(method, seed))
    with obs_scope("setup"):
        agent = build_agent(method, campus_name, preset_obj, num_ugvs,
                            num_uavs_per_ugv, seed, config)

    total = (train_iterations if train_iterations is not None
             else preset_obj.train_iterations)
    fingerprint = config_fingerprint(
        {"method": method, "campus": campus_name, "preset": preset_obj.name,
         "num_ugvs": num_ugvs, "num_uavs_per_ugv": num_uavs_per_ugv,
         "seed": seed, "num_envs": num_envs, "total_iterations": total},
        config)

    checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
    telemetry = (TrainingLogger(checkpoint_dir / "train.jsonl")
                 if checkpoint_dir is not None else None)

    iterations_done = 0
    if resume is not None:
        if checkpoint_dir is None:
            raise ValueError("--resume requires a checkpoint directory")
        path = (find_latest(checkpoint_dir) if str(resume) == "latest"
                else Path(resume))
        manifest = load_training_checkpoint(path, agent,
                                            expect_fingerprint=fingerprint)
        iterations_done = int(manifest["iterations_completed"])
        telemetry.rewind(int(manifest["telemetry_cursor"]))
        # Restore the observability metrics registry, if one is live and
        # the checkpoint carried a snapshot (see TrainingCheckpointer's
        # extra_state hook): counters continue from the interrupted run.
        prof = active_profiler()
        metrics_state = (manifest.get("extra_state") or {}).get("metrics")
        if prof is not None and metrics_state:
            prof.metrics.load_state_dict(metrics_state)

    sig = inspect.signature(agent.train).parameters
    train_kwargs = {}
    if num_envs > 1 and "num_envs" in sig:
        train_kwargs["num_envs"] = num_envs
    if num_workers > 1 and "num_workers" in sig:
        train_kwargs["num_workers"] = num_workers
    if "total_iterations" in sig:
        train_kwargs["total_iterations"] = total

    interrupt = GracefulInterrupt() if (handle_signals and checkpoint_dir
                                        is not None) else None

    def _obs_extra_state() -> dict:
        prof = active_profiler()
        if prof is None:
            return {}
        return {"metrics": prof.metrics.state_dict()}

    checkpointer = None
    if checkpoint_dir is not None:
        checkpointer = TrainingCheckpointer(
            checkpoint_dir, agent, total_iterations=total,
            save_every=save_every, keep_last=keep_last,
            config_fingerprint=fingerprint,
            manifest_extra={"method": method, "campus": campus_name,
                            "preset": preset_obj.name, "seed": seed,
                            "num_ugvs": num_ugvs,
                            "num_uavs_per_ugv": num_uavs_per_ugv,
                            "num_envs": num_envs, "num_workers": num_workers},
            telemetry=telemetry, interrupt=interrupt,
            extra_state=_obs_extra_state)

    def callback(record) -> None:
        if telemetry is not None:
            telemetry(record)
        if checkpointer is not None:
            checkpointer(record)  # may raise TrainingInterrupted

    from contextlib import nullcontext

    t_train = time.perf_counter()
    try:
        with (interrupt if interrupt is not None else nullcontext()), \
                obs_scope("train"):
            agent.train(total - iterations_done,
                        preset_obj.episodes_per_iteration,
                        callback=callback if "callback" in sig else None,
                        **train_kwargs)
        train_seconds = time.perf_counter() - t_train

        t_eval = time.perf_counter()
        snapshot = agent.evaluate(episodes=preset_obj.eval_episodes, greedy=False)
        eval_seconds = time.perf_counter() - t_eval
    finally:
        # Tear rollout workers down on every exit (including the
        # interrupt path): the replica rng streams migrate into an
        # in-process vec env, so the returned agent stays usable.
        _close_agent(agent)

    record = ResultRecord(
        method=method, campus=campus_name,
        num_ugvs=num_ugvs, num_uavs_per_ugv=num_uavs_per_ugv,
        metrics=snapshot.as_dict(), seed=seed, preset=preset_obj.name,
        extra={"train_seconds": round(train_seconds, 3),
               "eval_seconds": round(eval_seconds, 3),
               "resumed_from_iteration": iterations_done})
    return record, agent
