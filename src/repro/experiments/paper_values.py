"""Reference numbers published in the paper, for shape comparison.

Absolute values are not expected to match (different compute scale,
synthetic campuses); the benchmarks compare *orderings and trends*
against these references and EXPERIMENTS.md records both sides.
"""

from __future__ import annotations

__all__ = ["TABLE2", "TABLE3", "TABLE4", "QUALITATIVE_CLAIMS"]

# Table II — efficiency λ vs layer counts (U=4, V'=2).
TABLE2 = {
    "kaist": {
        "mc": {1: 0.8280, 2: 0.9211, 3: 0.9970, 4: 0.9760, 5: 0.8665},
        "e": {1: 0.7215, 2: 0.9064, 3: 0.9970, 4: 0.9852, 5: 0.9487},
    },
    "ucla": {
        # UCLA λ rows (paper prints ψ/ξ/ζ/β; its λ row peaks at 3 as well —
        # 0.6137 at L=3 per Table III's UCLA GARL row).
        "mc": {3: 0.6137},
        "e": {3: 0.6137},
    },
}

# Table III — ablation (U=4, V'=2): λ, ψ, ξ, ζ, β.
TABLE3 = {
    "kaist": {
        "garl": {"efficiency": 0.9970, "psi": 0.6198, "xi": 0.6391, "zeta": 0.6760, "beta": 0.2786},
        "garl_wo_mc": {"efficiency": 0.7036, "psi": 0.4952, "xi": 0.5205, "zeta": 0.6575, "beta": 0.2530},
        "garl_wo_e": {"efficiency": 0.8119, "psi": 0.5303, "xi": 0.5548, "zeta": 0.6760, "beta": 0.2573},
        "garl_wo_mc_e": {"efficiency": 0.5810, "psi": 0.4478, "xi": 0.4742, "zeta": 0.6269, "beta": 0.2470},
    },
    "ucla": {
        "garl": {"efficiency": 0.6137, "psi": 0.4511, "xi": 0.4667, "zeta": 0.7244, "beta": 0.2613},
        "garl_wo_mc": {"efficiency": 0.4114, "psi": 0.3553, "xi": 0.3799, "zeta": 0.7039, "beta": 0.2426},
        "garl_wo_e": {"efficiency": 0.5080, "psi": 0.3721, "xi": 0.3898, "zeta": 0.7163, "beta": 0.2123},
        "garl_wo_mc_e": {"efficiency": 0.3396, "psi": 0.3200, "xi": 0.3343, "zeta": 0.7033, "beta": 0.2356},
    },
}

# Table IV — per-step time cost (ms) and GPU memory (MB).
TABLE4 = {
    "garl": {"kaist_ms": 0.553, "ucla_ms": 1.121, "kaist_mb": 935, "ucla_mb": 937},
    "gam": {"kaist_ms": 0.66, "ucla_ms": 1.167, "kaist_mb": 939, "ucla_mb": 945},
    "gat": {"kaist_ms": 0.493, "ucla_ms": 0.552, "kaist_mb": 813, "ucla_mb": 841},
    "cubicmap": {"kaist_ms": 1.023, "ucla_ms": 2.417, "kaist_mb": 1348, "ucla_mb": 1506},
    "aecomm": {"kaist_ms": 0.552, "ucla_ms": 0.786, "kaist_mb": 907, "ucla_mb": 943},
    "dgn": {"kaist_ms": 0.379, "ucla_ms": 0.523, "kaist_mb": 935, "ucla_mb": 937},
    "ic3net": {"kaist_ms": 0.688, "ucla_ms": 0.892, "kaist_mb": 975, "ucla_mb": 997},
    "maddpg": {"kaist_ms": 2.108, "ucla_ms": 3.892, "kaist_mb": 805, "ucla_mb": 836},
}

QUALITATIVE_CLAIMS = [
    "GARL outperforms all eight baselines on efficiency in both campuses.",
    "Efficiency vs U rises then falls (peak ~15 KAIST / ~20 UCLA at paper scale).",
    "Cooperation factor decreases as U grows and as V' grows.",
    "Ablation ordering: GARL > GARL w/o E > GARL w/o MC > GARL w/o MC,E.",
    "Three MC-GCN layers and three E-Comm layers are optimal (Table II).",
    "Random barely changes across V' sweeps; learned methods rise then fall.",
    "KAIST outperforms UCLA at small coalitions for every spatial method.",
]
