"""Full-training-state checkpoints with deterministic resume.

The invariant this subsystem enforces is **resume ≡ uninterrupted**: a
run killed at iteration *i* and resumed from its checkpoint reproduces
the uninterrupted run's trajectories, losses and telemetry bit-for-bit.
That requires capturing *everything* the training loop consumes:

* every policy's parameters (and, for MADDPG, target networks),
* optimiser state — Adam step counts and first/second moments,
* every rng stream: the trainer's sampling stream, the env's stream and
  each vec-env replica's stream (whose positions encode the
  ``replica_seed`` striding *and* the unseeded auto-reset continuations),
* the global iteration counter and schedule state, and
* the telemetry JSONL cursor, so a resumed run rewrites exactly the
  records the interrupted run would have written after the save point.

On-disk format (one directory per checkpoint)::

    <run-dir>/
        latest                  # pointer: name of the newest checkpoint
        iter_000010/
            state.npz           # all array leaves, path-keyed
            manifest.json       # schema version, fingerprints, counters,
                                # and the JSON tree with array references

Writes are atomic (temp file + fsync + rename; the checkpoint directory
itself is staged and renamed into place), so a crash mid-save can never
corrupt the latest resumable state.  ``load_training_checkpoint``
validates the manifest (schema version, config fingerprint) before
touching the agent, and parameter states are additionally diffed against
``named_parameters()`` upfront by the agents' ``load_state_dict``.

Retention keeps the last *k* periodic checkpoints plus the
best-by-``λ`` (collection efficiency) one.  :class:`GracefulInterrupt`
turns SIGINT/SIGTERM into "finish the in-flight iteration, save, exit
with :data:`RESUME_EXIT_CODE`" — the CI interrupt-and-resume gate drives
exactly this path.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import signal
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path

import numpy as np

from ..nn.serialize import atomic_savez, atomic_write_bytes, state_digest

__all__ = [
    "SCHEMA_VERSION",
    "RESUME_EXIT_CODE",
    "CheckpointError",
    "TrainingInterrupted",
    "GracefulInterrupt",
    "TrainingCheckpointer",
    "flatten_state",
    "unflatten_state",
    "config_fingerprint",
    "code_hashes",
    "write_checkpoint",
    "read_checkpoint",
    "read_manifest",
    "load_training_checkpoint",
    "find_latest",
]

SCHEMA_VERSION = 1

# Exit status of a run that was interrupted, saved a resume-ready
# checkpoint and shut down cleanly (EX_TEMPFAIL: "try again later").
RESUME_EXIT_CODE = 75

_ARRAY_REF = "__array__"
_LATEST_FILE = "latest"
_MANIFEST_FILE = "manifest.json"
_STATE_FILE = "state.npz"


class CheckpointError(RuntimeError):
    """A checkpoint failed manifest validation (schema/fingerprint)."""


class TrainingInterrupted(Exception):
    """Raised after an interrupt-triggered save: the run is resumable.

    Carries where the resume-ready state lives and how far training got;
    the CLI converts this into :data:`RESUME_EXIT_CODE`.
    """

    def __init__(self, checkpoint_path: Path, iterations_completed: int,
                 signal_name: str):
        self.checkpoint_path = Path(checkpoint_path)
        self.iterations_completed = iterations_completed
        self.signal_name = signal_name
        super().__init__(
            f"training interrupted by {signal_name} after iteration "
            f"{iterations_completed - 1}; resume-ready checkpoint at "
            f"{checkpoint_path}")


# ----------------------------------------------------------------------
# State tree <-> (arrays, JSON) flattening
# ----------------------------------------------------------------------

def flatten_state(state: dict) -> tuple[dict[str, np.ndarray], dict]:
    """Split a nested state tree into array leaves + a JSON-able mirror.

    Array leaves are collected under ``/``-joined path keys; the returned
    JSON tree holds ``{"__array__": <key>}`` references in their place,
    with numpy scalars coerced to built-ins.
    """
    arrays: dict[str, np.ndarray] = {}

    def walk(node, path: str):
        if isinstance(node, np.ndarray):
            arrays[path] = node
            return {_ARRAY_REF: path}
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                if not isinstance(key, str):
                    raise TypeError(f"state keys must be strings, got {key!r}")
                out[key] = walk(value, f"{path}/{key}" if path else key)
            return out
        if isinstance(node, (list, tuple)):
            return [walk(v, f"{path}/{i}") for i, v in enumerate(node)]
        if isinstance(node, np.integer):
            return int(node)
        if isinstance(node, np.floating):
            return float(node)
        if isinstance(node, np.bool_):
            return bool(node)
        return node

    return arrays, walk(state, "")


def unflatten_state(jsonable: dict, arrays: dict[str, np.ndarray]) -> dict:
    """Inverse of :func:`flatten_state`."""

    def walk(node):
        if isinstance(node, dict):
            if set(node) == {_ARRAY_REF}:
                return arrays[node[_ARRAY_REF]]
            return {k: walk(v) for k, v in node.items()}
        if isinstance(node, list):
            return [walk(v) for v in node]
        return node

    return walk(jsonable)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def config_fingerprint(*parts) -> str:
    """Stable digest of run-defining configuration.

    Accepts dataclasses, dicts and plain scalars; the resume path
    compares this against the manifest so a checkpoint can never be
    silently resumed under different hyperparameters.
    """

    def jsonify(obj):
        if is_dataclass(obj) and not isinstance(obj, type):
            return jsonify(asdict(obj))
        if isinstance(obj, dict):
            return {str(k): jsonify(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
        if isinstance(obj, (list, tuple)):
            return [jsonify(v) for v in obj]
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        return obj

    blob = json.dumps([jsonify(p) for p in parts], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def code_hashes() -> dict[str, str]:
    """Digest of the ``repro`` package sources, recorded in the manifest.

    A mismatch on load is reported as a warning (not an error): resuming
    under changed code is legitimate, but the operator should know the
    bit-for-bit guarantee no longer formally holds.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode())
        digest.update(path.read_bytes())
    return {"repro": digest.hexdigest()[:16]}


# ----------------------------------------------------------------------
# Reading / writing one checkpoint directory
# ----------------------------------------------------------------------

def write_checkpoint(directory: str | Path, state: dict,
                     manifest: dict | None = None) -> Path:
    """Write a full-state checkpoint directory atomically.

    The directory is staged under a dotted temp name and renamed into
    place, so observers (and crashes) only ever see complete
    checkpoints.
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    staging = directory.parent / f".{directory.name}.staging"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        arrays, jsonable = flatten_state(state)
        atomic_savez(staging / _STATE_FILE, arrays)
        full_manifest = {
            "schema_version": SCHEMA_VERSION,
            "created_unix": time.time(),
            "code_hashes": code_hashes(),
            # Byte-exact digest of the full state tree: two checkpoints
            # from same-seed runs at the same iteration must carry equal
            # digests, so `repro check-determinism` (and humans with two
            # manifests) can compare runs without unpacking arrays.
            "state_digest": state_digest(state),
            **(manifest or {}),
            "state": jsonable,
        }
        atomic_write_bytes(staging / _MANIFEST_FILE,
                           json.dumps(full_manifest, indent=1).encode("utf-8"))
        if directory.exists():
            old = directory.parent / f".{directory.name}.old"
            if old.exists():
                shutil.rmtree(old)
            os.replace(directory, old)
            os.replace(staging, directory)
            shutil.rmtree(old)
        else:
            os.replace(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return directory


def read_manifest(directory: str | Path) -> dict:
    """Load and schema-check a checkpoint's sidecar manifest."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_FILE
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {directory} has schema version {version!r}; this "
            f"build reads version {SCHEMA_VERSION}")
    return manifest


def read_checkpoint(directory: str | Path) -> tuple[dict, dict]:
    """Load a checkpoint directory; returns ``(state, manifest)``."""
    directory = Path(directory)
    manifest = read_manifest(directory)
    with np.load(directory / _STATE_FILE) as data:
        arrays = {key: data[key] for key in data.files}
    state = unflatten_state(manifest["state"], arrays)
    return state, manifest


def load_training_checkpoint(directory: str | Path, agent,
                             expect_fingerprint: str | None = None) -> dict:
    """Validate + load a checkpoint into ``agent``; returns the manifest.

    ``expect_fingerprint`` (from :func:`config_fingerprint` over the
    resuming run's configuration) must match the manifest's, so resuming
    under different hyperparameters fails loudly before any state moves.
    A code-hash drift is reported as a warning only.
    """
    import sys

    directory = Path(directory)
    state, manifest = read_checkpoint(directory)
    stored = manifest.get("config_fingerprint")
    if expect_fingerprint is not None and stored is not None and stored != expect_fingerprint:
        raise CheckpointError(
            f"checkpoint {directory} was written under config fingerprint "
            f"{stored}, but this run's configuration fingerprints to "
            f"{expect_fingerprint}; refusing to resume under different "
            f"hyperparameters")
    current_hashes = code_hashes()
    if manifest.get("code_hashes") not in (None, current_hashes):
        print(f"warning: checkpoint {directory} was written by different "
              f"code ({manifest['code_hashes']} vs {current_hashes}); "
              f"resume determinism is no longer guaranteed", file=sys.stderr)
    agent.load_state_dict(state)
    return manifest


def find_latest(run_dir: str | Path) -> Path:
    """Resolve the newest checkpoint in a run directory.

    Follows the ``latest`` pointer when present (it is updated after
    every successful save), falling back to the highest-numbered
    ``iter_*`` directory.
    """
    run_dir = Path(run_dir)
    pointer = run_dir / _LATEST_FILE
    if pointer.exists():
        candidate = run_dir / pointer.read_text().strip()
        if (candidate / _MANIFEST_FILE).exists():
            return candidate
    candidates = sorted(p for p in run_dir.glob("iter_*")
                        if (p / _MANIFEST_FILE).exists())
    if not candidates:
        raise CheckpointError(f"no resumable checkpoint found in {run_dir}")
    return candidates[-1]


# ----------------------------------------------------------------------
# Signal handling
# ----------------------------------------------------------------------

class GracefulInterrupt:
    """Context manager turning SIGINT/SIGTERM into a polite flag.

    The first signal sets :attr:`triggered`; the training callback
    checks it after each completed iteration, saves and raises
    :class:`TrainingInterrupted`.  A second signal aborts immediately
    (``KeyboardInterrupt``) for operators who really mean it.
    """

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)):
        self.signals = tuple(signals)
        self.triggered: str | None = None
        self._previous: dict = {}
        self.installed = False

    def __enter__(self) -> "GracefulInterrupt":
        try:
            for sig in self.signals:
                self._previous[sig] = signal.signal(sig, self._handle)
            self.installed = True
        except ValueError:
            # Not the main thread: degrade to a plain (never-set) flag.
            self._previous.clear()
        return self

    def _handle(self, signum, frame) -> None:
        if self.triggered is not None:
            raise KeyboardInterrupt
        self.triggered = signal.Signals(signum).name

    def __exit__(self, *exc) -> bool:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()
        self.installed = False
        return False


# ----------------------------------------------------------------------
# Periodic saving + retention
# ----------------------------------------------------------------------

class TrainingCheckpointer:
    """Train-loop callback: periodic full-state saves with retention.

    Saves every ``save_every`` completed iterations (and at the final
    iteration, and immediately when ``interrupt`` has triggered), keeps
    the last ``keep_last`` periodic checkpoints plus the best one by
    ``metric`` (λ, collection efficiency, by default), and maintains the
    ``latest`` pointer.  On construction it rescans the run directory,
    so retention and best-tracking continue correctly across resumes.

    Chain it *after* the telemetry logger so the recorded
    ``telemetry_cursor`` includes the current iteration's record.
    """

    def __init__(self, run_dir: str | Path, agent, *,
                 total_iterations: int, save_every: int = 10,
                 keep_last: int = 3, metric: str = "efficiency",
                 config_fingerprint: str | None = None,
                 manifest_extra: dict | None = None,
                 telemetry=None,
                 interrupt: GracefulInterrupt | None = None,
                 extra_state=None):
        if save_every < 1 or keep_last < 1:
            raise ValueError("save_every and keep_last must be >= 1")
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.agent = agent
        self.total_iterations = int(total_iterations)
        self.save_every = int(save_every)
        self.keep_last = int(keep_last)
        self.metric = metric
        self.config_fingerprint = config_fingerprint
        self.manifest_extra = dict(manifest_extra or {})
        self.telemetry = telemetry
        self.interrupt = interrupt
        # Optional zero-arg callable evaluated at each save; its JSON-able
        # return value lands in the manifest under "extra_state" (this is
        # how the repro.obs metrics registry rides along with checkpoints).
        self.extra_state = extra_state
        self.last_saved: Path | None = None
        self.best_path: Path | None = None
        self.best_value = -float("inf")
        self._saved: list[Path] = []
        self._rescan()

    # ------------------------------------------------------------------
    def _rescan(self) -> None:
        """Adopt checkpoints already on disk (the resume case)."""
        for path in sorted(self.run_dir.glob("iter_*")):
            if not (path / _MANIFEST_FILE).exists():
                continue
            self._saved.append(path)
            try:
                manifest = read_manifest(path)
            except CheckpointError:
                continue
            value = manifest.get("metric_value")
            if isinstance(value, (int, float)) and value > self.best_value:
                self.best_value = float(value)
                self.best_path = path
        if self._saved:
            self.last_saved = self._saved[-1]

    # ------------------------------------------------------------------
    @staticmethod
    def _record_fields(record) -> tuple[int, dict]:
        if hasattr(record, "metrics"):
            return int(record.iteration), dict(record.metrics)
        return int(record.get("iteration", 0)), dict(record.get("metrics", {}))

    def __call__(self, record) -> None:
        iteration, metrics = self._record_fields(record)
        completed = iteration + 1
        interrupted = self.interrupt is not None and self.interrupt.triggered
        due = (completed % self.save_every == 0
               or completed >= self.total_iterations)
        if due or interrupted:
            self.save(completed, metrics)
        if interrupted:
            raise TrainingInterrupted(self.last_saved, completed,
                                      self.interrupt.triggered)

    # ------------------------------------------------------------------
    def save(self, iterations_completed: int, metrics: dict | None = None) -> Path:
        """Write ``iter_NNNNNN`` now; update pointer, best and retention."""
        metrics = metrics or {}
        value = metrics.get(self.metric)
        cursor = (self.telemetry.count if self.telemetry is not None
                  else iterations_completed)
        path = self.run_dir / f"iter_{iterations_completed:06d}"
        manifest = {
            "iterations_completed": iterations_completed,
            "total_iterations": self.total_iterations,
            "telemetry_cursor": int(cursor),
            "config_fingerprint": self.config_fingerprint,
            "best_metric": self.metric,
            "metric_value": value,
            **self.manifest_extra,
        }
        if self.extra_state is not None:
            manifest["extra_state"] = self.extra_state()
        write_checkpoint(path, self.agent.state_dict(), manifest)
        if path not in self._saved:
            self._saved.append(path)
        self.last_saved = path
        atomic_write_bytes(self.run_dir / _LATEST_FILE,
                           (path.name + "\n").encode())
        if isinstance(value, (int, float)) and value > self.best_value:
            self.best_value = float(value)
            self.best_path = path
        self._prune()
        return path

    def _prune(self) -> None:
        """Keep the last ``keep_last`` periodic checkpoints + the best.

        The best-by-metric checkpoint is retained whatever its age (it
        does not count against ``keep_last``); so is the newest one (it
        backs the ``latest`` pointer).
        """
        periodic = [p for p in self._saved if p != self.best_path]
        excess = len(periodic) - self.keep_last
        for path in periodic:
            if excess <= 0:
                break
            if path == self.last_saved:
                continue
            shutil.rmtree(path, ignore_errors=True)
            self._saved.remove(path)
            excess -= 1

    def available(self) -> list[Path]:
        """Checkpoints currently on disk (oldest first)."""
        return list(self._saved)
