"""Multi-seed aggregation and bootstrap confidence intervals.

The paper reports single numbers; at this reproduction's CPU scale
individual runs are noisy, so the harness can repeat every (method,
configuration) over several seeds and report mean ± a bootstrap CI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .records import ResultRecord

__all__ = ["AggregateResult", "aggregate_records", "bootstrap_ci", "run_method_seeds"]

_METRICS = ("efficiency", "psi", "xi", "zeta", "beta")


@dataclass(frozen=True)
class AggregateResult:
    """Mean / std / CI of one metric over repeated runs."""

    metric: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:
        return (f"{self.metric}: {self.mean:.4f} ± {self.std:.4f} "
                f"[{self.ci_low:.4f}, {self.ci_high:.4f}] (n={self.n})")


def bootstrap_ci(values, confidence: float = 0.95, resamples: int = 2000,
                 seed: int = 0) -> tuple[float, float]:
    """Percentile bootstrap CI of the mean."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if values.size == 1:
        return float(values[0]), float(values[0])
    rng = np.random.default_rng(seed)
    draws = rng.choice(values, size=(resamples, values.size), replace=True)
    means = draws.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


def aggregate_records(records: list[ResultRecord],
                      confidence: float = 0.95) -> dict[str, AggregateResult]:
    """Aggregate repeated runs of the *same* configuration.

    All records must share method/campus/coalition; differing seeds are
    the repetitions being averaged.
    """
    if not records:
        raise ValueError("no records to aggregate")
    key = (records[0].method, records[0].campus,
           records[0].num_ugvs, records[0].num_uavs_per_ugv)
    for record in records:
        other = (record.method, record.campus, record.num_ugvs, record.num_uavs_per_ugv)
        if other != key:
            raise ValueError(f"mixed configurations: {other} vs {key}")
    out = {}
    for metric in _METRICS:
        values = np.array([r.metrics[metric] for r in records])
        low, high = bootstrap_ci(values, confidence)
        out[metric] = AggregateResult(metric, float(values.mean()),
                                      float(values.std()), low, high, len(values))
    return out


def run_method_seeds(method: str, campus: str, preset, seeds,
                     num_ugvs: int = 4, num_uavs_per_ugv: int = 2,
                     **kwargs) -> tuple[list[ResultRecord], dict[str, AggregateResult]]:
    """Run one configuration over several seeds; return records + aggregate."""
    from .runner import run_method

    records = [run_method(method, campus, preset, num_ugvs=num_ugvs,
                          num_uavs_per_ugv=num_uavs_per_ugv, seed=int(s), **kwargs)
               for s in seeds]
    return records, aggregate_records(records)
