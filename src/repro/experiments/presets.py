"""Experiment scale presets.

The paper trains on 8 GPUs; this reproduction exposes the same experiment
definitions at three scales so the full pipeline stays runnable on one
CPU.  ``smoke`` drives tests and benchmarks; ``small``/``paper`` raise
fidelity when more compute is available.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import GARLConfig, PPOConfig
from ..env.config import EnvConfig

__all__ = ["ScalePreset", "PRESETS", "get_preset"]


@dataclass(frozen=True)
class ScalePreset:
    """One runnable scale for every experiment."""

    name: str
    campus_scale: float  # miniaturisation of the campus map
    episode_len: int  # T
    train_iterations: int  # M
    episodes_per_iteration: int
    eval_episodes: int
    hidden_dim: int
    ppo_epochs: int
    minibatch_size: int

    def env_config(self, num_ugvs: int = 4, num_uavs_per_ugv: int = 2) -> EnvConfig:
        return EnvConfig(num_ugvs=num_ugvs, num_uavs_per_ugv=num_uavs_per_ugv,
                         episode_len=self.episode_len)

    def garl_config(self, **overrides) -> GARLConfig:
        base = GARLConfig(hidden_dim=self.hidden_dim,
                          ppo=PPOConfig(epochs=self.ppo_epochs,
                                        minibatch_size=self.minibatch_size))
        return base.replace(**overrides) if overrides else base


PRESETS = {
    # CI / benchmark scale: minutes for the full table set.
    "smoke": ScalePreset("smoke", campus_scale=0.3, episode_len=30,
                         train_iterations=3, episodes_per_iteration=1,
                         eval_episodes=2, hidden_dim=16, ppo_epochs=2,
                         minibatch_size=32),
    # Overnight-on-a-laptop scale.
    "small": ScalePreset("small", campus_scale=0.6, episode_len=60,
                         train_iterations=30, episodes_per_iteration=2,
                         eval_episodes=4, hidden_dim=32, ppo_epochs=4,
                         minibatch_size=64),
    # The paper's setting (full campuses, T=100).
    "paper": ScalePreset("paper", campus_scale=1.0, episode_len=100,
                         train_iterations=200, episodes_per_iteration=4,
                         eval_episodes=8, hidden_dim=64, ppo_epochs=4,
                         minibatch_size=64),
}


def get_preset(name: str) -> ScalePreset:
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    return PRESETS[name]
