"""Training telemetry: JSONL/CSV logging and moving-average trackers.

``TrainingLogger`` plugs into any agent's ``train(callback=...)`` hook and
persists one line per iteration, so long runs can be inspected (or
resumed decisions made) without holding histories in memory.
"""

from __future__ import annotations

import csv
import json
import math
import warnings
from collections import deque
from pathlib import Path

__all__ = ["TrainingLogger", "MovingAverage", "read_jsonl_log"]


class MovingAverage:
    """Fixed-window moving average with O(1) updates."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._values: deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def update(self, value: float) -> float:
        """Fold one observation in; returns the updated average."""
        if len(self._values) == self.window:
            self._sum -= self._values[0]
        self._values.append(float(value))
        self._sum += float(value)
        return self.value

    @property
    def value(self) -> float:
        """Current average over the window (0.0 before any update)."""
        if not self._values:
            return 0.0
        return self._sum / len(self._values)

    def __len__(self) -> int:
        return len(self._values)


class TrainingLogger:
    """Writes per-iteration training records to JSONL (and optional CSV).

    Usage::

        logger = TrainingLogger(run_dir / "train.jsonl")
        agent.train(iterations=100, callback=logger)
        print(logger.smoothed("efficiency"))
    """

    def __init__(self, jsonl_path: str | Path, csv_path: str | Path | None = None,
                 window: int = 10):
        self.jsonl_path = Path(jsonl_path)
        self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        self.csv_path = Path(csv_path) if csv_path else None
        self._csv_writer = None
        self._csv_file = None
        self._averages: dict[str, MovingAverage] = {}
        self.window = window
        self.count = 0
        self._warned_nonfinite = False

    # Both GARL's TrainRecord objects and MADDPG's plain dicts arrive here.
    def __call__(self, record) -> None:
        if hasattr(record, "metrics"):
            payload = {"iteration": getattr(record, "iteration", self.count),
                       **{f"metric_{k}": v for k, v in record.metrics.items()},
                       **{f"loss_{k}": v for k, v in getattr(record, "losses", {}).items()}}
        else:
            payload = {"iteration": record.get("iteration", self.count)}
            payload.update({f"metric_{k}": v for k, v in record.get("metrics", {}).items()})
            payload.update({f"loss_{k}": v for k, v in record.get("losses", {}).items()})
        self._write(payload)
        self.count += 1

    def _write(self, payload: dict) -> None:
        payload = self._drop_nonfinite(payload)
        with open(self.jsonl_path, "a") as fh:
            fh.write(json.dumps(payload) + "\n")
        if self.csv_path is not None:
            first = not self.csv_path.exists()
            with open(self.csv_path, "a", newline="") as fh:
                writer = csv.DictWriter(fh, fieldnames=sorted(payload))
                if first:
                    writer.writeheader()
                writer.writerow(payload)
        for key, value in payload.items():
            if key.startswith("metric_") and isinstance(value, (int, float)):
                name = key[len("metric_"):]
                self._averages.setdefault(name, MovingAverage(self.window)).update(value)

    def _drop_nonfinite(self, payload: dict) -> dict:
        """Replace NaN/±inf values with ``None`` (JSON ``null``).

        ``json.dumps`` would happily emit bare ``NaN``/``Infinity``
        tokens, which are not JSON and break every downstream consumer
        of ``train.jsonl``.  The substitution warns once per logger —
        a non-finite metric usually means training just diverged.
        """
        if not any(isinstance(v, float) and not math.isfinite(v)
                   for v in payload.values()):
            return payload
        clean = {}
        for key, value in payload.items():
            if isinstance(value, float) and not math.isfinite(value):
                if not self._warned_nonfinite:
                    self._warned_nonfinite = True
                    warnings.warn(
                        f"TrainingLogger: non-finite value {value!r} for "
                        f"{key!r} recorded as null (further occurrences "
                        f"will be silent)", RuntimeWarning, stacklevel=3)
                clean[key] = None
            else:
                clean[key] = value
        return clean

    def smoothed(self, metric: str) -> float:
        """Moving average of a metric over the last ``window`` iterations."""
        if metric not in self._averages:
            raise KeyError(f"no telemetry recorded for metric {metric!r}")
        return self._averages[metric].value

    def rewind(self, count: int) -> int:
        """Truncate the log to its first ``count`` records (resume path).

        A run that crashed *after* a checkpoint may have appended records
        the resumed run will re-produce; cutting the log back to the
        checkpoint's telemetry cursor keeps the resumed file bit-for-bit
        identical to an uninterrupted run's.  Raw JSONL lines are kept
        verbatim (no re-serialisation); the CSV mirror, when present, is
        truncated to the same records; moving averages are rebuilt from
        the surviving tail.  Returns the number of records kept.
        """
        from ..nn.serialize import atomic_write_bytes

        count = max(0, int(count))
        lines: list[str] = []
        if self.jsonl_path.exists():
            with open(self.jsonl_path) as fh:
                lines = [line for line in fh if line.strip()]
        if count > len(lines):
            raise ValueError(
                f"telemetry cursor {count} is beyond the {len(lines)} "
                f"records in {self.jsonl_path}")
        kept = lines[:count]
        atomic_write_bytes(self.jsonl_path, "".join(kept).encode("utf-8"))
        if self.csv_path is not None and self.csv_path.exists():
            with open(self.csv_path, newline="") as fh:
                csv_lines = fh.readlines()
            atomic_write_bytes(self.csv_path,
                               "".join(csv_lines[:count + 1]).encode("utf-8"))
        self._averages = {}
        for line in kept[-self.window:]:
            payload = json.loads(line)
            for key, value in payload.items():
                if key.startswith("metric_") and isinstance(value, (int, float)):
                    name = key[len("metric_"):]
                    self._averages.setdefault(name, MovingAverage(self.window)).update(value)
        self.count = count
        return count


def read_jsonl_log(path: str | Path) -> list[dict]:
    """Load a JSONL training log back into memory."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
