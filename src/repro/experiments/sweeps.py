"""Experiment definitions for every table and figure in Section V.

Each function returns plain :class:`ResultRecord` lists (or dicts for the
non-metric experiments) that ``repro.experiments.tables`` can format the
way the paper prints them.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines.registry import make_agent
from ..core.config import GARLConfig
from ..core.ippo import run_episode
from ..nn import no_grad
from .presets import ScalePreset, get_preset
from .records import ResultRecord
from .runner import build_env, method_seed, run_method

__all__ = [
    "layer_sweep",
    "ablation_study",
    "coalition_sweep",
    "complexity_study",
    "trajectory_study",
    "trajectory_statistics",
]


def layer_sweep(campus: str, which: str = "mc", layers: tuple[int, ...] = (1, 2, 3, 4, 5),
                preset: str | ScalePreset = "smoke", seed: int = 0) -> list[ResultRecord]:
    """Table II: efficiency vs number of MC-GCN (``which='mc'``) or
    E-Comm (``which='e'``) layers, with U=4, V'=2."""
    if which not in ("mc", "e"):
        raise ValueError("which must be 'mc' or 'e'")
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    records = []
    for count in layers:
        overrides = {"mc_gcn_layers": count} if which == "mc" else {"ecomm_layers": count}
        config = preset_obj.garl_config(**overrides)
        record = run_method("garl", campus, preset_obj, num_ugvs=4, num_uavs_per_ugv=2,
                            seed=seed, garl_config=config)
        record.extra["sweep"] = {"which": which, "layers": count}
        records.append(record)
    return records


def ablation_study(campus: str, preset: str | ScalePreset = "smoke",
                   seed: int = 0) -> list[ResultRecord]:
    """Table III: GARL vs w/o MC vs w/o E vs w/o both (U=4, V'=2)."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    return [
        run_method(method, campus, preset_obj, num_ugvs=4, num_uavs_per_ugv=2, seed=seed)
        for method in ("garl", "garl_wo_mc", "garl_wo_e", "garl_wo_mc_e")
    ]


def coalition_sweep(campus: str, methods: tuple[str, ...],
                    ugv_counts: tuple[int, ...] = (2, 4, 6),
                    uav_counts: tuple[int, ...] = (1, 2, 3),
                    preset: str | ScalePreset = "smoke", seed: int = 0) -> list[ResultRecord]:
    """Figs. 3-6: metrics vs number of UGVs (V'=2) and vs UAVs/UGV (U=4).

    The paper sweeps U in 2..30 and V' in 1..5 at full scale; pass larger
    tuples to widen the sweep.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    records = []
    for method in methods:
        for u in ugv_counts:
            rec = run_method(method, campus, preset_obj, num_ugvs=u,
                             num_uavs_per_ugv=2, seed=seed)
            rec.extra["sweep"] = {"axis": "ugvs", "value": u}
            records.append(rec)
        for v in uav_counts:
            rec = run_method(method, campus, preset_obj, num_ugvs=4,
                             num_uavs_per_ugv=v, seed=seed)
            rec.extra["sweep"] = {"axis": "uavs", "value": v}
            records.append(rec)
    return records


def complexity_study(campus: str, methods: tuple[str, ...],
                     preset: str | ScalePreset = "smoke", seed: int = 0,
                     repeats: int = 20) -> list[dict]:
    """Table IV: per-timeslot UGV inference latency and model size.

    The paper reports GPU memory; without a GPU the comparable budget
    figure is parameter count (reported alongside measured CPU latency).
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    rows = []
    for method in methods:
        env = build_env(campus, preset_obj, num_ugvs=4, num_uavs_per_ugv=2, seed=seed)
        agent = make_agent(method, env, preset_obj.garl_config().replace(
            seed=method_seed(method, seed)))
        res = env.reset()
        policy = agent.ugv_policy
        begin = getattr(policy, "begin_episode", None)
        if begin is not None:
            begin()
        with no_grad():
            policy(res.ugv_observations)  # warm-up
            start = time.perf_counter()
            for _ in range(repeats):
                policy(res.ugv_observations)
            elapsed = (time.perf_counter() - start) / repeats
        params = policy.num_parameters() if hasattr(policy, "num_parameters") else 0
        rows.append({"method": method, "campus": campus,
                     "ms_per_step": elapsed * 1000.0 / env.config.num_ugvs,
                     "parameters": int(params)})
    return rows


def trajectory_study(campus: str, methods: tuple[str, ...],
                     preset: str | ScalePreset = "smoke", seed: int = 0,
                     train_iterations: int | None = None) -> dict[str, dict]:
    """Fig. 7: movement traces of UGV-UAV coalitions (U=4, V'=2).

    Returns per-method traces plus summary statistics (coverage, overlap,
    travel) that quantify what the paper shows visually.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    out: dict[str, dict] = {}
    for method in methods:
        env = build_env(campus, preset_obj, num_ugvs=4, num_uavs_per_ugv=2, seed=seed)
        agent = make_agent(method, env, preset_obj.garl_config().replace(
            seed=method_seed(method, seed)))
        iters = train_iterations if train_iterations is not None else preset_obj.train_iterations
        agent.train(iters, preset_obj.episodes_per_iteration)
        trace = agent.rollout_trace(greedy=False, seed=seed)
        out[method] = {"trace": trace,
                       "stats": trajectory_statistics(trace, env)}
    return out


def trajectory_statistics(trace: list[dict], env) -> dict[str, float]:
    """Quantify a Fig.-7 trace: stop coverage, inter-UGV overlap, travel."""
    stops = env.stops
    num_ugvs = env.config.num_ugvs
    visited: list[set[int]] = [set() for _ in range(num_ugvs)]
    travel = 0.0
    prev = None
    for snap in trace:
        positions = snap["ugv_positions"]
        for u in range(num_ugvs):
            visited[u].add(stops.nearest_stop(positions[u]))
        if prev is not None:
            travel += float(np.linalg.norm(positions - prev, axis=-1).sum())
        prev = positions
    all_visited = set().union(*visited) if visited else set()
    pair_overlap = 0
    pairs = 0
    # Post-hoc trajectory analysis (once per study, not per step); the
    # all-pairs overlap is the statistic itself.
    for a in range(num_ugvs):  # reprolint: disable=PF004
        for b in range(a + 1, num_ugvs):
            pairs += 1
            union = len(visited[a] | visited[b])
            if union:
                pair_overlap += len(visited[a] & visited[b]) / union
    return {
        "coverage": len(all_visited) / max(stops.num_stops, 1),
        "overlap": pair_overlap / max(pairs, 1),
        "ugv_travel_metres": travel,
        "stops_visited": len(all_visited),
    }
