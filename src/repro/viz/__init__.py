"""``repro.viz`` — dependency-free SVG / ASCII rendering of campuses,
trajectories (Fig. 7), line charts (Figs. 3-6) and data heatmaps."""

from .charts import SERIES_COLOURS, line_chart
from .render import ascii_heatmap, render_campus, render_trajectories
from .svg import SVGCanvas

__all__ = ["SVGCanvas", "render_campus", "render_trajectories",
           "ascii_heatmap", "line_chart", "SERIES_COLOURS"]
