"""SVG line charts — regenerates the paper's Fig. 3-6 panels visually.

No plotting dependency: builds on :class:`repro.viz.svg.SVGCanvas`'s
pixel-space primitives.
"""

from __future__ import annotations

from .svg import SVGCanvas

__all__ = ["line_chart", "SERIES_COLOURS"]

SERIES_COLOURS = ("#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e",
                  "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf")


def line_chart(series: dict[str, list[tuple[float, float]]], title: str = "",
               x_label: str = "", y_label: str = "", pixels: int = 520,
               height: int = 360) -> SVGCanvas:
    """Render named (x, y) series as an SVG line chart with markers.

    Parameters
    ----------
    series:
        Mapping from series name to sorted ``[(x, y), ...]`` points —
        exactly what :func:`repro.experiments.coalition_series` returns.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("line_chart needs at least one non-empty series")

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(min(ys), 0.0), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = SVGCanvas(1.0, 1.0, pixels=pixels)
    canvas.height = height  # chart area is managed in raw pixels
    left, right, top, bottom = 56.0, 130.0, 34.0, 40.0
    plot_w = pixels - left - right
    plot_h = height - top - bottom

    def px(x: float) -> float:
        return left + (x - x_min) / (x_max - x_min) * plot_w

    def py(y: float) -> float:
        return top + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h

    # Axes and gridlines.
    canvas._elements.append(
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#888" stroke-width="1"/>')
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y_val = y_min + frac * (y_max - y_min)
        y_px = py(y_val)
        canvas._elements.append(
            f'<line x1="{left}" y1="{y_px:.1f}" x2="{left + plot_w}" '
            f'y2="{y_px:.1f}" stroke="#ddd" stroke-width="0.6"/>')
        canvas.text_px(6, y_px + 4, f"{y_val:.2f}", size_px=10)
    for x in sorted({x for pts in series.values() for x, _ in pts}):
        canvas.text_px(px(x) - 6, height - bottom + 16, f"{x:g}", size_px=10)

    # Series.
    for i, (name, points) in enumerate(sorted(series.items())):
        if not points:
            continue
        colour = SERIES_COLOURS[i % len(SERIES_COLOURS)]
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in points)
        canvas._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="2"/>')
        for x, y in points:
            canvas._elements.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                f'fill="{colour}"/>')
        # Legend entry.
        ly = top + 14 + i * 16
        lx = pixels - right + 8
        canvas._elements.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" y2="{ly - 4}" '
            f'stroke="{colour}" stroke-width="2"/>')
        canvas.text_px(lx + 24, ly, name, size_px=11)

    if title:
        canvas.text_px(left, 18, title, size_px=13)
    if x_label:
        canvas.text_px(left + plot_w / 2 - 20, height - 6, x_label, size_px=11)
    if y_label:
        canvas.text_px(6, 16, y_label, size_px=11)
    return canvas
