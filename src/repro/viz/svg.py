"""Minimal SVG document builder (no third-party plotting dependency).

Provides just enough of SVG to render campuses and trajectories: lines,
polylines, polygons, circles, rectangles and text, with a y-flip so world
coordinates (y up) map to screen coordinates (y down).
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["SVGCanvas"]


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SVGCanvas:
    """Accumulates SVG elements over a world-coordinate viewport.

    Parameters
    ----------
    world_width, world_height:
        Extent of the world being drawn (metres).
    pixels:
        Width of the output image; height scales proportionally.
    margin:
        Padding around the drawing, in pixels.
    """

    def __init__(self, world_width: float, world_height: float,
                 pixels: int = 800, margin: float = 20.0):
        if world_width <= 0 or world_height <= 0:
            raise ValueError("world extent must be positive")
        self.world_width = float(world_width)
        self.world_height = float(world_height)
        self.margin = float(margin)
        self.scale = (pixels - 2 * margin) / world_width
        self.width = pixels
        self.height = int(world_height * self.scale + 2 * margin)
        self._elements: list[str] = []

    # ------------------------------------------------------------------
    def _x(self, x: float) -> float:
        return self.margin + x * self.scale

    def _y(self, y: float) -> float:
        # Flip: world y grows upward, SVG y grows downward.
        return self.height - self.margin - y * self.scale

    def _point(self, p) -> str:
        return f"{_fmt(self._x(float(p[0])))},{_fmt(self._y(float(p[1])))}"

    # ------------------------------------------------------------------
    def line(self, a, b, stroke: str = "#444", width: float = 1.0,
             dash: str | None = None, opacity: float = 1.0) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{_fmt(self._x(a[0]))}" y1="{_fmt(self._y(a[1]))}" '
            f'x2="{_fmt(self._x(b[0]))}" y2="{_fmt(self._y(b[1]))}" '
            f'stroke="{stroke}" stroke-width="{_fmt(width)}" '
            f'stroke-opacity="{_fmt(opacity)}"{dash_attr}/>')

    def polyline(self, points, stroke: str = "#1f77b4", width: float = 1.5,
                 opacity: float = 1.0) -> None:
        if len(points) < 2:
            return
        pts = " ".join(self._point(p) for p in points)
        self._elements.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}" stroke-opacity="{_fmt(opacity)}"/>')

    def polygon(self, points, fill: str = "#999", stroke: str = "none",
                opacity: float = 1.0) -> None:
        pts = " ".join(self._point(p) for p in points)
        self._elements.append(
            f'<polygon points="{pts}" fill="{fill}" stroke="{stroke}" '
            f'fill-opacity="{_fmt(opacity)}"/>')

    def circle(self, centre, radius_px: float, fill: str = "#d62728",
               stroke: str = "none", opacity: float = 1.0) -> None:
        self._elements.append(
            f'<circle cx="{_fmt(self._x(centre[0]))}" cy="{_fmt(self._y(centre[1]))}" '
            f'r="{_fmt(radius_px)}" fill="{fill}" stroke="{stroke}" '
            f'fill-opacity="{_fmt(opacity)}"/>')

    def text(self, position, content: str, size_px: float = 12.0,
             fill: str = "#000") -> None:
        safe = (content.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))
        self._elements.append(
            f'<text x="{_fmt(self._x(position[0]))}" y="{_fmt(self._y(position[1]))}" '
            f'font-size="{_fmt(size_px)}" fill="{fill}" '
            f'font-family="sans-serif">{safe}</text>')

    def text_px(self, x_px: float, y_px: float, content: str,
                size_px: float = 12.0, fill: str = "#000") -> None:
        """Text at raw pixel coordinates (for legends outside the world)."""
        safe = (content.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))
        self._elements.append(
            f'<text x="{_fmt(x_px)}" y="{_fmt(y_px)}" font-size="{_fmt(size_px)}" '
            f'fill="{fill}" font-family="sans-serif">{safe}</text>')

    # ------------------------------------------------------------------
    def render(self) -> str:
        header = (f'<svg xmlns="http://www.w3.org/2000/svg" '
                  f'width="{self.width}" height="{self.height}" '
                  f'viewBox="0 0 {self.width} {self.height}">')
        background = (f'<rect width="{self.width}" height="{self.height}" '
                      f'fill="#ffffff"/>')
        return "\n".join([header, background, *self._elements, "</svg>"])

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path
