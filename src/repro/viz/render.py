"""Campus and trajectory rendering (the visual form of Fig. 1 and Fig. 7)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..env.airground import AirGroundEnv
from ..maps.campus import CampusMap
from .svg import SVGCanvas

__all__ = ["render_campus", "render_trajectories", "ascii_heatmap"]

# Distinct stroke colours per UGV, matching common qualitative palettes.
UGV_COLOURS = ("#d62728", "#1f77b4", "#2ca02c", "#9467bd",
               "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f")


def render_campus(campus: CampusMap, pixels: int = 800,
                  stops=None, show_sensors: bool = True) -> SVGCanvas:
    """Draw roads, buildings, sensors and (optionally) the stop graph."""
    canvas = SVGCanvas(campus.width, campus.height, pixels=pixels)
    for a, b in campus.road_edges():
        canvas.line(a, b, stroke="#bbbbbb", width=3.0)
    for building in campus.buildings:
        canvas.polygon(building.vertices, fill="#8a8a8a", opacity=0.8)
    if show_sensors:
        for pos in campus.sensor_positions:
            canvas.circle(pos, 2.5, fill="#2ca02c")
    if stops is not None:
        for pos in stops.positions:
            canvas.circle(pos, 1.5, fill="#555555", opacity=0.7)
    canvas.text_px(8, 14, f"{campus.name}  ({campus.width:.0f} x "
                          f"{campus.height:.0f} m, {campus.num_sensors} sensors)")
    return canvas


def render_trajectories(env: AirGroundEnv, trace: list[dict],
                        pixels: int = 800, title: str = "") -> SVGCanvas:
    """Overlay a Fig.-7 style trace on the campus: UGV paths as solid
    polylines (one colour per UGV), UAV flight points as small dots."""
    canvas = render_campus(env.campus, pixels=pixels, stops=env.stops,
                           show_sensors=True)
    if not trace:
        return canvas
    num_ugvs = env.config.num_ugvs
    ugv_paths = [[snap["ugv_positions"][u] for snap in trace] for u in range(num_ugvs)]
    for u, path in enumerate(ugv_paths):
        colour = UGV_COLOURS[u % len(UGV_COLOURS)]
        canvas.polyline(path, stroke=colour, width=2.0, opacity=0.9)
        canvas.circle(path[0], 4.0, fill=colour)  # start marker
    for snap in trace:
        airborne = snap["uav_airborne"]
        for v, position in enumerate(snap["uav_positions"]):
            if airborne[v]:
                carrier = v // env.config.num_uavs_per_ugv
                colour = UGV_COLOURS[carrier % len(UGV_COLOURS)]
                canvas.circle(position, 1.2, fill=colour, opacity=0.45)
    if title:
        canvas.text_px(8, 30, title, size_px=13.0, fill="#222")
    return canvas


def ascii_heatmap(values: np.ndarray, width: int = 40) -> str:
    """Terminal-friendly rendering of a 2-D array (e.g. remaining data).

    Rows print top-to-bottom as north-to-south; intensity uses a 10-step
    character ramp.
    """
    ramp = " .:-=+*#%@"
    grid = np.asarray(values, dtype=float)
    if grid.ndim != 2:
        raise ValueError("ascii_heatmap expects a 2-D array")
    peak = grid.max()
    normalised = grid / peak if peak > 0 else np.zeros_like(grid)
    # Downsample by max-pooling into character bins so isolated peaks
    # survive (character cells are ~2x taller than wide).
    h, w = grid.shape
    cols = min(width, w)
    rows = max(2, int(h * cols / w / 2))
    col_edges = np.linspace(0, w, cols + 1).astype(int)
    row_edges = np.linspace(0, h, rows + 1).astype(int)
    lines = []
    for ri in range(rows - 1, -1, -1):  # north on top
        r0, r1 = row_edges[ri], max(row_edges[ri] + 1, row_edges[ri + 1])
        chars = []
        for ci in range(cols):
            c0, c1 = col_edges[ci], max(col_edges[ci] + 1, col_edges[ci + 1])
            value = normalised[r0:r1, c0:c1].max()
            chars.append(ramp[int(value * (len(ramp) - 1))])
        lines.append("".join(chars))
    return "\n".join(lines)
