"""Dynamic micro-batching inference engine over a frozen policy.

Concurrent callers submit single-scenario observation payloads; a single
worker thread coalesces them into one batched forward through the
policy's PR-3 batched paths (``UGVPolicy.forward_batched`` over stacked
replicas, ``UAVPolicy.forward_arrays`` over concatenated crops).  Batch
assembly is governed by two knobs:

* ``max_batch`` — flush as soon as this many requests are waiting;
* ``max_wait_us`` — flush no later than this long after the *oldest*
  queued request arrived, so a lone request never waits for company.

The queue is bounded: :meth:`InferenceEngine.submit` raises
:class:`EngineOverloaded` instead of queueing unboundedly (the service
maps this to a 429), which keeps latency bounded under overload instead
of collapsing.  Every request carries an absolute deadline; requests
that expire while queued are failed with :class:`TimeoutError` without
spending a forward on them.

Sampling happens inside the worker thread with the *per-session* rng the
caller passed, so one scenario stream's action sequence depends only on
its own seed and its own observation order — never on which other
streams shared a batch.  (The forward itself is batch-composition
independent too: all serving ops are row-independent, which the artifact
probe verifies bit-for-bit at export and load time.)

Deadlines use ``time.perf_counter`` — a monotonic interval clock, not
wall time, so the determinism analyzer's DT002 wall-clock rule stays
quiet by construction.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass

import numpy as np

from ..env.observation import UGVObsArrays
from ..obs.scope import counter_add, histogram_observe
from .artifact import FrozenPolicy

__all__ = ["EngineOverloaded", "InferenceEngine", "InferenceResult"]

_STOP = object()


class EngineOverloaded(RuntimeError):
    """The bounded request queue is full; the caller should shed load."""


@dataclass
class InferenceResult:
    """One request's decision: actions plus the value head's estimate.

    ``actions`` are in policy units (stop index / release for UGVs, the
    normalised 2-D direction for UAVs); ``moves`` scales UAV actions by
    the schema's ``uav_max_step`` into metres (``None`` for UGV
    requests).  ``batch_size`` records how many requests shared the
    forward (observability + batching tests).
    """

    kind: str
    actions: np.ndarray
    log_probs: np.ndarray
    values: np.ndarray
    moves: np.ndarray | None
    batch_size: int


@dataclass
class _Request:
    kind: str
    arrays: tuple
    rng: np.random.Generator | None  # None => greedy (distribution mode)
    future: Future
    enqueued: float
    deadline: float


def _resolve(future: Future, value=None, exc: BaseException | None = None) -> None:
    """Set a future's outcome, tolerating caller-side cancellation."""
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(value)
    except InvalidStateError:
        pass  # caller cancelled/timed out first; the result is moot


class InferenceEngine:
    """Bounded-queue micro-batcher in front of a :class:`FrozenPolicy`.

    ``submit`` is thread-safe and returns a ``concurrent.futures.Future``
    (the asyncio front end wraps it with ``asyncio.wrap_future``).  Pass
    ``autostart=False`` to control the worker thread explicitly — the
    batching tests use this to stage a known queue before any batch is
    assembled.
    """

    def __init__(self, policy: FrozenPolicy, *, max_batch: int = 32,
                 max_wait_us: float = 2000.0, queue_limit: int = 256,
                 timeout_ms: float = 1000.0, autostart: bool = True):
        if max_batch < 1 or queue_limit < 1:
            raise ValueError("max_batch and queue_limit must be >= 1")
        self.policy = policy
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_us) / 1e6
        self.timeout_s = float(timeout_ms) / 1e3
        self._queue: queue.Queue = queue.Queue(maxsize=int(queue_limit))
        self._thread: threading.Thread | None = None
        self._stopping = False
        # Monotonic counters; each key is written from a single thread
        # (shed/submitted by callers, the rest by the worker).
        self.stats = {"submitted": 0, "completed": 0, "shed": 0,
                      "timeouts": 0, "batches": 0, "max_batch_seen": 0}
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._worker,
                                            name="serve-engine", daemon=True)
            self._thread.start()

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain: finish every queued request, then stop the worker."""
        if self._stopping:
            return
        self._stopping = True
        self._queue.put(_STOP)  # FIFO: everything queued before it drains first
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    def submit(self, kind: str, arrays: tuple, *,
               rng: np.random.Generator | None = None, greedy: bool = False,
               timeout_s: float | None = None) -> Future:
        """Enqueue one request; returns a future for its result.

        Raises :class:`EngineOverloaded` when the bounded queue is full
        and ``RuntimeError`` once the engine is stopping.  ``greedy``
        selects the distribution mode; otherwise ``rng`` draws the
        sample (required).
        """
        if kind not in ("ugv", "uav"):
            raise ValueError(f"unknown request kind {kind!r}")
        if self._stopping:
            raise RuntimeError("engine is stopping; not accepting requests")
        if not greedy and rng is None:
            raise ValueError("non-greedy requests need a session rng")
        now = time.perf_counter()
        request = _Request(kind, tuple(arrays), None if greedy else rng,
                           Future(), now,
                           now + (self.timeout_s if timeout_s is None
                                  else float(timeout_s)))
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self.stats["shed"] += 1
            counter_add("serve/shed")
            raise EngineOverloaded(
                f"inference queue full ({self._queue.maxsize} pending)") from None
        self.stats["submitted"] += 1
        counter_add("serve/requests")
        return request.future

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            first = self._queue.get()
            if first is _STOP:
                return
            batch = self._collect(first)
            stop_seen = batch[-1] is _STOP
            if stop_seen:
                batch.pop()
            if batch:
                self._process(batch)
            if stop_seen:
                return

    def _collect(self, first: _Request) -> list:
        """Assemble one batch: up to ``max_batch`` requests, flushed no
        later than ``max_wait_us`` after the oldest one arrived.

        When the oldest request has already waited past its window (the
        engine is backlogged), still sweep everything sitting in the
        queue right now — under sustained load that is where batching
        pays for itself; flushing singles would collapse throughput to
        one forward per request.
        """
        batch: list = [first]
        flush_at = first.enqueued + self.max_wait_s
        while len(batch) < self.max_batch:
            remaining = flush_at - time.perf_counter()
            try:
                if remaining <= 0:
                    item = self._queue.get_nowait()
                else:
                    item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            batch.append(item)
            if item is _STOP:
                break
        return batch

    def _process(self, batch: list[_Request]) -> None:
        now = time.perf_counter()
        live: list[_Request] = []
        for request in batch:
            if request.deadline <= now:
                self.stats["timeouts"] += 1
                counter_add("serve/timeouts")
                _resolve(request.future, exc=TimeoutError(
                    "request expired in queue before a batch slot opened"))
            else:
                live.append(request)
        if not live:
            return
        self.stats["batches"] += 1
        self.stats["max_batch_seen"] = max(self.stats["max_batch_seen"], len(live))
        histogram_observe("serve/batch_size", len(live))
        for kind, runner in (("ugv", self._run_ugv), ("uav", self._run_uav)):
            group = [r for r in live if r.kind == kind]
            if not group:
                continue
            try:
                runner(group)
            except BaseException as exc:  # fail the group, keep serving
                for request in group:
                    _resolve(request.future, exc=exc)
                continue
            self.stats["completed"] += len(group)
            counter_add("serve/completed", len(group))
        latency_ms = (time.perf_counter() - live[0].enqueued) * 1e3
        histogram_observe("serve/oldest_latency_ms", latency_ms)

    # -- per-kind batched execution ------------------------------------
    def _run_ugv(self, group: list[_Request]) -> None:
        """One ``forward_batched`` over the group's stacked replicas."""
        obs = UGVObsArrays(
            stop_features=np.stack([r.arrays[0] for r in group]),
            ugv_positions=np.stack([r.arrays[1] for r in group]),
            ugv_stops=np.stack([r.arrays[2] for r in group]).astype(np.int64),
            action_mask=np.stack([r.arrays[3] for r in group]),
        )
        logits, values = self.policy.ugv_forward(obs)
        # Row-wise log-softmax in float64 (matches Categorical's math).
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_probs_all = shifted - np.log(
            np.exp(shifted).sum(axis=-1, keepdims=True))
        for i, request in enumerate(group):
            row_logp = log_probs_all[i]  # (U, B+1)
            if request.rng is None:
                actions = row_logp.argmax(axis=-1)
            else:
                probs = np.exp(row_logp)
                probs = probs / probs.sum(axis=-1, keepdims=True)
                cdf = np.cumsum(probs, axis=-1)
                draws = request.rng.random((probs.shape[0], 1))
                actions = (draws > cdf).sum(axis=-1)
            taken = np.take_along_axis(row_logp, actions[:, None], axis=-1)[:, 0]
            _resolve(request.future, InferenceResult(
                kind="ugv", actions=actions, log_probs=taken,
                values=values[i], moves=None, batch_size=len(group)))

    def _run_uav(self, group: list[_Request]) -> None:
        """One ``forward_arrays`` over the group's concatenated crops."""
        sizes = [r.arrays[0].shape[0] for r in group]
        grids = np.concatenate([r.arrays[0] for r in group])
        aux = np.concatenate([r.arrays[1] for r in group])
        mean, log_std, values = self.policy.uav_forward(grids, aux)
        std = np.exp(log_std)
        max_step = float(self.policy.schema["uav_max_step"])
        offset = 0
        for request, n in zip(group, sizes):
            m = mean[offset:offset + n]
            if request.rng is None:
                actions = m.copy()
            else:
                actions = m + std * request.rng.standard_normal(m.shape)
            diff = (actions - m) / std
            log_probs = (-0.5 * (diff * diff) - np.log(std)
                         - 0.5 * np.log(2.0 * np.pi)).sum(axis=-1)
            _resolve(request.future, InferenceResult(
                kind="uav", actions=actions, log_probs=log_probs,
                values=values[offset:offset + n], moves=actions * max_step,
                batch_size=len(group)))
            offset += n
