"""Load generator: replay concurrent synthetic scenario streams.

Each *stream* models one campus scenario client: it opens its own
keep-alive connection, creates a session seeded by its stream index, and
walks a pre-built pool of real environment observations, alternating UGV
dispatch requests with UAV movement requests whenever the pooled
timestep had airborne UAVs.  Streams run as asyncio tasks — thousands of
them concurrently on one event loop — against a live ``repro serve``
process, using the compact ``.npz`` request encoding.

The observation pool is generated once, offline, by rolling the actual
simulator with a release-happy random policy
(:func:`build_observation_pool`), so request payloads have the exact
shapes and value distributions production traffic would.  Per-request
wall latency, HTTP status and shed/timeout counts aggregate into the
summary :func:`run_load` returns; ``benchmarks/serve_latency.py`` turns
that into ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import io
import time

import numpy as np

from ..env.observation import UGVObsArrays

__all__ = ["build_observation_pool", "run_load", "percentile"]


# ----------------------------------------------------------------------
# Observation pool
# ----------------------------------------------------------------------

def build_observation_pool(campus: str, preset: str, num_ugvs: int,
                           num_uavs_per_ugv: int, *, seed: int = 0,
                           episodes: int = 1) -> list[dict]:
    """Roll the real env under a random release-happy policy; keep obs.

    Returns a list of per-timestep entries: every entry has the four UGV
    observation arrays; entries whose timestep had airborne UAVs also
    carry stacked ``grids``/``aux`` crops.
    """
    from ..experiments.runner import build_env
    from ..experiments.presets import get_preset

    env = build_env(campus, get_preset(preset), num_ugvs, num_uavs_per_ugv,
                    seed=seed)
    rng = np.random.default_rng(seed + 1)
    cfg = env.config
    pool: list[dict] = []
    for episode in range(episodes):
        res = env.reset()
        while True:
            obs = UGVObsArrays.from_observations([res.ugv_observations])
            entry = {
                "stop_features": obs.stop_features[0],
                "ugv_positions": obs.ugv_positions[0],
                "ugv_stops": obs.ugv_stops[0],
                "action_mask": obs.action_mask[0],
            }
            airborne = [o for o in res.uav_observations if o is not None]
            if airborne:
                entry["grids"] = np.stack([o.grid for o in airborne])
                entry["aux"] = np.stack([o.aux for o in airborne])
            pool.append(entry)
            # Random policy biased toward release (the last action index)
            # so the pool contains plenty of airborne-UAV timesteps.
            actions = np.empty(cfg.num_ugvs, dtype=np.int64)
            for u, mask in enumerate(entry["action_mask"]):
                feasible = np.flatnonzero(mask)
                release = feasible[-1] == mask.shape[0] - 1
                if release and rng.random() < 0.5:
                    actions[u] = mask.shape[0] - 1
                else:
                    actions[u] = rng.choice(feasible)
            uav_actions = [rng.uniform(-1, 1, 2) * cfg.uav_max_step
                           if o is not None else None
                           for o in res.uav_observations]
            res = env.step(actions, uav_actions)
            if res.done:
                break
    return pool


# ----------------------------------------------------------------------
# Minimal asyncio HTTP/1.1 client
# ----------------------------------------------------------------------

async def _request(reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                   method: str, path: str, body: bytes = b"",
                   ctype: str = "application/json") -> tuple[int, bytes]:
    writer.write((f"{method} {path} HTTP/1.1\r\n"
                  f"Host: loadgen\r\n"
                  f"Content-Type: {ctype}\r\n"
                  f"Content-Length: {len(body)}\r\n"
                  f"Connection: keep-alive\r\n\r\n").encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionResetError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    close = False
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        name = name.strip().lower()
        if name == "content-length":
            length = int(value.strip())
        elif name == "connection" and value.strip().lower() == "close":
            close = True
    payload = await reader.readexactly(length) if length else b""
    if close:
        raise ConnectionResetError("server is closing the connection")
    return status, payload


def _npz_bytes(arrays: dict) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------

async def _run_stream(host: str, port: int, stream_id: int, pool: list[dict],
                      requests: int, stats: dict, *,
                      connect_stagger_s: float = 0.0) -> None:
    if connect_stagger_s:
        await asyncio.sleep(connect_stagger_s)
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        stats["connect_errors"] += 1
        return
    try:
        status, body = await _request(
            reader, writer, "POST", "/v1/session",
            body=b'{"seed": %d}' % stream_id)
        if status != 200:
            stats["errors"][status] = stats["errors"].get(status, 0) + 1
            return
        import json

        sid = json.loads(body)["session"]
        sent = 0
        step = stream_id  # offset each stream into the pool differently
        while sent < requests:
            entry = pool[step % len(pool)]
            step += 1
            jobs = [("ugv", {k: entry[k] for k in
                             ("stop_features", "ugv_positions", "ugv_stops",
                              "action_mask")})]
            if "grids" in entry:
                jobs.append(("uav", {"grids": entry["grids"],
                                     "aux": entry["aux"]}))
            for kind, arrays in jobs:
                if sent >= requests:
                    break
                sent += 1
                t0 = time.perf_counter()
                try:
                    status, _ = await _request(
                        reader, writer, "POST",
                        f"/v1/act?session={sid}&kind={kind}",
                        body=_npz_bytes(arrays), ctype="application/x-npz")
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    stats["connect_errors"] += 1
                    return
                elapsed_ms = (time.perf_counter() - t0) * 1e3
                if status == 200:
                    stats["latencies_ms"].append(elapsed_ms)
                elif status == 429:
                    stats["shed"] += 1
                elif status == 504:
                    stats["timeouts"] += 1
                else:
                    stats["errors"][status] = stats["errors"].get(status, 0) + 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


async def run_load(host: str, port: int, pool: list[dict], *,
                   streams: int = 1000, requests_per_stream: int = 4,
                   ramp_s: float = 2.0) -> dict:
    """Run ``streams`` concurrent scenario streams; return the summary.

    Connections are staggered uniformly over ``ramp_s`` so the accept
    queue sees a ramp instead of one synchronized thundering herd, then
    all streams issue their requests concurrently.
    """
    stats = {"latencies_ms": [], "shed": 0, "timeouts": 0,
             "connect_errors": 0, "errors": {}}
    t0 = time.perf_counter()
    tasks = [
        asyncio.create_task(_run_stream(
            host, port, i, pool, requests_per_stream, stats,
            connect_stagger_s=(ramp_s * i / max(1, streams - 1)) if ramp_s else 0.0))
        for i in range(streams)
    ]
    await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - t0
    lat = stats["latencies_ms"]
    completed = len(lat)
    attempted = completed + stats["shed"] + stats["timeouts"]
    return {
        "streams": streams,
        "requests_per_stream": requests_per_stream,
        "completed": completed,
        "shed": stats["shed"],
        "timeouts": stats["timeouts"],
        "connect_errors": stats["connect_errors"],
        "errors": stats["errors"],
        "shed_rate": stats["shed"] / attempted if attempted else 0.0,
        "wall_seconds": round(wall_s, 3),
        "throughput_rps": round(completed / wall_s, 1) if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(lat, 50), 2),
            "p90": round(percentile(lat, 90), 2),
            "p99": round(percentile(lat, 99), 2),
            "mean": round(float(np.mean(lat)), 2) if lat else 0.0,
            "max": round(max(lat), 2) if lat else 0.0,
        },
    }
