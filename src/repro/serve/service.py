"""``repro serve``: stdlib-asyncio dispatch service over a frozen artifact.

One process, three layers: this module's minimal HTTP/1.1 front end
(`asyncio.start_server`; no third-party web framework), the
:class:`~repro.serve.engine.InferenceEngine` micro-batcher on its worker
thread, and the :class:`~repro.serve.artifact.FrozenPolicy` forwards.

Endpoints (all JSON unless noted):

* ``GET /healthz`` — ``{"status": "ok" | "draining"}``.
* ``GET /v1/artifact`` — the artifact manifest + compiled-plan stats.
* ``GET /v1/metrics`` — engine counters plus the live metrics registry.
* ``POST /v1/session`` — ``{"seed": int}`` ⇒ ``{"session": id}``; every
  scenario stream owns a session whose rng makes its action sampling
  depend only on its own seed and request order.
* ``DELETE /v1/session/<id>`` — end a stream.
* ``POST /v1/act`` — one decision request.  Two encodings:
  JSON (``{"session", "kind": "ugv"|"uav", "greedy", <obs arrays as
  nested lists>}``) or, for high-throughput clients, an ``.npz`` body
  (``Content-Type: application/x-npz``, observation arrays by name) with
  session/kind/greedy passed as query parameters; the response mirrors
  the request encoding.

Failure semantics (the SLO contract, see ``docs/serving.md``):

* malformed payload / schema mismatch → **400** (never reaches the engine);
* unknown session → **404**;
* bounded queue full → **429** ``{"error": "overloaded", ...}`` — load is
  shed instead of queueing without bound;
* per-request deadline exceeded → **504**;
* draining after SIGTERM → **503** for *new* work, while requests already
  accepted run to completion before the process exits.
"""

from __future__ import annotations

import asyncio
import io
import json
import signal
import time
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..obs.scope import active_profiler
from .artifact import FrozenPolicy, load_artifact
from .engine import EngineOverloaded, InferenceEngine

__all__ = ["DispatchService", "run_service"]

_JSON = "application/json"
_NPZ = "application/x-npz"

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                429: "Too Many Requests", 500: "Internal Server Error",
                503: "Service Unavailable", 504: "Gateway Timeout"}

_MAX_BODY = 32 * 1024 * 1024


class _HttpError(Exception):
    """Routed straight into an error response with ``status``."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class _Session:
    """Per-stream state: the sampling rng plus bookkeeping counters."""

    __slots__ = ("sid", "seed", "rng", "requests")

    def __init__(self, sid: str, seed: int):
        self.sid = sid
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.requests = 0


class DispatchService:
    """The serving state machine: sessions, routing, drain choreography."""

    def __init__(self, policy: FrozenPolicy, engine: InferenceEngine, *,
                 host: str = "127.0.0.1", port: int = 8765,
                 drain_timeout_s: float = 30.0):
        self.policy = policy
        self.engine = engine
        self.host = host
        self.port = port
        self.drain_timeout_s = float(drain_timeout_s)
        self.schema = policy.schema
        self.sessions: dict[str, _Session] = {}
        self.draining = False
        self._session_counter = 0
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._drain_requested = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self.bound_port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(self, ready_callback=None) -> None:
        """Bind, serve until drain is requested, then drain and stop.

        ``ready_callback(host, bound_port)`` fires once the socket is
        listening (the load generator and CI use it for port discovery).
        """
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or unsupported platform
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=2048)
        self.bound_port = self._server.sockets[0].getsockname()[1]
        if ready_callback is not None:
            ready_callback(self.host, self.bound_port)
        await self._drain_requested.wait()
        # Stop accepting new connections; let accepted work finish.
        self._server.close()
        await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), self.drain_timeout_s)
        except asyncio.TimeoutError:
            pass  # cap the drain; stragglers get connection resets
        self.engine.stop()

    def begin_drain(self) -> None:
        """SIGTERM entry: refuse new work, finish what was accepted."""
        self.draining = True
        self._drain_requested.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, ctype, payload = await self._route(method, path,
                                                           headers, body)
                close = not keep_alive or self.draining
                writer.write(self._response(status, ctype, payload, close))
                await writer.drain()
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _ = line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise asyncio.IncompleteReadError(line, None) from None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise asyncio.IncompleteReadError(b"", None)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    @staticmethod
    def _response(status: int, ctype: str, payload: bytes,
                  close: bool) -> bytes:
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n")
        return head.encode("latin-1") + payload

    @staticmethod
    def _json(obj) -> bytes:
        return json.dumps(obj).encode()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str, headers: dict,
                     body: bytes) -> tuple[int, str, bytes]:
        parts = urlsplit(target)
        path = parts.path
        try:
            if path == "/healthz" and method == "GET":
                return 200, _JSON, self._json(
                    {"status": "draining" if self.draining else "ok"})
            if path == "/v1/artifact" and method == "GET":
                return 200, _JSON, self._json(self.policy.describe())
            if path == "/v1/metrics" and method == "GET":
                return 200, _JSON, self._json(self._metrics())
            if path == "/v1/session" and method == "POST":
                return self._create_session(body)
            if path.startswith("/v1/session/") and method == "DELETE":
                return self._delete_session(path.rsplit("/", 1)[1])
            if path == "/v1/act" and method == "POST":
                return await self._act(parts.query, headers, body)
            return 404, _JSON, self._json({"error": f"no route {method} {path}"})
        except _HttpError as exc:
            return exc.status, _JSON, self._json({"error": exc.message})
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            return 500, _JSON, self._json({"error": f"{type(exc).__name__}: {exc}"})

    def _metrics(self) -> dict:
        prof = active_profiler()
        return {
            "engine": dict(self.engine.stats),
            "sessions": len(self.sessions),
            "inflight": self._inflight,
            "draining": self.draining,
            "registry": prof.metrics.as_dict() if prof is not None else None,
        }

    # -- sessions -------------------------------------------------------
    def _create_session(self, body: bytes) -> tuple[int, str, bytes]:
        if self.draining:
            raise _HttpError(503, "draining; not accepting new sessions")
        try:
            seed = int(json.loads(body or b"{}").get("seed", 0))
        except (ValueError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"bad session payload: {exc}") from None
        self._session_counter += 1
        sid = f"s{self._session_counter:010d}"
        self.sessions[sid] = _Session(sid, seed)
        return 200, _JSON, self._json({"session": sid, "seed": seed})

    def _delete_session(self, sid: str) -> tuple[int, str, bytes]:
        if self.sessions.pop(sid, None) is None:
            raise _HttpError(404, f"unknown session {sid!r}")
        return 200, _JSON, self._json({"deleted": sid})

    # -- act ------------------------------------------------------------
    async def _act(self, query: str, headers: dict,
                   body: bytes) -> tuple[int, str, bytes]:
        if self.draining:
            raise _HttpError(503, "draining; not accepting new requests")
        ctype = headers.get("content-type", _JSON).split(";")[0].strip()
        if ctype == _NPZ:
            meta, arrays = self._parse_npz(query, body)
        else:
            meta, arrays = self._parse_json(body)
        session = self.sessions.get(meta["session"])
        if session is None:
            raise _HttpError(404, f"unknown session {meta['session']!r}")
        kind = meta["kind"]
        payload = self._validate(kind, arrays)
        session.requests += 1
        try:
            future = self.engine.submit(kind, payload, rng=session.rng,
                                        greedy=meta["greedy"])
        except EngineOverloaded as exc:
            raise _HttpError(429, f"overloaded: {exc}") from None
        except RuntimeError as exc:
            raise _HttpError(503, str(exc)) from None
        self._inflight += 1
        self._idle.clear()
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(future), self.engine.timeout_s + 1.0)
        except TimeoutError:
            raise _HttpError(504, "request deadline exceeded") from None
        except asyncio.TimeoutError:
            raise _HttpError(504, "request deadline exceeded") from None
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        out = {"kind": result.kind, "batch_size": result.batch_size,
               "actions": result.actions, "log_probs": result.log_probs,
               "values": result.values}
        if result.moves is not None:
            out["moves"] = result.moves
        if ctype == _NPZ:
            buf = io.BytesIO()
            np.savez(buf, **{k: np.asarray(v) for k, v in out.items()})
            return 200, _NPZ, buf.getvalue()
        return 200, _JSON, self._json(
            {k: v.tolist() if isinstance(v, np.ndarray) else v
             for k, v in out.items()})

    # -- payload decoding / schema validation ---------------------------
    @staticmethod
    def _parse_json(body: bytes) -> tuple[dict, dict]:
        try:
            blob = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"bad JSON: {exc}") from None
        if not isinstance(blob, dict):
            raise _HttpError(400, "act payload must be a JSON object")
        meta = {"session": str(blob.get("session", "")),
                "kind": str(blob.get("kind", "ugv")),
                "greedy": bool(blob.get("greedy", False))}
        arrays = {}
        for key, value in blob.items():
            if key in ("session", "kind", "greedy"):
                continue
            try:
                arrays[key] = np.asarray(value, dtype=float)
            except (ValueError, TypeError) as exc:
                raise _HttpError(400, f"field {key!r} is not an array: {exc}") \
                    from None
        return meta, arrays

    @staticmethod
    def _parse_npz(query: str, body: bytes) -> tuple[dict, dict]:
        params = parse_qs(query)
        meta = {"session": params.get("session", [""])[0],
                "kind": params.get("kind", ["ugv"])[0],
                "greedy": params.get("greedy", ["0"])[0] in ("1", "true")}
        try:
            with np.load(io.BytesIO(body), allow_pickle=False) as data:
                arrays = {key: data[key] for key in data.files}
        except (ValueError, OSError) as exc:
            raise _HttpError(400, f"bad npz body: {exc}") from None
        return meta, arrays

    def _validate(self, kind: str, arrays: dict) -> tuple:
        """Check the payload against the artifact schema; 400 on mismatch."""
        s = self.schema
        num_ugvs, num_stops = int(s["num_ugvs"]), int(s["num_stops"])
        if kind == "ugv":
            shapes = {"stop_features": (num_ugvs, num_stops, 3),
                      "ugv_positions": (num_ugvs, 2),
                      "ugv_stops": (num_ugvs,),
                      "action_mask": (num_ugvs, num_stops + 1)}
            got = self._require(arrays, shapes)
            stops = got["ugv_stops"].astype(np.int64)
            if stops.min(initial=0) < 0 or stops.max(initial=0) >= num_stops:
                raise _HttpError(400, "ugv_stops indices out of range")
            mask = got["action_mask"].astype(bool)
            if not mask.any(axis=-1).all():
                raise _HttpError(400, "action_mask leaves an agent with no "
                                      "feasible action")
            return (got["stop_features"], got["ugv_positions"], stops, mask)
        if kind == "uav":
            size = int(s["uav_obs_size"])
            grids = arrays.get("grids")
            aux = arrays.get("aux")
            if grids is None or aux is None:
                raise _HttpError(400, "uav act needs 'grids' and 'aux'")
            grids = np.asarray(grids, dtype=float)
            aux = np.asarray(aux, dtype=float)
            if (grids.ndim != 4 or grids.shape[1:] != (3, size, size)
                    or grids.shape[0] < 1):
                raise _HttpError(400, f"grids must be (N, 3, {size}, {size}), "
                                      f"got {grids.shape}")
            if aux.shape != (grids.shape[0], int(s["uav_aux_dim"])):
                raise _HttpError(400, f"aux must be ({grids.shape[0]}, "
                                      f"{s['uav_aux_dim']}), got {aux.shape}")
            return (grids, aux)
        raise _HttpError(400, f"unknown kind {kind!r}")

    @staticmethod
    def _require(arrays: dict, shapes: dict[str, tuple]) -> dict:
        got = {}
        for name, shape in shapes.items():
            value = arrays.get(name)
            if value is None:
                raise _HttpError(400, f"missing observation field {name!r}")
            value = np.asarray(value)
            if value.shape != shape:
                raise _HttpError(400, f"{name} must have shape {shape}, "
                                      f"got {value.shape}")
            got[name] = value
        return got


def run_service(artifact_dir: str | Path, *, host: str = "127.0.0.1",
                port: int = 8765, max_batch: int = 32,
                max_wait_us: float = 2000.0, queue_limit: int = 256,
                timeout_ms: float = 1000.0, drain_timeout_s: float = 30.0,
                compile_uav: bool = True, warmup: bool = True,
                verify: bool = True, ready_file: str | Path | None = None) -> int:
    """Load an artifact and serve it until SIGTERM/SIGINT, then drain.

    The synchronous entrypoint behind ``repro serve`` (and the
    entrypoint the determinism shared-state map sweeps).  ``ready_file``,
    when given, receives ``"<host> <port>\\n"`` once the socket is bound —
    with ``port=0`` this is how callers learn the kernel-assigned port.
    Returns the process exit code (0 after a clean drain).
    """
    policy = load_artifact(artifact_dir, verify=verify, compile_uav=compile_uav)
    if warmup:
        t0 = time.perf_counter()
        policy.warmup()
        print(f"warmed compiled plans in "
              f"{time.perf_counter() - t0:.2f}s", flush=True)
    engine = InferenceEngine(policy, max_batch=max_batch,
                             max_wait_us=max_wait_us,
                             queue_limit=queue_limit, timeout_ms=timeout_ms)
    service = DispatchService(policy, engine, host=host, port=port,
                              drain_timeout_s=drain_timeout_s)

    def _ready(bound_host: str, bound_port: int) -> None:
        print(f"serving {Path(artifact_dir).name} on "
              f"http://{bound_host}:{bound_port}", flush=True)
        if ready_file is not None:
            Path(ready_file).write_text(f"{bound_host} {bound_port}\n")

    try:
        asyncio.run(service.serve(ready_callback=_ready))
    finally:
        engine.stop()
    print(f"drained: {engine.stats}", flush=True)
    return 0
