"""Policy inference serving: export, micro-batched engine, dispatch service.

Training produces full-state checkpoints (``repro.experiments.checkpoint``:
parameters + Adam moments + rng streams + telemetry cursor).  Serving needs
none of that weight — production traffic is *inference*: "where should this
UGV/UAV go next" answered for many concurrent campus scenario streams.
This package is that path, in three layers:

* :mod:`repro.serve.artifact` — ``repro export`` freezes a training
  checkpoint into a tape-free, versioned inference artifact (policy
  weights + config fingerprint + an observation/action schema manifest),
  verified bit-identical against the training-time policy at export time
  and re-verifiable at every load.
* :mod:`repro.serve.engine` — a dynamic micro-batcher that coalesces
  concurrent requests into the PR-3 batched forwards
  (``UGVPolicy.forward_batched`` / ``UAVPolicy.forward_arrays``), with a
  warm compiled-plan cache (``repro.nn.compile``) on the UAV CNN path,
  max-batch / max-wait knobs, a bounded queue with load-shedding and
  per-request deadlines.
* :mod:`repro.serve.service` — ``repro serve``: a stdlib-only asyncio
  HTTP front end with per-stream scenario sessions, request timeouts,
  429-style rejection under overload and graceful drain on SIGTERM.

:mod:`repro.serve.loadgen` replays thousands of concurrent synthetic
scenario streams against a running service; ``benchmarks/serve_latency.py``
drives the whole train → export → serve → load-test loop and writes
p50/p99 latency + throughput + shed rate to ``BENCH_serve.json``.

See ``docs/serving.md`` for the artifact format, the knobs and the
operations guide.
"""

from .artifact import (
    SERVE_SCHEMA_VERSION,
    ArtifactError,
    FrozenPolicy,
    export_artifact,
    load_artifact,
)
from .engine import EngineOverloaded, InferenceEngine
from .service import DispatchService, run_service

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "ArtifactError",
    "FrozenPolicy",
    "export_artifact",
    "load_artifact",
    "EngineOverloaded",
    "InferenceEngine",
    "DispatchService",
    "run_service",
]
