"""Frozen inference artifacts: ``repro export`` and the load path.

A training checkpoint (``repro.experiments.checkpoint``) carries the full
resumable state — parameters, Adam moments, every rng stream, telemetry
cursor.  Serving needs none of that: this module freezes just the two
policy networks plus enough metadata to rebuild them *exactly* and to
validate every request against the world they were trained for.

On-disk format (one directory per artifact)::

    <artifact-dir>/
        manifest.json       # serve schema version, fingerprints, the
                            # observation/action schema, param + probe digests
        ugv_policy.npz      # UGVPolicy weights (repro.nn.save_checkpoint)
        uav_policy.npz      # UAVPolicy weights

The manifest pins three layers of identity:

* ``fingerprint`` — a :func:`~repro.experiments.checkpoint.config_fingerprint`
  over the serve schema version, the run coordinates (method, campus,
  preset, coalition, seed) and the resolved :class:`GARLConfig`; load
  recomputes and refuses on mismatch, so an artifact can never be served
  by a build that would construct a different network.
* ``params`` — byte-exact :func:`~repro.nn.serialize.state_digest` of each
  policy's weights; load re-digests after reading the npz files.
* ``probe`` — digests of both policies' outputs on a fixed synthetic
  observation batch, recorded at export *from the training-time policy
  objects*.  Load re-runs the probe through the serving forward path and
  compares byte-for-byte: equality proves the frozen artifact reproduces
  the training policy's actions bit-for-bit through the exact code path
  requests will take (including the compiled UAV plan).

Stateful policies (IC3Net's recurrent core keeps per-episode hidden
state) are refused at export: interleaved micro-batched serving cannot
maintain per-stream recurrent state behind a shared forward.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..core.config import GARLConfig, PPOConfig
from ..env.observation import UGVObsArrays
from ..nn import CompiledStep, load_checkpoint, no_grad, save_checkpoint
from ..nn.serialize import atomic_write_bytes, state_digest, validate_state_dict
from ..experiments.checkpoint import config_fingerprint, find_latest, read_checkpoint
from ..experiments.runner import build_agent

__all__ = ["SERVE_SCHEMA_VERSION", "ArtifactError", "FrozenPolicy",
           "export_artifact", "load_artifact"]

SERVE_SCHEMA_VERSION = 1

_MANIFEST_FILE = "manifest.json"
_UGV_FILE = "ugv_policy.npz"
_UAV_FILE = "uav_policy.npz"

# Fixed seed for the synthetic probe batch; part of the artifact contract
# (the probe digests in old manifests stay comparable across builds).
_PROBE_SEED = 20230417
_PROBE_REPLICAS = 2


class ArtifactError(RuntimeError):
    """An artifact failed validation (schema, fingerprint or digests)."""


# ----------------------------------------------------------------------
# The frozen policy pair
# ----------------------------------------------------------------------

class FrozenPolicy:
    """The two policy networks of one artifact, behind serving forwards.

    ``ugv_forward`` runs the PR-3 batched UGV forward eagerly under
    ``no_grad`` (its gather-heavy graph ops stay on the reference eager
    path, mirroring what ``PPOConfig(compile=True)`` compiles in
    training: only the UAV step).  ``uav_forward`` routes through a
    :class:`~repro.nn.compile.CompiledStep`: batches are padded up to
    power-of-two buckets so a handful of warm plans covers every request
    size, and rows are sliced back after the replay (every op in the UAV
    CNN is row-independent, so padding never changes the live rows).
    """

    def __init__(self, ugv_policy, uav_policy, manifest: dict,
                 compile_uav: bool = True, max_uav_batch: int = 512):
        self.ugv_policy = ugv_policy
        self.uav_policy = uav_policy
        self.manifest = manifest
        self.schema = manifest["schema"]
        self.max_uav_batch = int(max_uav_batch)
        # The compiled forward needs a scalar requires-grad root (the plan
        # builder's loss-root contract); the dummy sum is never
        # backpropagated, it just anchors the tape.  Replays skip tape
        # construction entirely.
        self._uav_step = CompiledStep(self._uav_loss_fn, name="serve_uav",
                                      enabled=compile_uav)

    # -- forwards -------------------------------------------------------
    def _uav_loss_fn(self, grids: np.ndarray, aux: np.ndarray):
        dist, values = self.uav_policy.forward_arrays(grids, aux)
        root = dist.mean.sum() + values.sum()
        return root, dist.mean, values

    def ugv_forward(self, obs: UGVObsArrays) -> tuple[np.ndarray, np.ndarray]:
        """Masked logits ``(P, U, B+1)`` and values ``(P, U)`` as arrays."""
        from ..core.policies import forward_policy_batched

        with no_grad():
            out = forward_policy_batched(self.ugv_policy, obs)
            return out.logits.numpy(), out.values.numpy()

    def uav_forward(self, grids: np.ndarray,
                    aux: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gaussian ``(mean, log_std, values)`` for ``(N, 3, S, S)`` crops."""
        n = grids.shape[0]
        padded = self._uav_bucket(n)
        if padded != n:
            grids = np.concatenate([grids, np.repeat(grids[-1:], padded - n, axis=0)])
            aux = np.concatenate([aux, np.repeat(aux[-1:], padded - n, axis=0)])
        _, mean, values = self._uav_step(grids, aux).outputs
        log_std = self.uav_policy.log_std.data.copy()
        return np.asarray(mean)[:n], log_std, np.asarray(values)[:n]

    def _uav_bucket(self, n: int) -> int:
        """Next power-of-two batch size (caps the warm-plan count)."""
        if n >= self.max_uav_batch:
            return n  # oversized batches run eagerly-shaped, uncached
        return 1 << max(0, int(n - 1).bit_length())

    def warmup(self, batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32)) -> None:
        """Pre-capture compiled UAV plans so first requests never pay it."""
        s = int(self.schema["uav_obs_size"])
        aux_dim = int(self.schema["uav_aux_dim"])
        for n in batch_sizes:
            # One-time cold-path plan capture; sizes differ per iteration.
            grids = np.zeros((n, 3, s, s))  # reprolint: disable=PF002
            aux = np.zeros((n, aux_dim))  # reprolint: disable=PF002
            self._uav_step(grids, aux)
            self._uav_step(grids, aux)  # second call replays the plan

    def describe(self) -> dict:
        """Artifact identity + compiled-plan statistics (for /v1/artifact)."""
        return {"manifest": {k: v for k, v in self.manifest.items()},
                "uav_step": self._uav_step.describe()}


# ----------------------------------------------------------------------
# Probe batch: the bit-for-bit bridge between training and serving
# ----------------------------------------------------------------------

def _probe_arrays(schema: dict, seed: int = _PROBE_SEED):
    """Synthetic observation batch fixed by ``seed`` and the schema."""
    rng = np.random.default_rng(seed)
    num_ugvs = int(schema["num_ugvs"])
    num_stops = int(schema["num_stops"])
    s = int(schema["uav_obs_size"])
    aux_dim = int(schema["uav_aux_dim"])
    num_uavs = int(schema["num_ugvs"]) * int(schema["num_uavs_per_ugv"])
    lead = (_PROBE_REPLICAS,)
    obs = UGVObsArrays(
        stop_features=rng.random(lead + (num_ugvs, num_stops, 3)),
        ugv_positions=rng.random(lead + (num_ugvs, 2)),
        ugv_stops=rng.integers(0, num_stops, lead + (num_ugvs,)),
        action_mask=np.ones(lead + (num_ugvs, num_stops + 1), dtype=bool),
    )
    grids = rng.random((num_uavs, 3, s, s))
    aux = rng.random((num_uavs, aux_dim))
    return obs, grids, aux


def _probe_digests(policy: FrozenPolicy, seed: int = _PROBE_SEED) -> dict:
    """Digest the serving forwards' outputs on the fixed probe batch."""
    obs, grids, aux = _probe_arrays(policy.schema, seed)
    logits, values = policy.ugv_forward(obs)
    mean, log_std, uav_values = policy.uav_forward(grids, aux)
    return {
        "seed": seed,
        "ugv_logits": state_digest(logits),
        "ugv_values": state_digest(values),
        "uav_mean": state_digest(mean),
        "uav_log_std": state_digest(log_std),
        "uav_values": state_digest(uav_values),
    }


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------

def _resolve_checkpoint(path: str | Path) -> Path:
    """Accept either an ``iter_*`` directory or a run directory."""
    path = Path(path)
    if (path / "manifest.json").exists():
        return path
    return find_latest(path)


def _run_coordinates(manifest: dict, overrides: dict) -> dict:
    """Merge run coordinates from the checkpoint manifest and kwargs."""
    coords = {}
    for key, default in (("method", None), ("campus", None), ("preset", None),
                         ("seed", None), ("num_ugvs", 4), ("num_uavs_per_ugv", 2)):
        value = overrides.get(key)
        if value is None:
            value = manifest.get(key, default)
        if value is None:
            raise ArtifactError(
                f"checkpoint manifest does not record {key!r} (pre-serve "
                f"manifest?); pass it explicitly to export")
        coords[key] = value
    return coords


def _build_skeleton(coords: dict, garl_config: GARLConfig | None):
    """Rebuild the training-time agent shell (env + unseeded-weight nets)."""
    agent = build_agent(coords["method"], coords["campus"], coords["preset"],
                        coords["num_ugvs"], coords["num_uavs_per_ugv"],
                        coords["seed"], garl_config)
    ugv_policy = getattr(agent, "ugv_policy", None)
    uav_policy = getattr(agent, "uav_policy", None)
    if ugv_policy is None or uav_policy is None:
        raise ArtifactError(
            f"method {coords['method']!r} does not expose ugv_policy/"
            f"uav_policy modules and cannot be exported")
    for policy in (ugv_policy, uav_policy):
        if getattr(policy, "begin_episode", None) is not None:
            raise ArtifactError(
                f"method {coords['method']!r} keeps per-episode recurrent "
                f"state; stateful policies cannot serve behind an "
                f"interleaved micro-batcher")
    return agent, ugv_policy, uav_policy


def _artifact_fingerprint(coords: dict, config: GARLConfig) -> str:
    return config_fingerprint(
        {"serve_schema_version": SERVE_SCHEMA_VERSION, **coords}, config)


def export_artifact(checkpoint: str | Path, out_dir: str | Path, *,
                    method: str | None = None, campus: str | None = None,
                    preset: str | None = None, seed: int | None = None,
                    num_ugvs: int | None = None,
                    num_uavs_per_ugv: int | None = None,
                    garl_config: GARLConfig | None = None) -> Path:
    """Freeze a training checkpoint into an inference artifact directory.

    ``checkpoint`` is an ``iter_*`` checkpoint directory or a run
    directory (resolved through its ``latest`` pointer).  The run
    coordinates normally come from the checkpoint manifest; keyword
    overrides cover manifests that predate the serve fields.  The
    exported artifact is immediately loaded back through
    :func:`load_artifact` and probe-verified bit-for-bit against the
    training-time policy before this function returns.
    """
    from ..experiments.runner import method_seed
    from ..experiments.presets import get_preset

    checkpoint = _resolve_checkpoint(checkpoint)
    state, ckpt_manifest = read_checkpoint(checkpoint)
    coords = _run_coordinates(ckpt_manifest, {
        "method": method, "campus": campus, "preset": preset, "seed": seed,
        "num_ugvs": num_ugvs, "num_uavs_per_ugv": num_uavs_per_ugv})

    preset_obj = get_preset(coords["preset"])
    config = (garl_config or preset_obj.garl_config()).replace(
        seed=method_seed(coords["method"], coords["seed"]))
    agent, ugv_policy, uav_policy = _build_skeleton(coords, config)

    # Overwrite the skeleton's fresh weights with the checkpoint's.
    for name, policy in (("ugv_policy", ugv_policy), ("uav_policy", uav_policy)):
        if name not in state:
            raise ArtifactError(f"checkpoint {checkpoint} has no {name!r} state")
        params = {k: v for k, v in state[name].items()
                  if isinstance(v, np.ndarray)}
        validate_state_dict(policy, params, context=f"{checkpoint}:{name}")
        policy.load_state_dict(params)

    env_cfg = agent.env.config
    schema = {
        "num_ugvs": int(env_cfg.num_ugvs),
        "num_uavs_per_ugv": int(env_cfg.num_uavs_per_ugv),
        "num_stops": int(agent.env.stops.num_stops),
        "num_ugv_actions": int(agent.env.stops.num_stops) + 1,
        "uav_obs_size": int(env_cfg.uav_obs_size),
        "uav_aux_dim": 5,
        "uav_action_dim": 2,
        "uav_max_step": float(env_cfg.uav_max_step),
        "episode_len": int(env_cfg.episode_len),
        "campus_scale": float(preset_obj.campus_scale),
    }

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = {
        "serve_schema_version": SERVE_SCHEMA_VERSION,
        "created_unix": time.time(),
        **coords,
        "fingerprint": _artifact_fingerprint(coords, config),
        "garl_config": _config_to_json(config),
        "schema": schema,
        "training": {
            "checkpoint": str(checkpoint),
            "config_fingerprint": ckpt_manifest.get("config_fingerprint"),
            "iterations_completed": ckpt_manifest.get("iterations_completed"),
            "state_digest": ckpt_manifest.get("state_digest"),
        },
        "params": {
            "ugv_policy": state_digest(ugv_policy.state_dict()),
            "uav_policy": state_digest(uav_policy.state_dict()),
        },
    }

    # Probe through the *serving* forward path of the freshly loaded
    # weights — these objects hold exactly the training-time parameters,
    # so the recorded digests define "bit-identical to training".
    live = FrozenPolicy(ugv_policy, uav_policy, manifest)
    manifest["probe"] = _probe_digests(live)

    meta = {"fingerprint": manifest["fingerprint"],
            "serve_schema_version": SERVE_SCHEMA_VERSION}
    save_checkpoint(ugv_policy, out_dir / _UGV_FILE, {**meta, "role": "ugv_policy"})
    save_checkpoint(uav_policy, out_dir / _UAV_FILE, {**meta, "role": "uav_policy"})
    atomic_write_bytes(out_dir / _MANIFEST_FILE,
                       json.dumps(manifest, indent=1, sort_keys=True).encode())

    # Round-trip gate: a fresh load must reproduce the probe bit-for-bit.
    load_artifact(out_dir, verify=True)
    return out_dir


def _config_to_json(config: GARLConfig) -> dict:
    return asdict(config)


def _config_from_json(blob: dict) -> GARLConfig:
    blob = dict(blob)
    ppo = blob.pop("ppo", None)
    return GARLConfig(**blob, ppo=PPOConfig(**ppo) if ppo else PPOConfig())


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------

def load_artifact(directory: str | Path, verify: bool = True,
                  compile_uav: bool = True) -> FrozenPolicy:
    """Load an artifact directory into a :class:`FrozenPolicy`.

    Refuses (:class:`ArtifactError`) on: unknown serve schema version, a
    manifest fingerprint that does not match the network this build
    would construct, weight files whose digests drifted from the
    manifest, and — with ``verify=True`` — probe outputs that are not
    byte-identical to the ones recorded from the training-time policy.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_FILE
    if not manifest_path.exists():
        raise ArtifactError(f"no artifact manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())

    version = manifest.get("serve_schema_version")
    if version != SERVE_SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact {directory} has serve schema version {version!r}; "
            f"this build serves version {SERVE_SCHEMA_VERSION}")

    coords = {k: manifest[k] for k in ("method", "campus", "preset", "seed",
                                       "num_ugvs", "num_uavs_per_ugv")}
    config = _config_from_json(manifest["garl_config"])
    expected = _artifact_fingerprint(coords, config)
    if manifest.get("fingerprint") != expected:
        raise ArtifactError(
            f"artifact {directory} fingerprint {manifest.get('fingerprint')!r} "
            f"does not match this build's {expected!r}; refusing to serve a "
            f"policy under a mismatched configuration")

    _, ugv_policy, uav_policy = _build_skeleton(coords, config)
    for name, policy, fname in (("ugv_policy", ugv_policy, _UGV_FILE),
                                ("uav_policy", uav_policy, _UAV_FILE)):
        meta = load_checkpoint(policy, directory / fname)
        if meta.get("fingerprint") != manifest["fingerprint"]:
            raise ArtifactError(
                f"{fname} was written for fingerprint "
                f"{meta.get('fingerprint')!r}, manifest says "
                f"{manifest['fingerprint']!r}")
        digest = state_digest(policy.state_dict())
        if digest != manifest["params"][name]:
            raise ArtifactError(
                f"{fname} digest {digest} does not match the manifest's "
                f"{manifest['params'][name]}; weights were modified after "
                f"export")

    policy = FrozenPolicy(ugv_policy, uav_policy, manifest,
                          compile_uav=compile_uav)
    if verify:
        probe = manifest.get("probe")
        if not probe:
            raise ArtifactError(f"artifact {directory} records no probe digests")
        got = _probe_digests(policy, int(probe["seed"]))
        diffs = [k for k in got if got[k] != probe.get(k)]
        if diffs:
            raise ArtifactError(
                f"artifact {directory} probe mismatch on {diffs}: the frozen "
                f"policy does not reproduce the training-time outputs "
                f"bit-for-bit (code drift since export?)")
    return policy
