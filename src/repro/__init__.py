"""repro — reproduction of "Air-Ground Spatial Crowdsourcing with UAV
Carriers by Geometric Graph Convolutional Multi-Agent Deep Reinforcement
Learning" (ICDE 2023).

Quickstart::

    from repro import AirGroundEnv, EnvConfig, GARLAgent, build_campus

    campus = build_campus("kaist", scale=0.3)   # miniature for CPU runs
    env = AirGroundEnv(campus, EnvConfig(num_ugvs=4, num_uavs_per_ugv=2))
    agent = GARLAgent(env)
    agent.train(iterations=10)
    print(agent.evaluate())

Packages
--------
``repro.nn``
    From-scratch numpy autograd + layers (the PyTorch substitute).
``repro.maps``
    Synthetic KAIST / UCLA campuses, road networks, the UGV stop graph.
``repro.env``
    The time-slotted air-ground spatial-crowdsourcing Dec-POMDP.
``repro.core``
    GARL: MC-GCN, E-Comm, IPPO, agent facade.
``repro.baselines``
    The eight comparison methods plus a registry.
``repro.experiments``
    Harness reproducing every table and figure of Section V.
"""

from .baselines import AGENT_NAMES, METHOD_LABELS, make_agent
from .core import GARLAgent, GARLConfig, IPPOTrainer, PPOConfig
from .env import AirGroundEnv, EnvConfig, MetricSnapshot
from .maps import CampusMap, StopGraph, build_campus, build_kaist, build_stop_graph, build_ucla

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AirGroundEnv",
    "EnvConfig",
    "MetricSnapshot",
    "GARLAgent",
    "GARLConfig",
    "PPOConfig",
    "IPPOTrainer",
    "make_agent",
    "AGENT_NAMES",
    "METHOD_LABELS",
    "CampusMap",
    "StopGraph",
    "build_campus",
    "build_kaist",
    "build_ucla",
    "build_stop_graph",
]
