"""Mutable simulation entities: sensors, UGVs and UAVs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Sensor", "UGV", "UAV"]


@dataclass
class Sensor:
    """A data source attached to a building wall.

    ``initial_data`` is ``d_0^p`` and ``remaining`` is ``d_t^p`` (GB).
    """

    index: int
    position: np.ndarray
    initial_data: float
    remaining: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.initial_data <= 0:
            raise ValueError("sensor must start with positive data")
        self.position = np.asarray(self.position, dtype=float)
        self.remaining = float(self.initial_data)

    @property
    def collected(self) -> float:
        return self.initial_data - self.remaining

    @property
    def collected_ratio(self) -> float:
        return self.collected / self.initial_data

    def drain(self, amount: float) -> float:
        """Remove up to ``amount`` GB; returns what was actually taken."""
        taken = min(amount, self.remaining)
        self.remaining -= taken
        return taken

    def reset(self) -> None:
        self.remaining = float(self.initial_data)


@dataclass
class UGV:
    """A ground vehicle travelling the stop graph and carrying UAVs.

    ``wait_timer`` > 0 means the UGV has released its UAVs and is holding
    position until they return.
    """

    index: int
    stop: int
    position: np.ndarray
    wait_timer: int = 0
    releases: int = 0
    distance_travelled: float = 0.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)

    @property
    def is_waiting(self) -> bool:
        return self.wait_timer > 0

    def begin_release(self, duration: int) -> None:
        if self.is_waiting:
            raise RuntimeError(f"UGV {self.index} already has UAVs airborne")
        self.wait_timer = duration
        self.releases += 1

    def tick_wait(self) -> bool:
        """Advance the wait timer; returns True when the window just closed."""
        if self.wait_timer == 0:
            return False
        self.wait_timer -= 1
        return self.wait_timer == 0

    def move_to(self, stop: int, position: np.ndarray, road_distance: float) -> None:
        if self.is_waiting:
            raise RuntimeError(f"UGV {self.index} cannot move while UAVs are airborne")
        self.stop = stop
        self.position = np.asarray(position, dtype=float)
        self.distance_travelled += float(road_distance)


@dataclass
class UAV:
    """An aerial vehicle docked on (or released from) a carrier UGV."""

    index: int
    carrier: int  # UGV index
    position: np.ndarray
    energy: float
    max_energy: float
    airborne: bool = False
    # Per-flight bookkeeping for the cooperation factor zeta.
    flight_collected: float = 0.0
    releases: int = 0
    effective_releases: int = 0
    # Episode-level energy accounting for beta.
    energy_spent: float = 0.0
    energy_charged: float = 0.0
    crashes: int = 0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        if self.max_energy <= 0:
            raise ValueError("UAV needs positive battery capacity")

    @property
    def exhausted(self) -> bool:
        return self.energy <= 0.0

    def launch(self, position: np.ndarray) -> None:
        if self.airborne:
            raise RuntimeError(f"UAV {self.index} already airborne")
        self.airborne = True
        self.position = np.asarray(position, dtype=float)
        self.flight_collected = 0.0
        self.releases += 1

    def fly(self, new_position: np.ndarray, metres: float, energy_per_metre: float) -> None:
        if not self.airborne:
            raise RuntimeError(f"UAV {self.index} cannot fly while docked")
        cost = metres * energy_per_metre
        self.position = np.asarray(new_position, dtype=float)
        self.energy = max(0.0, self.energy - cost)
        self.energy_spent += cost

    def record_collection(self, amount: float) -> None:
        self.flight_collected += amount

    def dock(self, carrier_position: np.ndarray) -> None:
        """Return to the carrier and recharge to full (paper's protocol)."""
        if not self.airborne:
            raise RuntimeError(f"UAV {self.index} is not airborne")
        self.airborne = False
        self.position = np.asarray(carrier_position, dtype=float)
        if self.flight_collected > 0.0:
            self.effective_releases += 1
        refill = self.max_energy - self.energy
        self.energy_charged += refill
        self.energy = self.max_energy
