"""Observation construction (Eqns. 9-11).

``ObservationBuilder`` precomputes everything static (obstacle raster,
sensor->stop coverage, stop reachability) and then stamps out per-agent
observations each timeslot:

* UGV — the masked stop-node tensor ``X̂_t^{B,u}`` plus all UGV positions
  ``X_t^U`` and a feasibility mask over the B+1 discrete actions
  (move-to-stop 0..B-1, release = B).
* UAV — an egocentric multi-channel grid crop of the global state
  (obstacles / remaining sensor data / other airborne UAVs) plus an
  auxiliary vector (normalised position, energy fraction, time left).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..maps.campus import CampusMap
from ..maps.stop_graph import StopGraph
from .config import EnvConfig
from .entities import UAV, UGV

__all__ = ["UGVObservation", "UAVObservation", "UGVObsArrays", "UAVObsArrays",
           "ObservationBuilder"]


@dataclass
class UGVObservation:
    """Observation ``o_t^u`` (Eqns. 9-10) for one UGV."""

    agent_index: int
    stop_features: np.ndarray  # (B, 3): x, y (normalised), masked d̂
    ugv_positions: np.ndarray  # (U, 2), normalised
    ugv_stops: np.ndarray  # (U,) current stop index of every UGV
    action_mask: np.ndarray  # (B + 1,) boolean feasibility
    current_stop: int

    @property
    def num_stops(self) -> int:
        return len(self.stop_features)

    def flat(self) -> np.ndarray:
        """Flattened vector form, used by the MLP-style baselines."""
        return np.concatenate([self.stop_features.ravel(), self.ugv_positions.ravel()])


@dataclass
class UAVObservation:
    """Observation ``o_t^v`` (Eqn. 11) for one airborne UAV."""

    agent_index: int
    grid: np.ndarray  # (3, S, S): obstacles, sensor data, other UAVs
    aux: np.ndarray  # (5,): x, y, energy fraction, window fraction, carrier dist

    @property
    def channels(self) -> int:
        return self.grid.shape[0]


@dataclass
class UGVObsArrays:
    """Struct-of-arrays UGV observations for a batch of env replicas.

    The leading axes are arbitrary (``(K,)`` for a vec-env step,
    ``(K, T)`` inside a rollout buffer, ``(P,)`` for a PPO minibatch of
    gathered timesteps); the trailing axes are fixed per field.
    ``ugv_positions``/``ugv_stops`` are shared by all agents of a replica
    and therefore stored once per replica, not once per agent.
    """

    stop_features: np.ndarray  # (..., U, B, 3)
    ugv_positions: np.ndarray  # (..., U, 2) — position of every UGV
    ugv_stops: np.ndarray  # (..., U) int64
    action_mask: np.ndarray  # (..., U, B + 1) bool

    @classmethod
    def allocate(cls, lead_shape: tuple[int, ...], num_agents: int,
                 num_stops: int) -> "UGVObsArrays":
        lead = tuple(lead_shape)
        return cls(
            stop_features=np.zeros(lead + (num_agents, num_stops, 3)),
            ugv_positions=np.zeros(lead + (num_agents, 2)),
            ugv_stops=np.zeros(lead + (num_agents,), dtype=np.int64),
            action_mask=np.zeros(lead + (num_agents, num_stops + 1), dtype=bool),
        )

    @classmethod
    def from_observations(cls, obs_lists: "list[list[UGVObservation]]") -> "UGVObsArrays":
        """Stack per-replica dataclass lists into arrays (inverse of view)."""
        return cls(
            stop_features=np.stack([[o.stop_features for o in obs] for obs in obs_lists]),
            ugv_positions=np.stack([obs[0].ugv_positions for obs in obs_lists]),
            ugv_stops=np.stack([obs[0].ugv_stops for obs in obs_lists]).astype(np.int64),
            action_mask=np.stack([[o.action_mask for o in obs] for obs in obs_lists]),
        )

    @property
    def num_agents(self) -> int:
        return self.ugv_stops.shape[-1]

    @property
    def num_stops(self) -> int:
        return self.stop_features.shape[-2]

    @property
    def lead_shape(self) -> tuple[int, ...]:
        return self.ugv_stops.shape[:-1]

    def index(self, idx) -> "UGVObsArrays":
        """Fancy-index the leading axes (numpy semantics, e.g. a (P,) gather)."""
        return UGVObsArrays(self.stop_features[idx], self.ugv_positions[idx],
                            self.ugv_stops[idx], self.action_mask[idx])

    def write(self, idx, src: "UGVObsArrays") -> None:
        """Copy ``src`` into the slot(s) selected by ``idx``."""
        self.stop_features[idx] = src.stop_features
        self.ugv_positions[idx] = src.ugv_positions
        self.ugv_stops[idx] = src.ugv_stops
        self.action_mask[idx] = src.action_mask

    def observations(self, *idx) -> list[UGVObservation]:
        """Thin dataclass-view adapter for one replica slot.

        ``idx`` must select away every leading axis, leaving the per-agent
        arrays; existing list-based policies and tests consume the result
        unchanged.
        """
        sf = self.stop_features[idx]
        pos = self.ugv_positions[idx]
        stops = self.ugv_stops[idx]
        mask = self.action_mask[idx]
        return [UGVObservation(u, sf[u], pos, stops, mask[u], int(stops[u]))
                for u in range(stops.shape[0])]


@dataclass
class UAVObsArrays:
    """Struct-of-arrays UAV observations; ``airborne`` gates validity.

    Rows of docked UAVs hold stale/garbage data by design — every
    consumer masks with ``airborne`` first, which keeps the hot path free
    of per-step reallocation.
    """

    grid: np.ndarray  # (..., V, 3, S, S)
    aux: np.ndarray  # (..., V, 5)
    airborne: np.ndarray  # (..., V) bool

    @classmethod
    def allocate(cls, lead_shape: tuple[int, ...], num_uavs: int,
                 obs_size: int, aux_dim: int = 5) -> "UAVObsArrays":
        lead = tuple(lead_shape)
        return cls(
            grid=np.zeros(lead + (num_uavs, 3, obs_size, obs_size)),
            aux=np.zeros(lead + (num_uavs, aux_dim)),
            airborne=np.zeros(lead + (num_uavs,), dtype=bool),
        )

    @property
    def num_uavs(self) -> int:
        return self.airborne.shape[-1]

    def index(self, idx) -> "UAVObsArrays":
        return UAVObsArrays(self.grid[idx], self.aux[idx], self.airborne[idx])

    def write(self, idx, src: "UAVObsArrays") -> None:
        self.grid[idx] = src.grid
        self.aux[idx] = src.aux
        self.airborne[idx] = src.airborne

    def observations(self, *idx) -> list[UAVObservation | None]:
        """Dataclass-view adapter: None for docked UAVs, like the env."""
        grid = self.grid[idx]
        aux = self.aux[idx]
        airborne = self.airborne[idx]
        return [UAVObservation(v, grid[v], aux[v]) if airborne[v] else None
                for v in range(airborne.shape[0])]


class ObservationBuilder:
    """Builds observations; owns the static rasters and coverage matrices."""

    def __init__(self, campus: CampusMap, stops: StopGraph, config: EnvConfig):
        self.campus = campus
        self.stops = stops
        self.config = config
        self._extent = np.array([campus.width, campus.height])

        # Obstacle raster covering the whole workzone.
        cell = config.uav_obs_cell
        self.grid_w = int(np.ceil(campus.width / cell))
        self.grid_h = int(np.ceil(campus.height / cell))
        self.obstacles = self._rasterize_buildings()

        # Sensor cell coordinates for the data channel.
        self.sensor_cells = np.floor(campus.sensor_positions / cell).astype(int)
        self.sensor_cells[:, 0] = np.clip(self.sensor_cells[:, 0], 0, self.grid_w - 1)
        self.sensor_cells[:, 1] = np.clip(self.sensor_cells[:, 1], 0, self.grid_h - 1)

        # Coverage: which sensors count toward stop b's d_t^b (Eqn. 8).
        deltas = (stops.positions[:, None, :] - campus.sensor_positions[None, :, :])
        self.coverage = (np.hypot(deltas[..., 0], deltas[..., 1])
                         <= config.stop_coverage_radius)  # (B, P)

        # Stop reachability under the 400 m/slot budget, along roads.
        metre = stops.metre_distances()
        self.reachable = metre <= config.ugv_max_step  # (B, B) includes self

        # Which stops a UGV at stop b can refresh information about.
        stop_gaps = np.linalg.norm(
            stops.positions[:, None, :] - stops.positions[None, :, :], axis=-1)
        self.refresh = stop_gaps <= config.ugv_observe_radius  # (B, B)

        self._norm_positions = stops.positions / self._extent

        # Obstacle raster padded by the crop radius: out-of-zone cells are
        # obstacles, so a UAV crop becomes a pure slice of this array.
        radius = config.uav_obs_radius
        self._padded_obstacles = np.pad(self.obstacles, radius, constant_values=1.0)

    # ------------------------------------------------------------------
    def _rasterize_buildings(self) -> np.ndarray:
        """Binary obstacle raster (grid_h, grid_w) at cell-centre samples."""
        cell = self.config.uav_obs_cell
        raster = np.zeros((self.grid_h, self.grid_w), dtype=np.float64)
        for building in self.campus.buildings:
            box = building.bbox
            c0 = max(0, int(box.min_x // cell))
            c1 = min(self.grid_w - 1, int(box.max_x // cell))
            r0 = max(0, int(box.min_y // cell))
            r1 = min(self.grid_h - 1, int(box.max_y // cell))
            # One-off rasterisation at builder construction; the polygon
            # containment test is per-cell by nature.
            for r in range(r0, r1 + 1):  # reprolint: disable=PF003
                for c in range(c0, c1 + 1):
                    centre = ((c + 0.5) * cell, (r + 0.5) * cell)
                    if building.contains(centre):
                        raster[r, c] = 1.0
        return raster

    # ------------------------------------------------------------------
    def stop_data(self, remaining: np.ndarray) -> np.ndarray:
        """d_t^b for every stop: data collectible around that stop (Eqn. 8)."""
        return self.coverage @ np.asarray(remaining, dtype=float)

    def data_scale(self, initial: np.ndarray) -> float:
        """Normalisation constant for stop data channels."""
        per_stop = self.stop_data(initial)
        return float(max(per_stop.max(), 1e-9))

    def ugv_observation(self, agent: int, ugvs: list[UGV], last_seen: np.ndarray,
                        seen_mask: np.ndarray, data_scale: float) -> UGVObservation:
        """Assemble ``o_t^u`` using the UGV's stale per-stop memory."""
        cfg = self.config
        b = self.stops.num_stops
        features = np.empty((b, 3))
        features[:, :2] = self._norm_positions
        masked = np.where(seen_mask, last_seen / data_scale, cfg.mask_constant)
        features[:, 2] = masked

        # UGV positions/stops mutate on every move; the O(U) gather
        # (U <= 8) is cheaper than syncing a cache at each move site.
        positions = np.array([u.position for u in ugvs]) / self._extent  # reprolint: disable=PF001
        stops = np.array([u.stop for u in ugvs], dtype=int)  # reprolint: disable=PF001

        mask = np.zeros(b + 1, dtype=bool)
        mask[:b] = self.reachable[ugvs[agent].stop]
        mask[ugvs[agent].stop] = True  # staying put is always allowed
        mask[b] = True  # releasing is always allowed when the UGV acts
        return UGVObservation(agent, features, positions, stops, mask, ugvs[agent].stop)

    def encode_ugv_batch(self, ugvs: list[UGV], last_seen: np.ndarray,
                         seen_mask: np.ndarray, data_scale: float,
                         out: UGVObsArrays, idx=()) -> None:
        """Array-encoder equivalent of :meth:`ugv_observation` for all agents.

        Writes one replica's joint observation into ``out``'s slot ``idx``
        without constructing dataclasses; the values are bitwise-identical
        to the per-agent path (pinned by a unit test).
        """
        cfg = self.config
        b = self.stops.num_stops
        u = len(ugvs)
        features = out.stop_features[idx]  # (U, B, 3) view
        features[:, :, :2] = self._norm_positions
        features[:, :, 2] = np.where(seen_mask, last_seen / data_scale, cfg.mask_constant)

        # Same O(U) gather trade-off as ugv_observation above.
        positions = np.array([g.position for g in ugvs])  # reprolint: disable=PF001
        out.ugv_positions[idx] = positions / self._extent
        stops = np.fromiter((g.stop for g in ugvs), dtype=np.int64, count=u)  # reprolint: disable=PF001
        out.ugv_stops[idx] = stops

        mask = out.action_mask[idx]  # (U, B + 1) view
        mask[:, :b] = self.reachable[stops]
        mask[np.arange(u), stops] = True
        mask[:, b] = True

    # ------------------------------------------------------------------
    def global_rasters(self, remaining: np.ndarray, uavs: list[UAV],
                       data_scale_per_sensor: float) -> tuple[np.ndarray, np.ndarray]:
        """Dynamic channels shared by all UAV crops this timeslot.

        ``remaining`` is the env's preallocated per-sensor data array
        (``AirGroundEnv._sensor_remaining``), read-only here — passing
        the array instead of the Sensor list is what lets the encoder
        avoid a per-step comprehension rebuild.
        """
        data = np.zeros_like(self.obstacles)
        remaining = np.asarray(remaining, dtype=float)
        np.add.at(data, (self.sensor_cells[:, 1], self.sensor_cells[:, 0]),
                  remaining / data_scale_per_sensor)
        presence = np.zeros_like(self.obstacles)
        cell = self.config.uav_obs_cell
        for uav in uavs:
            if uav.airborne:
                c = int(np.clip(uav.position[0] // cell, 0, self.grid_w - 1))
                r = int(np.clip(uav.position[1] // cell, 0, self.grid_h - 1))
                presence[r, c] += 1.0
        return data, presence

    def uav_observation(self, uav: UAV, carrier: UGV, window_left: int,
                        data_raster: np.ndarray, presence_raster: np.ndarray) -> UAVObservation:
        """Egocentric crop around the UAV (Eqn. 11)."""
        cfg = self.config
        cell = cfg.uav_obs_cell
        radius = cfg.uav_obs_radius
        size = cfg.uav_obs_size
        cx = int(np.clip(uav.position[0] // cell, 0, self.grid_w - 1))
        cy = int(np.clip(uav.position[1] // cell, 0, self.grid_h - 1))

        grid = np.zeros((3, size, size))
        r0, r1 = cy - radius, cy + radius + 1
        c0, c1 = cx - radius, cx + radius + 1
        rr0, cc0 = max(r0, 0), max(c0, 0)
        rr1, cc1 = min(r1, self.grid_h), min(c1, self.grid_w)
        dst_r0, dst_c0 = rr0 - r0, cc0 - c0
        dst_r1, dst_c1 = dst_r0 + (rr1 - rr0), dst_c0 + (cc1 - cc0)
        # Outside the workzone counts as obstacle.
        grid[0].fill(1.0)
        grid[0, dst_r0:dst_r1, dst_c0:dst_c1] = self.obstacles[rr0:rr1, cc0:cc1]
        grid[1, dst_r0:dst_r1, dst_c0:dst_c1] = data_raster[rr0:rr1, cc0:cc1]
        grid[2, dst_r0:dst_r1, dst_c0:dst_c1] = presence_raster[rr0:rr1, cc0:cc1]
        # Remove self from the presence channel.
        grid[2, radius, radius] = max(0.0, grid[2, radius, radius] - 1.0)

        carrier_gap = float(np.linalg.norm(uav.position - carrier.position))
        aux = np.array([
            uav.position[0] / self.campus.width,
            uav.position[1] / self.campus.height,
            uav.energy / uav.max_energy,
            window_left / max(cfg.release_duration, 1),
            carrier_gap / max(self.campus.width, self.campus.height),
        ])
        return UAVObservation(uav.index, grid, aux)

    def encode_uav_batch(self, uavs: list[UAV], ugvs: list[UGV],
                         remaining: np.ndarray, sensor_scale: float,
                         out: UAVObsArrays, idx=()) -> None:
        """Array-encoder equivalent of :meth:`uav_observation` for all UAVs.

        Docked UAVs only get their ``airborne`` flag cleared; their grid and
        aux rows are left stale (consumers mask on ``airborne``).  Crops are
        pure slices of radius-padded rasters, so the egocentric window never
        needs per-UAV bounds arithmetic.
        """
        cfg = self.config
        cell = cfg.uav_obs_cell
        radius = cfg.uav_obs_radius
        size = cfg.uav_obs_size
        # Airborne flags flip at launch/dock; O(V) bool gather per encode.
        airborne = np.fromiter((v.airborne for v in uavs), dtype=bool, count=len(uavs))  # reprolint: disable=PF001
        out.airborne[idx] = airborne
        if not airborne.any():
            return

        data, presence = self.global_rasters(remaining, uavs, sensor_scale)
        padded_data = np.pad(data, radius)
        padded_presence = np.pad(presence, radius)
        grid = out.grid[idx]  # (V, 3, S, S) view
        aux = out.aux[idx]  # (V, 5) view
        extent = max(self.campus.width, self.campus.height)
        for v in np.nonzero(airborne)[0]:
            uav = uavs[v]
            carrier = ugvs[uav.carrier]
            cx = int(np.clip(uav.position[0] // cell, 0, self.grid_w - 1))
            cy = int(np.clip(uav.position[1] // cell, 0, self.grid_h - 1))
            # Padded rasters shift indices by +radius, so the crop origin
            # in padded coordinates is exactly (cy, cx).
            grid[v, 0] = self._padded_obstacles[cy:cy + size, cx:cx + size]
            grid[v, 1] = padded_data[cy:cy + size, cx:cx + size]
            grid[v, 2] = padded_presence[cy:cy + size, cx:cx + size]
            centre = grid[v, 2, radius, radius]
            grid[v, 2, radius, radius] = max(0.0, centre - 1.0)  # remove self
            carrier_gap = float(np.linalg.norm(uav.position - carrier.position))
            aux[v, 0] = uav.position[0] / self.campus.width
            aux[v, 1] = uav.position[1] / self.campus.height
            aux[v, 2] = uav.energy / uav.max_energy
            aux[v, 3] = carrier.wait_timer / max(cfg.release_duration, 1)
            aux[v, 4] = carrier_gap / extent
