"""Environment configuration with the paper's Section V-A defaults.

All physical constants come straight from the paper:

* 30 s timeslots; sensor data 1-1.5 GB; UAV max speed 12 km/h
  (=> 100 m/slot); initial UAV energy 10 kJ; movement cost 0.01 kJ/m;
  sensing range 60 m; collection rate 166.7 Mbps (=> 0.625 GB/slot);
  stops every 100 m; UGV max travel 400 m/slot (48 km/h).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["EnvConfig"]


@dataclass(frozen=True)
class EnvConfig:
    """All tunables of the air-ground SC simulation.

    The defaults reproduce the paper's setting; tests and smoke-scale
    benchmarks override ``num_ugvs``/``num_uavs_per_ugv``/``episode_len``.
    """

    # -- coalition ------------------------------------------------------
    num_ugvs: int = 4
    num_uavs_per_ugv: int = 2

    # -- task duration --------------------------------------------------
    episode_len: int = 100
    timeslot_seconds: float = 30.0

    # -- data -----------------------------------------------------------
    sensor_data_min: float = 1.0  # GB
    sensor_data_max: float = 1.5  # GB
    collect_rate: float = 0.625  # GB per timeslot per sensor (166.7 Mbps)
    sensing_range: float = 60.0  # metres

    # -- UAV ------------------------------------------------------------
    uav_max_step: float = 100.0  # metres per timeslot (12 km/h)
    uav_energy: float = 10.0  # kJ, e_0
    energy_per_metre: float = 0.01  # kJ/m, eta
    release_duration: int = 4  # t_rls, timeslots UAVs stay airborne
    crash_penalty: float = 1.0  # magnitude of r^{v-}

    # -- UGV ------------------------------------------------------------
    stop_interval: float = 100.0  # metres between stops
    ugv_max_step: float = 400.0  # metres per timeslot (48 km/h)
    stop_coverage_radius: float = 200.0  # metres, defines d_t^b per Eqn. (8)
    ugv_observe_radius: float = 300.0  # metres within which stop data refreshes

    # -- observations ---------------------------------------------------
    uav_obs_cell: float = 20.0  # metres per grid cell in the UAV crop
    uav_obs_radius: int = 7  # cells; crop is (2r+1) x (2r+1)
    mask_constant: float = -1.0  # masks unknown stop data (Eqn. 9b)

    # -- reward ---------------------------------------------------------
    reward_clip: float = 5.0  # epsilon_3 in Eqn. (13a)
    epsilon: float = 1e-6  # small epsilon shared by Eqns. (4), (13)

    def __post_init__(self) -> None:
        if self.num_ugvs < 1:
            raise ValueError("need at least one UGV")
        if self.num_uavs_per_ugv < 1:
            raise ValueError("need at least one UAV per UGV")
        if self.episode_len < 1:
            raise ValueError("episode_len must be positive")
        if self.sensor_data_min <= 0 or self.sensor_data_max < self.sensor_data_min:
            raise ValueError("invalid sensor data range")
        if self.release_duration < 1:
            raise ValueError("release_duration must be >= 1")
        if self.uav_max_step <= 0 or self.ugv_max_step <= 0:
            raise ValueError("step limits must be positive")

    @property
    def num_uavs(self) -> int:
        """Total UAV count V = U * V'."""
        return self.num_ugvs * self.num_uavs_per_ugv

    @property
    def uav_obs_size(self) -> int:
        """Side length of the square UAV observation crop, in cells."""
        return 2 * self.uav_obs_radius + 1

    def with_coalition(self, num_ugvs: int, num_uavs_per_ugv: int) -> "EnvConfig":
        """Copy with a different coalition size (the Fig. 3-6 sweeps)."""
        return replace(self, num_ugvs=num_ugvs, num_uavs_per_ugv=num_uavs_per_ugv)

    def replace(self, **kwargs) -> "EnvConfig":
        """Copy with arbitrary overrides."""
        return replace(self, **kwargs)
