"""``repro.env`` — the air-ground spatial-crowdsourcing simulator."""

from .airground import AirGroundEnv, StepResult
from .config import EnvConfig
from .entities import UAV, UGV, Sensor
from .events import Event, EventLog
from .metrics import (
    MetricSnapshot,
    collection_ratio,
    cooperation_factor,
    efficiency,
    energy_ratio,
    jain_fairness,
)
from .observation import ObservationBuilder, UAVObservation, UGVObservation

__all__ = [
    "AirGroundEnv",
    "StepResult",
    "EnvConfig",
    "Sensor",
    "UGV",
    "UAV",
    "Event",
    "EventLog",
    "MetricSnapshot",
    "collection_ratio",
    "jain_fairness",
    "cooperation_factor",
    "energy_ratio",
    "efficiency",
    "ObservationBuilder",
    "UGVObservation",
    "UAVObservation",
]
