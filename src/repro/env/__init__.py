"""``repro.env`` — the air-ground spatial-crowdsourcing simulator."""

from .airground import AirGroundEnv, StepResult
from .config import EnvConfig
from .entities import UAV, UGV, Sensor
from .events import Event, EventLog
from .metrics import (
    MetricSnapshot,
    collection_ratio,
    cooperation_factor,
    efficiency,
    energy_ratio,
    jain_fairness,
)
from .observation import (
    ObservationBuilder,
    UAVObsArrays,
    UAVObservation,
    UGVObsArrays,
    UGVObservation,
)
from .vector import VecAirGroundEnv, VecStepResult, replica_seed
from .workers import WorkerError, WorkerVecEnv, reset_worker_process_state

__all__ = [
    "AirGroundEnv",
    "StepResult",
    "VecAirGroundEnv",
    "VecStepResult",
    "WorkerVecEnv",
    "WorkerError",
    "reset_worker_process_state",
    "replica_seed",
    "EnvConfig",
    "Sensor",
    "UGV",
    "UAV",
    "Event",
    "EventLog",
    "MetricSnapshot",
    "collection_ratio",
    "jain_fairness",
    "cooperation_factor",
    "energy_ratio",
    "efficiency",
    "ObservationBuilder",
    "UGVObservation",
    "UAVObservation",
    "UGVObsArrays",
    "UAVObsArrays",
]
