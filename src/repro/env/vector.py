"""Vectorized execution of K independent env replicas.

``VecAirGroundEnv`` owns K :class:`AirGroundEnv` replicas behind a single
``reset(seeds)`` / ``step(batched_actions)`` API.  Observations are
encoded straight into preallocated ``(K, num_agents, ...)`` struct-of-
arrays (:class:`~repro.env.observation.UGVObsArrays` /
``UAVObsArrays``) so the hot path constructs no per-agent dataclasses;
policies consume the batch in one forward.

Semantics chosen for sequential equivalence at K=1:

* Replica ``k`` seeds with :func:`replica_seed` — replica 0 keeps the
  base seed, so a K=1 vec rollout draws the exact rng stream of the
  sequential path.
* Auto-reset on ``done`` calls ``reset_state()`` *without* a seed,
  continuing each replica's rng stream — the same thing a sequential
  trainer's next ``run_episode`` would do.  The step that finishes an
  episode returns the *post-reset* observation (standard VecEnv
  convention); the final pre-reset metrics arrive in
  ``infos[k]["final_metrics"]``.
* Observation arrays are double-buffered: the result of the previous
  ``step``/``reset`` stays valid while the next step encodes, so rollout
  buffers can copy "previous obs + new rewards" after stepping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.scope import counter_add, scope as obs_scope
from .airground import AirGroundEnv
from .metrics import MetricSnapshot
from .observation import UAVObsArrays, UGVObsArrays

__all__ = ["VecAirGroundEnv", "VecStepResult", "replica_seed"]

# Seed stride between replicas.  A large prime keeps replica streams from
# colliding with the small per-method offsets of runner.method_seed.
_REPLICA_SEED_STRIDE = 9973


def replica_seed(seed: int, replica: int) -> int:
    """Seed of env replica ``k`` derived from a base seed.

    Replica 0 keeps the base seed (so K=1 reproduces the sequential
    stream); higher replicas stride by a large prime.  The derivation is a
    pure function of ``(seed, replica)``, which is what keeps results
    reproducible for any K.
    """
    return seed + _REPLICA_SEED_STRIDE * replica


@dataclass
class VecStepResult:
    """Struct-of-arrays result of one vectorized step over K replicas."""

    ugv_obs: UGVObsArrays  # leading dim K
    uav_obs: UAVObsArrays  # leading dim K
    ugv_rewards: np.ndarray  # (K, U)
    uav_rewards: np.ndarray  # (K, V)
    ugv_actionable: np.ndarray  # (K, U) bool — which UGVs act next slot
    dones: np.ndarray  # (K,) bool
    infos: list[dict] = field(default_factory=list)


class VecAirGroundEnv:
    """K independent AirGroundEnv replicas stepped as one batch."""

    def __init__(self, envs: list[AirGroundEnv]):
        if not envs:
            raise ValueError("VecAirGroundEnv needs at least one replica")
        cfg = envs[0].config
        for env in envs[1:]:
            if env.config is not cfg and env.config != cfg:
                raise ValueError("all replicas must share an EnvConfig")
            if env.stops.num_stops != envs[0].stops.num_stops:
                raise ValueError("all replicas must share a stop graph")
        self.envs = envs
        self.config = cfg
        self.num_envs = len(envs)
        self.num_stops = envs[0].num_stops
        k, u, v = self.num_envs, cfg.num_ugvs, cfg.num_uavs
        # Double-buffered observation arrays (see module docstring).
        self._ugv_buffers = [UGVObsArrays.allocate((k,), u, self.num_stops)
                             for _ in range(2)]
        self._uav_buffers = [UAVObsArrays.allocate((k,), v, cfg.uav_obs_size)
                             for _ in range(2)]
        self._parity = 0
        self._needs_reset = np.ones(k, dtype=bool)

    @classmethod
    def from_env(cls, env: AirGroundEnv, num_envs: int) -> "VecAirGroundEnv":
        """Build K replicas sharing ``env``'s campus/stops/builder.

        ``env`` itself becomes replica 0, so its seed and rng stream are
        preserved — a K=1 vec env is *the same environment*.
        """
        envs = [env]
        for k in range(1, num_envs):
            envs.append(AirGroundEnv(env.campus, env.config, stops=env.stops,
                                     seed=replica_seed(env._seed, k),
                                     data_weights=env._data_weights,
                                     builder=env.builder))
        return cls(envs)

    # ------------------------------------------------------------------
    def _next_buffers(self) -> tuple[UGVObsArrays, UAVObsArrays]:
        self._parity ^= 1
        return self._ugv_buffers[self._parity], self._uav_buffers[self._parity]

    def reset(self, seeds: list[int] | np.ndarray | None = None) -> VecStepResult:
        """Reset every replica; ``seeds`` reseeds per replica when given."""
        if seeds is not None and len(seeds) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} seeds, got {len(seeds)}")
        cfg = self.config
        ugv_obs, uav_obs = self._next_buffers()
        actionable = np.zeros((self.num_envs, cfg.num_ugvs), dtype=bool)
        with obs_scope("env/reset"):
            for k, env in enumerate(self.envs):
                env.reset_state(None if seeds is None else int(seeds[k]))
                env.encode_observations(ugv_obs, uav_obs, k)
                actionable[k] = env._actionable()
        self._needs_reset[:] = False
        return VecStepResult(
            ugv_obs=ugv_obs, uav_obs=uav_obs,
            ugv_rewards=np.zeros((self.num_envs, cfg.num_ugvs)),
            uav_rewards=np.zeros((self.num_envs, cfg.num_uavs)),
            ugv_actionable=actionable,
            dones=np.zeros(self.num_envs, dtype=bool),
            infos=[{} for _ in self.envs])

    def step(self, ugv_actions: np.ndarray, uav_actions: np.ndarray,
             reset_on_done: bool = True) -> VecStepResult:
        """Step all replicas; auto-reset finished ones (per-replica).

        Parameters
        ----------
        ugv_actions:
            ``(K, U)`` ints; rows for waiting UGVs are ignored.
        uav_actions:
            ``(K, V, 2)`` movement deltas in metres; rows for docked UAVs
            are ignored.
        reset_on_done:
            With False a finishing replica is left in its terminal state
            (marked pending-reset) instead of auto-resetting — used by
            rollout drivers on the final step of a collect window so the
            per-replica rng streams match sequential episode boundaries.
        """
        if self._needs_reset.any():
            raise RuntimeError("replicas finished without auto-reset; call reset()")
        cfg = self.config
        ugv_actions = np.asarray(ugv_actions, dtype=int)
        uav_actions = np.asarray(uav_actions, dtype=float)
        if ugv_actions.shape != (self.num_envs, cfg.num_ugvs):
            raise ValueError(f"expected UGV actions of shape "
                             f"{(self.num_envs, cfg.num_ugvs)}, got {ugv_actions.shape}")
        if uav_actions.shape != (self.num_envs, cfg.num_uavs, 2):
            raise ValueError(f"expected UAV actions of shape "
                             f"{(self.num_envs, cfg.num_uavs, 2)}, got {uav_actions.shape}")

        ugv_obs, uav_obs = self._next_buffers()
        ugv_rewards = np.zeros((self.num_envs, cfg.num_ugvs))
        uav_rewards = np.zeros((self.num_envs, cfg.num_uavs))
        actionable = np.zeros((self.num_envs, cfg.num_ugvs), dtype=bool)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: list[dict] = []
        with obs_scope("env/step"):
            for k, env in enumerate(self.envs):
                ugv_r, uav_r, done, collected = env.step_dynamics(
                    ugv_actions[k], uav_actions[k])
                ugv_rewards[k] = ugv_r
                uav_rewards[k] = uav_r
                dones[k] = done
                info = {"t": env.t, "collected_this_step": collected}
                if done:
                    info["final_metrics"] = env.metrics()
                    if reset_on_done:
                        env.reset_state()  # unseeded: continue the rng stream
                    else:
                        self._needs_reset[k] = True
                infos.append(info)
                env.encode_observations(ugv_obs, uav_obs, k)
                actionable[k] = env._actionable()
        counter_add("env/steps", self.num_envs)
        if dones.any():
            counter_add("env/episodes", int(dones.sum()))
        return VecStepResult(ugv_obs=ugv_obs, uav_obs=uav_obs,
                             ugv_rewards=ugv_rewards, uav_rewards=uav_rewards,
                             ugv_actionable=actionable, dones=dones, infos=infos)

    # ------------------------------------------------------------------
    def rng_states(self) -> list[dict]:
        """Per-replica rng snapshots (replica 0 first).

        Captured at collect-window boundaries, these pin down every
        replica's continuation stream — including the ``replica_seed``
        striding baked into each replica's ``_seed`` and the auto-reset
        continuation position (auto-resets are unseeded, so the stream
        position encodes them).
        """
        return [env.rng_state() for env in self.envs]

    def set_rng_states(self, states: list[dict]) -> None:
        """Restore snapshots captured by :meth:`rng_states`."""
        if len(states) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} rng states, "
                             f"got {len(states)}")
        for env, state in zip(self.envs, states):
            env.set_rng_state(state)

    def state_digests(self) -> list[str]:
        """Per-replica state digests (see ``AirGroundEnv.state_digest``).

        Replica order is part of the contract: ``repro check-determinism``
        compares these positionally, so a replica swap — ordering
        nondeterminism in a future worker pool — shows up as a diff even
        when the multiset of replica states matches.
        """
        return [env.state_digest() for env in self.envs]

    # ------------------------------------------------------------------
    def metrics(self) -> MetricSnapshot:
        """Batched reduction: mean of every replica's current metrics."""
        return MetricSnapshot.mean(env.metrics() for env in self.envs)

    def metrics_per_env(self) -> list[MetricSnapshot]:
        """Each replica's current metrics, in replica order."""
        return [env.metrics() for env in self.envs]
