"""The air-ground spatial-crowdsourcing environment (Section III).

``AirGroundEnv`` is a time-slotted Dec-POMDP.  Each timeslot:

1. Every *idle* UGV either moves to a reachable stop or releases its
   carried UAVs (action index ``B`` = release; ``0..B-1`` = target stop).
2. Airborne UAVs fly a continuous 2-D step (clipped to ``δ_max^v`` and to
   remaining battery), blocked by building obstacles (a crash attempt
   leaves the UAV in place and incurs the ``r^{v-}`` penalty).
3. UAVs collect data from every sensor within sensing range, capped at
   the per-sensor collection rate.
4. UAVs whose battery is empty dock early; when the release window ends,
   all of a UGV's UAVs dock and recharge to ``e_0``.
5. Rewards follow Eqns. (12)-(13); metrics follow Eqns. (3)-(7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..maps.campus import CampusMap
from ..maps.stop_graph import StopGraph, build_stop_graph
from .config import EnvConfig
from .entities import UAV, UGV, Sensor
from .events import EventLog
from .metrics import MetricSnapshot, collection_ratio, cooperation_factor, energy_ratio, jain_fairness
from .observation import ObservationBuilder, UAVObservation, UGVObservation

__all__ = ["AirGroundEnv", "StepResult"]

# Shared "no movement" delta for docked/passive UAVs; never mutated
# (every consumer rebinds, so one instance serves all steps).
_ZERO_DELTA = np.zeros(2)


@dataclass
class StepResult:
    """Everything one environment step returns."""

    ugv_observations: list[UGVObservation]
    uav_observations: list[UAVObservation | None]
    ugv_rewards: np.ndarray
    uav_rewards: np.ndarray
    ugv_actionable: np.ndarray  # bool (U,): which UGVs act next timeslot
    done: bool
    info: dict = field(default_factory=dict)


class AirGroundEnv:
    """Air-ground SC task with UAV carriers on a campus map."""

    RELEASE = "release"

    def __init__(self, campus: CampusMap, config: EnvConfig | None = None,
                 stops: StopGraph | None = None, seed: int = 0,
                 data_weights: np.ndarray | None = None,
                 builder: ObservationBuilder | None = None):
        self.campus = campus
        self.config = config or EnvConfig()
        self.stops = stops or build_stop_graph(campus, self.config.stop_interval)
        # Replicas of a VecAirGroundEnv share one builder (it is stateless
        # apart from precomputed rasters/coverage, which depend only on the
        # campus/stops/config triple).
        self.builder = builder or ObservationBuilder(campus, self.stops, self.config)
        self._seed = seed
        self.rng = np.random.default_rng(seed)
        # Optional per-sensor multipliers on the drawn d_0 (scenario
        # modelling, e.g. a disaster zone holding more data to collect).
        if data_weights is not None:
            data_weights = np.asarray(data_weights, dtype=float)
            if data_weights.shape != (campus.num_sensors,):
                raise ValueError(f"data_weights must have shape ({campus.num_sensors},)")
            if (data_weights <= 0).any():
                raise ValueError("data_weights must be positive")
        self._data_weights = data_weights
        self._event_log: EventLog | None = None

        self.sensors: list[Sensor] = []
        self.ugvs: list[UGV] = []
        self.uavs: list[UAV] = []
        self.t = 0
        self._last_seen = np.zeros((self.config.num_ugvs, self.stops.num_stops))
        self._seen_mask = np.zeros_like(self._last_seen, dtype=bool)
        self._data_scale = 1.0
        self._sensor_scale = 1.0
        self._initial_data = np.zeros(campus.num_sensors)
        # Sensor positions are static and per-sensor `remaining` only
        # mutates at the drain site, so both live in preallocated arrays
        # kept in sync with the Sensor objects by assignment (never
        # arithmetic) — bit-identical to a per-step rebuild.
        self._sensor_positions = np.array(campus.sensor_positions, dtype=float)
        self._sensor_remaining = np.zeros(campus.num_sensors)

    # ------------------------------------------------------------------
    def rng_state(self) -> dict:
        """JSON-able snapshot of the env's rng stream (seed + position).

        Checkpointing captures this at episode boundaries: simulation
        state is rebuilt by ``reset_state()`` from the rng stream, so the
        stream position *is* the env's resumable state.
        """
        from ..nn.serialize import rng_state as _rng_state

        return {"seed": self._seed, "bit_generator": _rng_state(self.rng)}

    def set_rng_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`rng_state`."""
        from ..nn.serialize import rng_from_state

        self._seed = state["seed"]
        self.rng = rng_from_state(state["bit_generator"])

    def state_digest(self) -> str:
        """Byte-exact digest of the env's resumable + kinematic state.

        Covers the rng stream position, the timeslot, and every entity's
        live state (UGV/UAV positions, batteries, sensor data levels) —
        two envs with equal digests step identically from here on.  Used
        by ``repro check-determinism`` to fingerprint iterations.
        """
        from ..nn.serialize import state_digest

        # UGV/UAV kinematic state mutates every timeslot, and this digest
        # only runs on the check-determinism diagnostic path, so the
        # rebuilds below are not per-step training cost.
        return state_digest({
            "rng": self.rng_state(),
            "t": int(self.t),
            "ugv_pos": np.array([ugv.position for ugv in self.ugvs]),  # reprolint: disable=PF001
            "uav_pos": np.array([uav.position for uav in self.uavs]),  # reprolint: disable=PF001
            "uav_energy": np.array([uav.energy for uav in self.uavs]),  # reprolint: disable=PF001
            "sensor_data": self._sensor_remaining,
        })

    # ------------------------------------------------------------------
    def attach_event_log(self, log: EventLog | None) -> None:
        """Attach (or detach with None) a structured event log."""
        self._event_log = log

    def _emit(self, kind: str, agent: int, value: float = 0.0, position=None) -> None:
        if self._event_log is not None:
            self._event_log.emit(self.t, kind, agent, value, position)

    @property
    def num_stops(self) -> int:
        """Number of stops in the shared stop graph."""
        return self.stops.num_stops

    @property
    def ugv_action_dim(self) -> int:
        """Discrete UGV action space size: one per stop + release."""
        return self.stops.num_stops + 1

    @property
    def release_action(self) -> int:
        """The UGV action index meaning "release/recall UAVs here"."""
        return self.stops.num_stops

    def uavs_of(self, ugv_index: int) -> list[UAV]:
        """The UAVs carried by (assigned to) UGV ``ugv_index``."""
        v = self.config.num_uavs_per_ugv
        return self.uavs[ugv_index * v:(ugv_index + 1) * v]

    # ------------------------------------------------------------------
    def reset(self, seed: int | None = None) -> StepResult:
        """Start a fresh episode; sensors draw d_0 ~ U[min, max] GB."""
        self.reset_state(seed)
        cfg = self.config
        return StepResult(
            ugv_observations=self._ugv_observations(),
            uav_observations=self._uav_observations(),
            ugv_rewards=np.zeros(cfg.num_ugvs),
            uav_rewards=np.zeros(cfg.num_uavs),
            ugv_actionable=self._actionable(),
            done=False,
            info={"metrics": self.metrics().as_dict(), "t": self.t},
        )

    def reset_state(self, seed: int | None = None) -> None:
        """Reset the simulation state without building observations.

        Called without a seed the current rng stream continues — exactly
        what a fresh :meth:`reset` does mid-training, which is what keeps
        vec-env auto-resets equivalent to sequential multi-episode runs.
        """
        if seed is not None:
            self._seed = seed
            self.rng = np.random.default_rng(seed)
        cfg = self.config

        self._initial_data = self.rng.uniform(
            cfg.sensor_data_min, cfg.sensor_data_max, size=self.campus.num_sensors)
        if self._data_weights is not None:
            self._initial_data = self._initial_data * self._data_weights
        self.sensors = [
            Sensor(i, self.campus.sensor_positions[i], float(self._initial_data[i]))
            for i in range(self.campus.num_sensors)
        ]
        self._sensor_remaining = self._initial_data.copy()
        self._sensor_scale = float(self._initial_data.max())
        self._data_scale = self.builder.data_scale(self._initial_data)

        centre_stop = self.stops.nearest_stop(self.campus.center)
        centre_pos = self.stops.positions[centre_stop]
        self.ugvs = [UGV(u, centre_stop, centre_pos.copy()) for u in range(cfg.num_ugvs)]
        self.uavs = []
        for u in range(cfg.num_ugvs):
            for k in range(cfg.num_uavs_per_ugv):
                self.uavs.append(UAV(u * cfg.num_uavs_per_ugv + k, u,
                                     centre_pos.copy(), cfg.uav_energy, cfg.uav_energy))

        self.t = 0
        self._last_seen = np.zeros((cfg.num_ugvs, self.stops.num_stops))
        self._seen_mask = np.zeros_like(self._last_seen, dtype=bool)
        self._refresh_knowledge()
        self._emit("reset", -1)

    # ------------------------------------------------------------------
    def step(self, ugv_actions, uav_actions) -> StepResult:
        """Advance one timeslot.

        Parameters
        ----------
        ugv_actions:
            Sequence of ``U`` ints in ``[0, B]``; ignored for waiting UGVs.
        uav_actions:
            Sequence of ``V`` items; airborne UAVs read a 2-vector
            movement (metres), docked UAVs may pass ``None``.
        """
        ugv_rewards, uav_rewards, done, collected = self.step_dynamics(
            ugv_actions, uav_actions)
        return StepResult(
            ugv_observations=self._ugv_observations(),
            uav_observations=self._uav_observations(),
            ugv_rewards=ugv_rewards,
            uav_rewards=uav_rewards,
            ugv_actionable=self._actionable(),
            done=done,
            info={"metrics": self.metrics().as_dict(), "t": self.t,
                  "collected_this_step": collected},
        )

    def step_dynamics(self, ugv_actions, uav_actions) -> tuple[np.ndarray, np.ndarray, bool, float]:
        """Advance the simulation one timeslot without building observations.

        Returns ``(ugv_rewards, uav_rewards, done, collected)``; the vec-env
        hot path pairs this with the array observation encoders so no
        per-agent dataclasses (or per-step metric dicts) are constructed.
        """
        cfg = self.config
        if self.t >= cfg.episode_len:
            raise RuntimeError("episode already finished; call reset()")
        ugv_actions = np.asarray(ugv_actions, dtype=int)
        if ugv_actions.shape != (cfg.num_ugvs,):
            raise ValueError(f"expected {cfg.num_ugvs} UGV actions, got {ugv_actions.shape}")
        if len(uav_actions) != cfg.num_uavs:
            raise ValueError(f"expected {cfg.num_uavs} UAV actions, got {len(uav_actions)}")

        # -- 1. UGV decisions ------------------------------------------
        for ugv, action in zip(self.ugvs, ugv_actions):
            if ugv.is_waiting:
                continue
            if action == self.release_action:
                ugv.begin_release(cfg.release_duration)
                self._emit("release", ugv.index, position=ugv.position)
                for uav in self.uavs_of(ugv.index):
                    uav.launch(ugv.position)
            else:
                self._move_ugv(ugv, int(action))

        # -- 2. UAV flight ----------------------------------------------
        crashed = np.zeros(cfg.num_uavs, dtype=bool)
        flown = np.zeros(cfg.num_uavs)
        for uav, action in zip(self.uavs, uav_actions):
            if not uav.airborne:
                continue
            delta = _ZERO_DELTA if action is None else np.asarray(action, dtype=float).reshape(2)
            flown[uav.index], crashed[uav.index] = self._fly_uav(uav, delta)

        # -- 3. Collection ----------------------------------------------
        collected = self._collect_data()

        # -- 4. Rewards (before docking so flight state is still known) --
        uav_rewards = self._uav_rewards(collected, flown, crashed)
        ugv_rewards = self._ugv_rewards(collected)

        # -- 5. Docking / recharge --------------------------------------
        for uav in self.uavs:
            if uav.airborne and uav.exhausted:
                self._emit("dock", uav.index, uav.flight_collected, uav.position)
                uav.dock(self.ugvs[uav.carrier].position)
        for ugv in self.ugvs:
            window_closed = ugv.tick_wait()
            if window_closed:
                for uav in self.uavs_of(ugv.index):
                    if uav.airborne:
                        self._emit("dock", uav.index, uav.flight_collected, uav.position)
                        uav.dock(ugv.position)

        # -- 6. Knowledge refresh + time --------------------------------
        self._refresh_knowledge()
        self.t += 1
        done = self.t >= cfg.episode_len
        return ugv_rewards, uav_rewards, done, float(collected.sum())

    # ------------------------------------------------------------------
    # Internal mechanics
    # ------------------------------------------------------------------
    def _move_ugv(self, ugv: UGV, target: int) -> None:
        """Move along roads to ``target`` if reachable this slot, else stay."""
        if not (0 <= target < self.stops.num_stops):
            raise ValueError(f"invalid stop index {target}")
        distance = self.stops.metre_distances()[ugv.stop, target]
        if target == ugv.stop:
            return
        if distance <= self.config.ugv_max_step:
            ugv.move_to(target, self.stops.positions[target], float(distance))
            # Docked UAVs ride on their carrier.
            for uav in self.uavs_of(ugv.index):
                if not uav.airborne:
                    uav.position = ugv.position.copy()
            self._emit("move", ugv.index, float(distance), ugv.position)
        # Unreachable targets are treated as "stay" (the action mask
        # prevents trained policies from selecting them).

    def _fly_uav(self, uav: UAV, delta: np.ndarray) -> tuple[float, bool]:
        """Apply one UAV movement; returns (metres flown, crashed?)."""
        cfg = self.config
        norm = float(np.linalg.norm(delta))
        budget = min(cfg.uav_max_step, uav.energy / cfg.energy_per_metre)
        if norm > budget and norm > 0:
            delta = delta * (budget / norm)
            norm = budget
        if norm < 1e-9:
            return 0.0, False
        target = uav.position + delta
        target[0] = float(np.clip(target[0], 0.0, self.campus.width))
        target[1] = float(np.clip(target[1], 0.0, self.campus.height))
        if self.campus.segment_hits_building(uav.position, target):
            uav.crashes += 1
            self._emit("crash", uav.index, position=uav.position)
            return 0.0, True
        metres = float(np.linalg.norm(target - uav.position))
        uav.fly(target, metres, cfg.energy_per_metre)
        return metres, False

    def _collect_data(self) -> np.ndarray:
        """Each airborne UAV drains sensors within range; returns per-UAV GB."""
        cfg = self.config
        collected = np.zeros(cfg.num_uavs)
        positions = self._sensor_positions
        # Airborne UAVs are few and sensing ranges overlap, so the
        # all-sensors distance scan stays; a grid hash is the documented
        # follow-up for paper-scale fleets (ROADMAP).
        for uav in self.uavs:
            if not uav.airborne:
                continue
            gaps = np.hypot(positions[:, 0] - uav.position[0],  # reprolint: disable=PF004
                            positions[:, 1] - uav.position[1])
            for p in np.nonzero(gaps <= cfg.sensing_range)[0]:
                sensor = self.sensors[int(p)]
                taken = sensor.drain(cfg.collect_rate)
                # Sync the cache at the lone mutation site (assignment of
                # the same float keeps it bit-identical to a rebuild).
                self._sensor_remaining[int(p)] = sensor.remaining
                if taken > 0:
                    collected[uav.index] += taken
                    uav.record_collection(taken)
                    self._emit("collect", uav.index, taken, uav.position)
        return collected

    def _uav_rewards(self, collected: np.ndarray, flown: np.ndarray,
                     crashed: np.ndarray) -> np.ndarray:
        """Eqn. (13): fairness-weighted collection per energy, minus crashes."""
        cfg = self.config
        xi_t = jain_fairness(self._initial_data, self._remaining(), cfg.epsilon)
        rewards = np.zeros(cfg.num_uavs)
        for uav in self.uavs:
            if not uav.airborne:
                continue
            v = uav.index
            positive = xi_t * collected[v] / (cfg.energy_per_metre * flown[v] + cfg.epsilon)
            rewards[v] = float(np.clip(positive, 0.0, cfg.reward_clip))
            if crashed[v]:
                rewards[v] -= cfg.crash_penalty
        return rewards

    def _ugv_rewards(self, collected: np.ndarray) -> np.ndarray:
        """Eqn. (12): a releasing/waiting UGV earns its UAVs' collection."""
        rewards = np.zeros(self.config.num_ugvs)
        for ugv in self.ugvs:
            if ugv.is_waiting:
                rewards[ugv.index] = sum(collected[u.index] for u in self.uavs_of(ugv.index))
        return rewards

    def _refresh_knowledge(self) -> None:
        """UGVs refresh d̂ for stops near them (the masking rule of Eqn. 9b)."""
        per_stop = self.builder.stop_data(self._remaining())
        for ugv in self.ugvs:
            visible = self.builder.refresh[ugv.stop]
            self._last_seen[ugv.index, visible] = per_stop[visible]
            self._seen_mask[ugv.index, visible] = True

    def _remaining(self) -> np.ndarray:
        """Per-sensor remaining data, as the live preallocated cache.

        Returned by reference: every consumer (metrics, fairness,
        knowledge refresh, rasters) is read-only.
        """
        return self._sensor_remaining

    # ------------------------------------------------------------------
    # Observations and metrics
    # ------------------------------------------------------------------
    def _actionable(self) -> np.ndarray:
        """Boolean (U,): which UGVs act next timeslot (not holding a release)."""
        # O(U) bool gather with U <= 8; wait flags flip at three sites, so
        # a cache buys nothing over the rebuild.
        return np.array([not g.is_waiting for g in self.ugvs])  # reprolint: disable=PF001

    def encode_observations(self, ugv_out, uav_out, idx=()) -> None:
        """Write current observations into array slots (see UGV/UAVObsArrays)."""
        self.builder.encode_ugv_batch(self.ugvs, self._last_seen, self._seen_mask,
                                      self._data_scale, ugv_out, idx)
        self.builder.encode_uav_batch(self.uavs, self.ugvs, self._sensor_remaining,
                                      self._sensor_scale, uav_out, idx)

    def _ugv_observations(self) -> list[UGVObservation]:
        return [
            self.builder.ugv_observation(u, self.ugvs, self._last_seen[u],
                                         self._seen_mask[u], self._data_scale)
            for u in range(self.config.num_ugvs)
        ]

    def _uav_observations(self) -> list[UAVObservation | None]:
        data_raster, presence = self.builder.global_rasters(
            self._sensor_remaining, self.uavs, self._sensor_scale)
        out: list[UAVObservation | None] = []
        for uav in self.uavs:
            if not uav.airborne:
                out.append(None)
                continue
            carrier = self.ugvs[uav.carrier]
            out.append(self.builder.uav_observation(
                uav, carrier, carrier.wait_timer, data_raster, presence))
        return out

    def metrics(self) -> MetricSnapshot:
        """Current values of ψ, ξ, ζ, β (Eqns. 3-6)."""
        remaining = self._remaining()
        psi = collection_ratio(self._initial_data, remaining)
        xi = jain_fairness(self._initial_data, remaining, self.config.epsilon)
        # Metric snapshots run on the reporting path (the vec hot path
        # uses step_dynamics, which skips per-step metric dicts).
        zeta = cooperation_factor(
            np.array([u.releases for u in self.uavs]),  # reprolint: disable=PF001
            np.array([u.effective_releases for u in self.uavs]))  # reprolint: disable=PF001
        spent = sum(u.energy_spent for u in self.uavs)
        charged = sum(u.energy_charged for u in self.uavs)
        beta = energy_ratio(spent, self.config.uav_energy * self.config.num_uavs, charged)
        return MetricSnapshot(psi, xi, zeta, beta)
