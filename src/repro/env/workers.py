"""Multi-process rollout workers: shard env replicas across CPU cores.

:class:`WorkerVecEnv` is a ``SubprocVecEnv``-style worker pool that
duck-types :class:`~repro.env.vector.VecAirGroundEnv`: K replicas are
partitioned contiguously over W OS processes, each worker stepping its
slice of :class:`~repro.env.airground.AirGroundEnv` replicas while the
parent process keeps every policy forward (centralised-policy layout —
the learner samples actions for all replicas in one batched forward,
workers only advance env dynamics and encode observations).

Design points:

* **Shared-memory observations.**  The ``UGVObsArrays`` / ``UAVObsArrays``
  struct-of-arrays layout is allocated once in ``multiprocessing``
  shared memory, double-buffered exactly like the in-process vec env
  (``(2, K, ...)`` with a parity bit), and workers write their replica
  rows in place — the hot path pickles only a few-byte command tuple
  per worker per step, never an observation.
* **Bitwise equivalence.**  Replica ``k`` seeds with
  :func:`~repro.env.vector.replica_seed` regardless of which worker owns
  it, and the learner's sampling rng never moves between processes, so
  ``workers=W`` reproduces the in-process ``VecAirGroundEnv`` stream
  sample-for-sample for *any* W (pinned by ``tests/env/test_workers.py``).
* **Async reset prefetch.**  At a collect-window boundary the pool
  snapshots per-replica rng states (what checkpoints store), then
  dispatches the next window's unseeded reset without waiting — workers
  reset and encode while the learner runs its PPO update.  Because the
  snapshot precedes the prefetched reset, a resumed run replays the
  same reset draws and stays byte-for-byte on the uninterrupted run's
  telemetry (see ``docs/parallelism.md``).
* **Fork/spawn safety.**  Workers bootstrap through
  :func:`reset_worker_process_state`, which clears every known piece of
  inheritable process state (tape tracer, profiler, compiled-plan
  caches, campus cache); the same resets are registered as
  ``os.register_at_fork`` hooks in the owning modules, so even a raw
  ``fork`` cannot leak parent singletons into a worker.  The audit of
  what crosses the fork boundary lives in the determinism shared-state
  map (``repro.analysis.determinism.sharedstate``).
* **Fail loudly, never hang.**  Workers trap exceptions and ship the
  traceback to the learner; the learner waits on the pipe *and* the
  process sentinel, so a worker that dies without a message (OOM kill,
  segfault) raises :class:`WorkerError` instead of deadlocking.
"""

from __future__ import annotations

import ctypes
import multiprocessing as mp
import os
import signal
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait

import numpy as np

from ..obs.scope import counter_add, histogram_observe, scope as obs_scope
from .airground import AirGroundEnv
from .metrics import MetricSnapshot
from .observation import ObservationBuilder, UAVObsArrays, UGVObsArrays
from .vector import VecStepResult, replica_seed

__all__ = ["WorkerVecEnv", "WorkerError", "reset_worker_process_state"]

# Worker liveness timeout for shutdown joins (seconds); workers are
# daemons, so a stuck worker cannot outlive the learner either way.
_JOIN_TIMEOUT = 5.0

_CTYPES = {"f8": ctypes.c_double, "i8": ctypes.c_int64, "b1": ctypes.c_bool}
_DTYPES = {"f8": np.float64, "i8": np.int64, "b1": np.bool_}


def reset_worker_process_state() -> None:
    """Clear every piece of parent state a rollout worker must not inherit.

    Idempotent and cheap: uninstalls any live tape trace and profiler,
    empties all compiled-plan caches and the campus/stop-graph cache.
    Called first thing in every worker (fork *and* spawn — under spawn
    the process is fresh and this is a no-op by construction; under fork
    it doubles the ``os.register_at_fork`` hooks those modules install,
    so the bootstrap stays correct even if a hook is ever missed).
    """
    from ..nn import compile as _nn_compile
    from ..nn import tracer as _tracer
    from ..obs import scope as _scope

    _tracer._ACTIVE = None
    _scope._ACTIVE = None
    _nn_compile.clear_plan_caches()
    try:  # experiments layer may not be imported in minimal workers
        from ..experiments.runner import campus_cache_clear
    except ImportError:  # pragma: no cover - circular-import guard
        return
    campus_cache_clear()


class WorkerError(RuntimeError):
    """A rollout worker crashed; the message carries its traceback."""


# ----------------------------------------------------------------------
# Shared-memory layout
# ----------------------------------------------------------------------
def _buffer_specs(k: int, u: int, v: int, b: int, s: int) -> list[tuple[str, str, tuple[int, ...]]]:
    """(name, dtype-code, shape) for every shared array.

    Observation fields (and the actionable mask, which the rollout
    driver reads one step later) are double-buffered with a leading
    parity axis, mirroring ``VecAirGroundEnv``'s two-buffer scheme; step
    rewards/flags and the action inputs are single-buffered because both
    sides consume them within the same step round-trip.
    """
    return [
        ("ugv_stop_features", "f8", (2, k, u, b, 3)),
        ("ugv_positions", "f8", (2, k, u, 2)),
        ("ugv_stops", "i8", (2, k, u)),
        ("ugv_action_mask", "b1", (2, k, u, b + 1)),
        ("uav_grid", "f8", (2, k, v, 3, s, s)),
        ("uav_aux", "f8", (2, k, v, 5)),
        ("uav_airborne", "b1", (2, k, v)),
        ("ugv_actionable", "b1", (2, k, u)),
        ("ugv_rewards", "f8", (k, u)),
        ("uav_rewards", "f8", (k, v)),
        ("dones", "b1", (k,)),
        ("info_t", "i8", (k,)),
        ("info_collected", "f8", (k,)),
        ("act_ugv", "i8", (k, u)),
        ("act_uav", "f8", (k, v, 2)),
    ]


def _allocate_shared(specs) -> dict[str, object]:
    """RawArray per spec — unsynchronised by design: writers never overlap
    (workers own disjoint replica rows; parent writes actions only while
    workers idle between commands)."""
    return {name: mp.RawArray(_CTYPES[code], int(np.prod(shape)))
            for name, code, shape in specs}


def _shared_views(raws: dict, specs) -> dict[str, np.ndarray]:
    """Numpy views over the shared buffers (no copies, both processes)."""
    return {name: np.frombuffer(raws[name], dtype=_DTYPES[code]).reshape(shape)
            for name, code, shape in specs}


def _obs_wrappers(views: dict) -> list[tuple[UGVObsArrays, UAVObsArrays]]:
    """Per-parity ``(K, ...)`` obs-array wrappers over the shared views."""
    return [
        (UGVObsArrays(stop_features=views["ugv_stop_features"][p],
                      ugv_positions=views["ugv_positions"][p],
                      ugv_stops=views["ugv_stops"][p],
                      action_mask=views["ugv_action_mask"][p]),
         UAVObsArrays(grid=views["uav_grid"][p], aux=views["uav_aux"][p],
                      airborne=views["uav_airborne"][p]))
        for p in range(2)
    ]


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass
class _WorkerSpec:
    """Everything a worker needs to rebuild its replica slice (pickled once)."""

    campus: object
    config: object
    stops: object
    base_seed: int
    data_weights: np.ndarray | None
    specs: list
    lo: int  # first owned replica (global index, inclusive)
    hi: int  # one past the last owned replica


def _worker_main(conn, spec: _WorkerSpec, raws: dict) -> None:
    """Worker entrypoint: build the replica slice, serve step commands.

    Runs in a child process (fork or spawn).  Every command is a small
    tuple; bulk data moves through the shared arrays only.  Exceptions
    are trapped and shipped to the learner as ``("error", traceback)``
    before the worker exits — the learner re-raises, nobody hangs.
    """
    reset_worker_process_state()
    # The learner owns interrupt handling: a Ctrl-C (SIGINT goes to the
    # whole process group) must not kill workers mid-checkpoint, and
    # SIGTERM keeps its default action so the learner's graceful-exit
    # path tears workers down itself.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    views = _shared_views(raws, spec.specs)
    buffers = _obs_wrappers(views)
    builder = ObservationBuilder(spec.campus, spec.stops, spec.config)
    envs = [AirGroundEnv(spec.campus, spec.config, stops=spec.stops,
                         seed=replica_seed(spec.base_seed, k),
                         data_weights=spec.data_weights, builder=builder)
            for k in range(spec.lo, spec.hi)]
    crash_armed = False

    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):  # learner went away
            return
        op = cmd[0]
        try:
            if op == "close":
                conn.send(("ok", 0.0, None))
                return
            t0 = time.perf_counter()
            extra = None
            if op == "step":
                _, parity, reset_on_done = cmd
                if crash_armed:
                    raise RuntimeError("injected worker crash (test hook)")
                extra = _worker_step(envs, spec, views, buffers[parity],
                                     parity, reset_on_done)
            elif op == "reset":
                _, seeds, parity = cmd
                ugv_out, uav_out = buffers[parity]
                for i, env in enumerate(envs):
                    env.reset_state(None if seeds is None else int(seeds[i]))
                    k = spec.lo + i
                    env.encode_observations(ugv_out, uav_out, k)
                    views["ugv_actionable"][parity][k] = env._actionable()
            elif op == "rng_states":
                extra = [env.rng_state() for env in envs]
            elif op == "set_rng_states":
                for env, state in zip(envs, cmd[1]):
                    env.set_rng_state(state)
            elif op == "set_rng_state_one":
                envs[cmd[1]].set_rng_state(cmd[2])
            elif op == "state_digests":
                extra = [env.state_digest() for env in envs]
            elif op == "metrics":
                extra = [env.metrics() for env in envs]
            elif op == "probe":
                extra = _probe_process_state()
            elif op == "arm_crash":
                crash_armed = True
            else:
                raise ValueError(f"unknown worker command {op!r}")
            conn.send(("ok", time.perf_counter() - t0, extra))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            finally:
                return


def _worker_step(envs, spec, views, parity_buffers, parity, reset_on_done):
    """Step this worker's replicas; returns per-done final metrics."""
    ugv_out, uav_out = parity_buffers
    act_ugv = views["act_ugv"]
    act_uav = views["act_uav"]
    actionable = views["ugv_actionable"][parity]
    finals: list[tuple[int, MetricSnapshot]] = []
    for i, env in enumerate(envs):
        k = spec.lo + i
        ugv_r, uav_r, done, collected = env.step_dynamics(act_ugv[k], act_uav[k])
        views["ugv_rewards"][k] = ugv_r
        views["uav_rewards"][k] = uav_r
        views["dones"][k] = done
        views["info_t"][k] = env.t
        views["info_collected"][k] = collected
        if done:
            finals.append((k, env.metrics()))
            if reset_on_done:
                env.reset_state()  # unseeded: continue the rng stream
        env.encode_observations(ugv_out, uav_out, k)
        actionable[k] = env._actionable()
    return finals


def _probe_process_state() -> dict:
    """Snapshot of inheritable state, for the fork-safety regression test."""
    from ..nn import compile as _nn_compile
    from ..nn import tracer as _tracer
    from ..obs import scope as _scope

    plans = sum(len(step.plans) for step in _nn_compile._COMPILED_STEPS)
    try:
        from ..experiments import runner as _runner
        campus_entries = len(_runner._CAMPUS_CACHE)
    except ImportError:  # pragma: no cover
        campus_entries = 0
    return {
        "pid": os.getpid(),
        "tracer_active": _tracer._ACTIVE is not None,
        "profiler_active": _scope._ACTIVE is not None,
        "compiled_plans": plans,
        "campus_cache_entries": campus_entries,
    }


# ----------------------------------------------------------------------
# Learner-side pool
# ----------------------------------------------------------------------
class WorkerVecEnv:
    """K env replicas sharded over W worker processes (VecEnv duck type).

    Drop-in for :class:`~repro.env.vector.VecAirGroundEnv` on the
    vectorized collect path: same ``reset``/``step`` result structures,
    same rng-state surface, same seed striding — plus
    :meth:`prefetch_reset` for overlapping the next window's reset with
    the learner's update, and explicit :meth:`close` for shutdown.

    ``env`` becomes the template for replica 0 (its campus/stops/config
    and current rng stream carry over, exactly like
    ``VecAirGroundEnv.from_env``); the parent copy itself is never
    stepped.  ``start_method`` defaults to ``fork`` where available
    (cheapest, and made safe by the at-fork hooks +
    :func:`reset_worker_process_state`), falling back to ``spawn``.
    """

    def __init__(self, env: AirGroundEnv, num_envs: int, num_workers: int,
                 start_method: str | None = None):
        if num_envs < 1:
            raise ValueError("WorkerVecEnv needs at least one replica")
        if not 1 <= num_workers <= num_envs:
            raise ValueError(f"num_workers must be in [1, num_envs={num_envs}], "
                             f"got {num_workers}")
        self.config = env.config
        self.num_envs = num_envs
        self.num_workers = num_workers
        self.num_stops = env.num_stops
        self._template = env

        cfg = env.config
        specs = _buffer_specs(num_envs, cfg.num_ugvs, cfg.num_uavs,
                              env.num_stops, cfg.uav_obs_size)
        self._raws = _allocate_shared(specs)
        self._views = _shared_views(self._raws, specs)
        self._buffers = _obs_wrappers(self._views)
        self._parity = 0
        self._needs_reset = np.ones(num_envs, dtype=bool)
        self._pending_parity: int | None = None  # prefetched reset target
        self._pending_acked = False
        self._cached_rng_states: list[dict] | None = None
        self._closed = False

        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        ctx = mp.get_context(start_method)
        base, rem = divmod(num_envs, num_workers)
        self._bounds: list[tuple[int, int]] = []
        self._conns = []
        self._procs = []
        lo = 0
        for w in range(num_workers):
            hi = lo + base + (1 if w < rem else 0)
            spec = _WorkerSpec(campus=env.campus, config=cfg, stops=env.stops,
                               base_seed=env._seed,
                               data_weights=env._data_weights,
                               specs=specs, lo=lo, hi=hi)
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, spec, self._raws),
                               name=f"repro-rollout-worker-{w}", daemon=True)
            proc.start()
            child_conn.close()
            self._bounds.append((lo, hi))
            self._conns.append(parent_conn)
            self._procs.append(proc)
            lo = hi
        # Replica 0 adopts the template env's *current* stream position
        # (a fresh env makes this a no-op; an advanced one matches
        # VecAirGroundEnv.from_env, where env itself is replica 0).
        self._send(0, ("set_rng_state_one", 0, env.rng_state()))
        self._recv(0)

    # -- plumbing -------------------------------------------------------
    def _send(self, w: int, msg: tuple) -> None:
        try:
            self._conns[w].send(msg)
        except (BrokenPipeError, OSError):
            self._raise_worker_failure(w)

    def _recv(self, w: int):
        """One ack from worker ``w``; raises WorkerError on crash, never hangs."""
        conn, proc = self._conns[w], self._procs[w]
        while True:
            ready = _conn_wait([conn, proc.sentinel])
            if conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._raise_worker_failure(w)
                if msg[0] == "error":
                    self._terminate_all()
                    raise WorkerError(
                        f"rollout worker {w} crashed:\n{msg[1]}")
                return msg[1], msg[2]
            if proc.sentinel in ready and not conn.poll():
                self._raise_worker_failure(w)

    def _raise_worker_failure(self, w: int) -> None:
        """Dead pipe/process: surface any parting error, then raise."""
        conn, proc = self._conns[w], self._procs[w]
        detail = f"exit code {proc.exitcode}"
        try:
            if conn.poll():
                msg = conn.recv()
                if msg[0] == "error":
                    detail = msg[1]
        except (EOFError, OSError):
            pass
        self._terminate_all()
        raise WorkerError(f"rollout worker {w} died unexpectedly ({detail})")

    def _dispatch_all(self, msg: tuple) -> None:
        for w in range(self.num_workers):
            self._send(w, msg)

    def _await_all(self) -> list[tuple[float, object]]:
        return [self._recv(w) for w in range(self.num_workers)]

    def _drain_prefetch(self) -> None:
        """Collect the in-flight prefetched reset's acks (idempotent)."""
        if self._pending_parity is not None and not self._pending_acked:
            self._await_all()
            self._pending_acked = True

    # -- VecEnv surface -------------------------------------------------
    def reset(self, seeds: list[int] | np.ndarray | None = None) -> VecStepResult:
        """Reset every replica; consumes a prefetched reset when possible.

        An unseeded ``reset()`` after :meth:`prefetch_reset` returns the
        already-encoded observations without re-stepping anything; a
        seeded reset discards the prefetched draw and reseeds from
        scratch (reseeding overrides stream position, so determinism is
        unaffected).
        """
        if seeds is not None and len(seeds) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} seeds, got {len(seeds)}")
        with obs_scope("env/reset"):
            if self._pending_parity is not None and seeds is None:
                self._drain_prefetch()
                parity = self._pending_parity
                self._pending_parity = None
            else:
                self._drain_prefetch()
                self._pending_parity = None
                parity = self._parity ^ 1
                seed_arr = None if seeds is None else np.asarray(seeds)
                for w, (lo, hi) in enumerate(self._bounds):
                    part = None if seed_arr is None else [int(s) for s in seed_arr[lo:hi]]
                    self._send(w, ("reset", part, parity))
                self._await_all()
        self._parity = parity
        self._needs_reset[:] = False
        self._cached_rng_states = None
        cfg = self.config
        ugv_obs, uav_obs = self._buffers[parity]
        return VecStepResult(
            ugv_obs=ugv_obs, uav_obs=uav_obs,
            ugv_rewards=np.zeros((self.num_envs, cfg.num_ugvs)),
            uav_rewards=np.zeros((self.num_envs, cfg.num_uavs)),
            ugv_actionable=self._views["ugv_actionable"][parity],
            dones=np.zeros(self.num_envs, dtype=bool),
            infos=[{} for _ in range(self.num_envs)])

    def step(self, ugv_actions: np.ndarray, uav_actions: np.ndarray,
             reset_on_done: bool = True) -> VecStepResult:
        """Step all replicas across the pool (``VecAirGroundEnv.step`` twin)."""
        if self._needs_reset.any():
            raise RuntimeError("replicas finished without auto-reset; call reset()")
        cfg = self.config
        ugv_actions = np.asarray(ugv_actions, dtype=int)
        uav_actions = np.asarray(uav_actions, dtype=float)
        if ugv_actions.shape != (self.num_envs, cfg.num_ugvs):
            raise ValueError(f"expected UGV actions of shape "
                             f"{(self.num_envs, cfg.num_ugvs)}, got {ugv_actions.shape}")
        if uav_actions.shape != (self.num_envs, cfg.num_uavs, 2):
            raise ValueError(f"expected UAV actions of shape "
                             f"{(self.num_envs, cfg.num_uavs, 2)}, got {uav_actions.shape}")

        parity = self._parity ^ 1
        with obs_scope("workers/dispatch"):
            self._views["act_ugv"][:] = ugv_actions
            self._views["act_uav"][:] = uav_actions
            self._dispatch_all(("step", parity, bool(reset_on_done)))
        t0 = time.perf_counter()
        with obs_scope("workers/wait"):
            acks = self._await_all()
        wait_seconds = time.perf_counter() - t0
        self._parity = parity

        step_seconds = 0.0
        finals: dict[int, MetricSnapshot] = {}
        for secs, worker_finals in acks:
            step_seconds = max(step_seconds, secs)
            histogram_observe("workers/step_seconds", secs)
            for k, snap in worker_finals:
                finals[int(k)] = snap
        # Learner-side wait minus the slowest worker's own step time —
        # the IPC + scheduling overhead the pool pays per step.
        histogram_observe("workers/ipc_seconds", max(0.0, wait_seconds - step_seconds))

        dones = self._views["dones"].copy()
        if not reset_on_done:
            self._needs_reset |= dones
        counter_add("env/steps", self.num_envs)
        if dones.any():
            counter_add("env/episodes", int(dones.sum()))

        info_t = self._views["info_t"]
        info_collected = self._views["info_collected"]
        infos: list[dict] = []
        for k in range(self.num_envs):
            info = {"t": int(info_t[k]), "collected_this_step": float(info_collected[k])}
            if k in finals:
                info["final_metrics"] = finals[k]
            infos.append(info)

        ugv_obs, uav_obs = self._buffers[parity]
        return VecStepResult(ugv_obs=ugv_obs, uav_obs=uav_obs,
                             ugv_rewards=self._views["ugv_rewards"].copy(),
                             uav_rewards=self._views["uav_rewards"].copy(),
                             ugv_actionable=self._views["ugv_actionable"][parity],
                             dones=dones, infos=infos)

    # -- async reset prefetch ------------------------------------------
    def prefetch_reset(self) -> None:
        """Snapshot rng states, then start the next unseeded reset async.

        Called by the trainer right after a collect window: the rng
        snapshot taken *before* the reset dispatch is what
        :meth:`rng_states` (and therefore checkpoints) will report until
        the reset is consumed, so a run killed during the overlapped
        update resumes by replaying the identical reset draws.  The
        template env's stream syncs to replica 0's snapshot, keeping
        ``trainer.state_dict()['env_rng']`` equal to the in-process
        path's.  No-op if a prefetch is already in flight.
        """
        if self._pending_parity is not None:
            return
        states = self._query_rng_states()
        self._cached_rng_states = states
        self._template.set_rng_state(states[0])
        parity = self._parity ^ 1
        self._dispatch_all(("reset", None, parity))
        self._pending_parity = parity
        self._pending_acked = False

    # -- rng / state surface -------------------------------------------
    def _query_rng_states(self) -> list[dict]:
        self._dispatch_all(("rng_states",))
        states: list[dict] = []
        for _, worker_states in self._await_all():
            states.extend(worker_states)
        return states

    def rng_states(self) -> list[dict]:
        """Per-replica rng snapshots (replica 0 first).

        While a prefetched reset is in flight this returns the snapshot
        captured *before* that reset was dispatched — the position a
        resumed run must restart from (the resume replays the reset).
        """
        if self._cached_rng_states is not None:
            return self._cached_rng_states
        return self._query_rng_states()

    def set_rng_states(self, states: list[dict]) -> None:
        """Restore snapshots captured by :meth:`rng_states`."""
        if len(states) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} rng states, "
                             f"got {len(states)}")
        self._drain_prefetch()
        self._pending_parity = None
        self._cached_rng_states = None
        for w, (lo, hi) in enumerate(self._bounds):
            self._send(w, ("set_rng_states", states[lo:hi]))
        self._await_all()
        self._template.set_rng_state(states[0])

    def state_digests(self) -> list[str]:
        """Per-replica state digests, in replica order.

        Reflects current simulation state: with a reset prefetch in
        flight, that is the post-reset state (the prefetch already ran).
        """
        self._drain_prefetch()
        self._dispatch_all(("state_digests",))
        digests: list[str] = []
        for _, worker_digests in self._await_all():
            digests.extend(worker_digests)
        return digests

    def metrics_per_env(self) -> list[MetricSnapshot]:
        """Each replica's current metrics, in replica order."""
        self._drain_prefetch()
        self._dispatch_all(("metrics",))
        snaps: list[MetricSnapshot] = []
        for _, worker_snaps in self._await_all():
            snaps.extend(worker_snaps)
        return snaps

    def metrics(self) -> MetricSnapshot:
        """Batched reduction: mean of every replica's current metrics."""
        return MetricSnapshot.mean(self.metrics_per_env())

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent; workers are daemons regardless)."""
        if self._closed:
            return
        self._closed = True
        for w, proc in enumerate(self._procs):
            if not proc.is_alive():
                continue
            try:
                self._drain_prefetch_quiet(w)
                self._conns[w].send(("close",))
            except (BrokenPipeError, OSError, WorkerError):
                pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _drain_prefetch_quiet(self, w: int) -> None:
        """Best-effort drain of worker ``w``'s outstanding ack before close."""
        if self._pending_parity is None or self._pending_acked:
            return
        conn = self._conns[w]
        if conn.poll(_JOIN_TIMEOUT):
            try:
                conn.recv()
            except (EOFError, OSError):
                pass

    def _terminate_all(self) -> None:
        """Hard-stop every worker (crash path; pipes may be broken)."""
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- test hooks -----------------------------------------------------
    def _debug_probe(self, worker: int = 0) -> dict:
        """Worker-side process-state snapshot (fork-safety regression test)."""
        self._send(worker, ("probe",))
        _, state = self._recv(worker)
        return state

    def _inject_crash(self, worker: int = 0) -> None:
        """Arm a crash on ``worker``'s next step (error-propagation test)."""
        self._send(worker, ("arm_crash",))
        self._recv(worker)
