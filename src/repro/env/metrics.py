"""Task metrics of Section III-B: ψ, ξ, ζ, β and efficiency λ."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "collection_ratio",
    "jain_fairness",
    "cooperation_factor",
    "energy_ratio",
    "efficiency",
    "MetricSnapshot",
]


def collection_ratio(initial: np.ndarray, remaining: np.ndarray) -> float:
    """Eqn. (3): ψ = 1 - Σ d_T / Σ d_0."""
    initial = np.asarray(initial, dtype=float)
    remaining = np.asarray(remaining, dtype=float)
    total = initial.sum()
    if total <= 0:
        raise ValueError("initial data must be positive")
    return float(1.0 - remaining.sum() / total)


def jain_fairness(initial: np.ndarray, remaining: np.ndarray, eps: float = 1e-6) -> float:
    """Eqn. (4): Jain's fairness index over per-sensor collected ratios."""
    initial = np.asarray(initial, dtype=float)
    remaining = np.asarray(remaining, dtype=float)
    ratios = (initial - remaining) / initial
    numerator = float(ratios.sum()) ** 2
    denominator = len(ratios) * float((ratios**2).sum()) + eps
    return float(numerator / denominator)


def cooperation_factor(releases: np.ndarray, effective_releases: np.ndarray) -> float:
    """Eqn. (5): ζ = Σ effective releases / Σ releases (0 when no releases)."""
    total = float(np.asarray(releases, dtype=float).sum())
    if total <= 0:
        return 0.0
    return float(np.asarray(effective_releases, dtype=float).sum() / total)


def energy_ratio(energy_spent: float, initial_energy: float, energy_charged: float) -> float:
    """Eqn. (6): β = Σ η δ / (Σ e_0 + Σ Δe)."""
    denominator = initial_energy + energy_charged
    if denominator <= 0:
        raise ValueError("energy denominator must be positive")
    return float(energy_spent / denominator)


def efficiency(psi: float, xi: float, zeta: float, beta: float, eps: float = 1e-6) -> float:
    """Eqn. (7): λ = ψ·ξ·ζ / β (guarded against β = 0 when nothing flew)."""
    return float(psi * xi * zeta / max(beta, eps))


@dataclass(frozen=True)
class MetricSnapshot:
    """All five metrics at one point in time."""

    psi: float
    xi: float
    zeta: float
    beta: float

    @property
    def efficiency(self) -> float:
        return efficiency(self.psi, self.xi, self.zeta, self.beta)

    @classmethod
    def mean(cls, snapshots) -> "MetricSnapshot":
        """Batched reduction over replicas/episodes: the metric-wise mean.

        Note the derived efficiency of the mean snapshot is computed from
        the averaged ψ/ξ/ζ/β, not averaged itself (λ is a ratio).
        """
        snaps = list(snapshots)
        if not snaps:
            raise ValueError("MetricSnapshot.mean needs at least one snapshot")
        stacked = np.array([[s.psi, s.xi, s.zeta, s.beta] for s in snaps])
        psi, xi, zeta, beta = stacked.mean(axis=0)
        return cls(float(psi), float(xi), float(zeta), float(beta))

    def as_dict(self) -> dict[str, float]:
        return {
            "psi": self.psi,
            "xi": self.xi,
            "zeta": self.zeta,
            "beta": self.beta,
            "efficiency": self.efficiency,
        }

    def __str__(self) -> str:
        return (f"λ={self.efficiency:.4f} ψ={self.psi:.4f} ξ={self.xi:.4f} "
                f"ζ={self.zeta:.4f} β={self.beta:.4f}")
