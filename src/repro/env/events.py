"""Structured episode event log.

``EventLog`` records the discrete events of a simulation — releases,
dockings, crashes, collections, moves — as typed records.  It powers
post-hoc analysis (why was a release ineffective? where do crashes
cluster?) and is cheap enough to keep on during training.

Attach one via ``AirGroundEnv.attach_event_log``; the env emits events as
they happen and the log exposes filters and summary statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["Event", "EventLog"]

EVENT_TYPES = ("release", "dock", "crash", "collect", "move", "reset")


@dataclass(frozen=True)
class Event:
    """One discrete simulation event.

    ``agent`` is a UGV index for release/move, a UAV index for
    dock/crash/collect; ``value`` carries the event's magnitude (GB
    collected, metres moved, ...).
    """

    t: int
    kind: str
    agent: int
    value: float = 0.0
    position: tuple[float, float] | None = None

    def __post_init__(self):
        if self.kind not in EVENT_TYPES:
            raise ValueError(f"unknown event kind {self.kind!r}")


@dataclass
class EventLog:
    """Append-only event store with query helpers."""

    events: list[Event] = field(default_factory=list)

    def emit(self, t: int, kind: str, agent: int, value: float = 0.0,
             position=None) -> None:
        pos = (float(position[0]), float(position[1])) if position is not None else None
        self.events.append(Event(int(t), kind, int(agent), float(value), pos))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[Event]:
        if kind not in EVENT_TYPES:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    def for_agent(self, kind: str, agent: int) -> list[Event]:
        return [e for e in self.of_kind(kind) if e.agent == agent]

    def counts(self) -> dict[str, int]:
        return dict(Counter(e.kind for e in self.events))

    def total(self, kind: str) -> float:
        """Sum of ``value`` over events of one kind."""
        return float(sum(e.value for e in self.of_kind(kind)))

    # ------------------------------------------------------------------
    def release_effectiveness(self) -> float:
        """Fraction of releases followed by any collection before docking.

        Computed per (UGV release -> its UAVs' collect events within the
        window) is complex to attribute exactly; instead we use the same
        definition as ζ but derived from the raw stream: a *dock* event
        with positive value means that flight collected data.
        """
        docks = self.of_kind("dock")
        if not docks:
            return 0.0
        effective = sum(1 for d in docks if d.value > 0)
        return effective / len(docks)

    def crash_hotspots(self, top: int = 5) -> list[tuple[tuple[float, float], int]]:
        """Most frequent crash positions (rounded to 10 m cells)."""
        counter: Counter = Counter()
        for event in self.of_kind("crash"):
            if event.position is not None:
                cell = (round(event.position[0] / 10.0) * 10.0,
                        round(event.position[1] / 10.0) * 10.0)
                counter[cell] += 1
        return counter.most_common(top)

    def collection_timeline(self, horizon: int) -> np.ndarray:
        """GB collected per timeslot over ``horizon`` slots."""
        timeline = np.zeros(horizon)
        for event in self.of_kind("collect"):
            if 0 <= event.t < horizon:
                timeline[event.t] += event.value
        return timeline

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{kind}={counts.get(kind, 0)}" for kind in EVENT_TYPES]
        parts.append(f"collected={self.total('collect'):.2f}GB")
        parts.append(f"effective_flights={self.release_effectiveness():.2%}")
        return " ".join(parts)
