"""Profile exporters: Chrome ``trace_event`` JSON, JSONL, text tables.

Three consumers, three formats:

* :func:`write_chrome_trace` — a ``trace_event``-format JSON file that
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` opens
  directly: scopes on one track, per-op events on a second.
* :func:`write_profile_jsonl` — one JSON object per line (scopes,
  counters, gauges, histograms, op rows, and a ``meta`` line), for
  ad-hoc ``jq``/pandas analysis alongside ``train.jsonl``.
* :func:`format_top_table` / :func:`format_op_table` — plain-text top-N
  tables for terminal output (`repro profile` prints these).

The Chrome exporter emits only the stable core of the spec — ``X``
(complete) duration events with microsecond ``ts``/``dur`` plus ``M``
metadata records — so any trace viewer accepts it; the schema is pinned
by a golden-file test (``tests/obs/test_export.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

from .opprof import OpProfile
from .scope import Profiler

__all__ = ["chrome_trace_events", "write_chrome_trace",
           "write_profile_jsonl", "format_top_table", "format_op_table"]

# Fixed pid/tid lanes of the exported trace (one process, two threads).
_PID = 1
_TID_SCOPES = 1
_TID_OPS = 2


def chrome_trace_events(profiler: Profiler | None = None,
                        ops: OpProfile | None = None) -> list[dict]:
    """Build the ``traceEvents`` list for :func:`write_chrome_trace`."""
    events: list[dict] = [
        {"ph": "M", "pid": _PID, "tid": _TID_SCOPES, "name": "process_name",
         "args": {"name": "repro"}},
        {"ph": "M", "pid": _PID, "tid": _TID_SCOPES, "name": "thread_name",
         "args": {"name": "scopes"}},
    ]
    if ops is not None:
        events.append({"ph": "M", "pid": _PID, "tid": _TID_OPS,
                       "name": "thread_name", "args": {"name": "autodiff ops"}})
    if profiler is not None:
        for path, start, dur in profiler.events:
            events.append({"ph": "X", "pid": _PID, "tid": _TID_SCOPES,
                           "name": path, "cat": "scope",
                           "ts": round(start * 1e6, 3),
                           "dur": round(dur * 1e6, 3)})
    if ops is not None:
        for name, start, dur in ops.events:
            events.append({"ph": "X", "pid": _PID, "tid": _TID_OPS,
                           "name": name, "cat": "op",
                           "ts": round(start * 1e6, 3),
                           "dur": round(dur * 1e6, 3)})
    return events


def write_chrome_trace(path: str | Path, profiler: Profiler | None = None,
                       ops: OpProfile | None = None) -> Path:
    """Write a Chrome ``trace_event`` file; returns the written path.

    Open the result in Perfetto (drag-and-drop at ui.perfetto.dev) or
    ``chrome://tracing``.  Scope events and op events land on separate
    tracks of the same process, sharing one timebase, so "which ops
    make this scope slow" is a zoom away.
    """
    payload = {
        "traceEvents": chrome_trace_events(profiler, ops),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload) + "\n")
    return path


def write_profile_jsonl(path: str | Path, profiler: Profiler | None = None,
                        ops: OpProfile | None = None) -> Path:
    """Write scope/metric/op aggregates as JSON lines; returns the path.

    Line kinds (discriminated by the ``kind`` field): ``meta``,
    ``scope``, ``counter``, ``gauge``, ``histogram``, ``op``.
    """
    lines: list[dict] = []
    meta: dict = {"kind": "meta"}
    if profiler is not None:
        meta["wall_seconds"] = profiler.wall_seconds
        meta["attributed_seconds"] = profiler.attributed_seconds
        meta["scope_coverage"] = profiler.coverage()
    if ops is not None:
        meta["op_wall_seconds"] = ops.wall_seconds
        meta["op_attributed_seconds"] = ops.total_op_seconds
        meta["op_calls"] = ops.total_calls
    lines.append(meta)
    if profiler is not None:
        for stats in profiler.sorted_stats("total_seconds"):
            lines.append({"kind": "scope", **stats.as_dict()})
        snapshot = profiler.metrics.as_dict()
        for name, value in snapshot["counters"].items():
            lines.append({"kind": "counter", "name": name, "value": value})
        for name, value in snapshot["gauges"].items():
            lines.append({"kind": "gauge", "name": name, "value": value})
        for name, hist in snapshot["histograms"].items():
            lines.append({"kind": "histogram", "name": name, **hist})
    if ops is not None:
        for row in ops.top(len(ops.rows)):
            lines.append({"kind": "op", **row.as_dict()})
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
    return path


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.2f}"


def format_top_table(profiler: Profiler, n: int = 15) -> str:
    """Top-``n`` scopes by self time, with counts and wall-time shares."""
    wall = profiler.wall_seconds
    if wall is None or wall <= 0:
        wall = max(profiler.attributed_seconds, 1e-12)
    header = (f"{'scope':<44} {'calls':>8} {'total ms':>10} {'self ms':>10} "
              f"{'% wall':>7}")
    rows = [header, "-" * len(header)]
    for stats in profiler.sorted_stats("self_seconds")[:n]:
        pct = 100.0 * stats.self_seconds / wall
        rows.append(f"{stats.path:<44} {stats.count:>8} "
                    f"{_fmt_ms(stats.total_seconds)} "
                    f"{_fmt_ms(stats.self_seconds)} {pct:>6.1f}%")
    rows.append("-" * len(header))
    rows.append(f"{'attributed to named scopes':<44} {'':>8} "
                f"{_fmt_ms(profiler.attributed_seconds)} {'':>10} "
                f"{100.0 * profiler.coverage():>6.1f}%")
    return "\n".join(rows)


def format_op_table(ops: OpProfile, n: int = 15) -> str:
    """Top-``n`` autodiff ops by attributed time.

    Columns: op name, ``annotate()`` label, originating module, call
    count, attributed wall time, output bytes, estimated MFLOPs.
    """
    wall = max(ops.wall_seconds, 1e-12)
    header = (f"{'op':<14} {'label':<22} {'module':<20} {'calls':>8} "
              f"{'total ms':>10} {'MB out':>8} {'MFLOPs':>9} {'% wall':>7}")
    rows = [header, "-" * len(header)]
    for row in ops.top(n):
        pct = 100.0 * row.seconds / wall
        rows.append(
            f"{row.op:<14} {row.label:<22.22} {row.module:<20.20} "
            f"{row.calls:>8} {_fmt_ms(row.seconds)} "
            f"{row.bytes / 1e6:>8.2f} {row.flops / 1e6:>9.2f} {pct:>6.1f}%")
    rows.append("-" * len(header))
    rows.append(f"{'all ops':<14} {'':<22} {'':<20} {ops.total_calls:>8} "
                f"{_fmt_ms(ops.total_op_seconds)} {'':>8} {'':>9} "
                f"{100.0 * ops.total_op_seconds / wall:>6.1f}%")
    return "\n".join(rows)
