"""Hierarchical scope timers with a compiled-to-nothing disabled path.

``scope("rollout")`` is the single instrumentation primitive the rest of
the codebase uses: a context manager that, while a :class:`Profiler` is
installed, times the enclosed block and files it under a
``/``-separated path built from the enclosing scopes, e.g.
``train/rollout/forward/ugv``.  Scopes nest naturally — entering
``scope("forward/ugv")`` inside ``scope("rollout")`` records under
``rollout/forward/ugv`` — so call sites only name their local stage.

When no profiler is installed every primitive short-circuits on a
single module-global ``is None`` test (the same trick
``repro.nn.tracer`` uses) and ``scope()`` returns one shared do-nothing
context manager, so the instrumented hot paths cost within run-to-run
noise (benchmarked by ``benchmarks/profile_overhead.py`` /
``BENCH_profile.json``).

Usage::

    from repro.obs import Profiler, scope

    with Profiler() as prof:
        with scope("rollout"):
            ...
    print(prof.stats["rollout"].total_seconds)
"""

from __future__ import annotations

import os
import time
from typing import Iterator

from .metrics import MetricsRegistry

__all__ = [
    "Profiler",
    "ScopeStats",
    "scope",
    "counter_add",
    "gauge_set",
    "histogram_observe",
    "is_profiling",
    "active_profiler",
]

# The currently installed profiler, or None.  Every primitive tests this
# once; keeping it a plain module global makes the disabled path a single
# LOAD_GLOBAL + POP_JUMP (mirrors repro.nn.tracer._ACTIVE).
_ACTIVE: "Profiler | None" = None


def _reset_in_child() -> None:
    """Uninstall any inherited profiler in a forked child process.

    A rollout worker forked mid-``Profiler`` would otherwise keep timing
    into the parent's registry object (its own copy-on-write copy,
    silently dropped on exit).  Workers start unprofiled; the parent
    attributes worker time from the step acks instead.
    """
    global _ACTIVE
    _ACTIVE = None


if hasattr(os, "register_at_fork"):  # not available on all platforms
    os.register_at_fork(after_in_child=_reset_in_child)


def is_profiling() -> bool:
    """Return whether a :class:`Profiler` is currently installed."""
    return _ACTIVE is not None


def active_profiler() -> "Profiler | None":
    """Return the installed profiler (or None when profiling is off)."""
    return _ACTIVE


class _NullScope:
    """Shared do-nothing context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


def scope(name: str):
    """Time the enclosed block under ``name`` (pure no-op when disabled).

    ``name`` may itself contain ``/`` separators to declare several
    hierarchy levels at one call site (``scope("forward/ugv")``).
    """
    prof = _ACTIVE
    if prof is None:
        return _NULL_SCOPE
    return _Scope(prof, name)


def counter_add(name: str, amount: float = 1) -> None:
    """Add to the installed profiler's counter ``name`` (no-op when off)."""
    prof = _ACTIVE
    if prof is not None:
        prof.metrics.counter(name).add(amount)


def gauge_set(name: str, value: float) -> None:
    """Set the installed profiler's gauge ``name`` (no-op when off)."""
    prof = _ACTIVE
    if prof is not None:
        prof.metrics.gauge(name).set(value)


def histogram_observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when off)."""
    prof = _ACTIVE
    if prof is not None:
        prof.metrics.histogram(name).observe(value)


class ScopeStats:
    """Accumulated timing for one scope path.

    ``total_seconds`` includes time spent in child scopes;
    ``self_seconds`` subtracts it, so summing ``self_seconds`` over every
    path partitions the attributed wall time with no double counting.
    """

    __slots__ = ("path", "count", "total_seconds", "child_seconds",
                 "min_seconds", "max_seconds")

    def __init__(self, path: str):
        self.path = path
        self.count = 0
        self.total_seconds = 0.0
        self.child_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    @property
    def self_seconds(self) -> float:
        """Time inside this scope minus time inside child scopes."""
        return self.total_seconds - self.child_seconds

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a root scope)."""
        return self.path.count("/")

    @property
    def name(self) -> str:
        """The last path component."""
        return self.path.rsplit("/", 1)[-1]

    def as_dict(self) -> dict:
        """JSON-able summary of this scope's accumulated timing."""
        return {
            "path": self.path,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "self_seconds": self.self_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScopeStats({self.path!r}, count={self.count}, "
                f"total={self.total_seconds:.6f}s)")


class _Scope:
    """Live timing frame for one ``with scope(...)`` entry."""

    __slots__ = ("_prof", "_name", "_path", "_t0", "child_seconds")

    def __init__(self, prof: "Profiler", name: str):
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_Scope":
        prof = self._prof
        stack = prof._stack
        if stack:
            self._path = stack[-1]._path + "/" + self._name
        else:
            self._path = self._name
        self.child_seconds = 0.0
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._t0
        prof = self._prof
        prof._stack.pop()
        stats = prof._stats.get(self._path)
        if stats is None:
            stats = prof._stats[self._path] = ScopeStats(self._path)
        stats.count += 1
        stats.total_seconds += elapsed
        stats.child_seconds += self.child_seconds
        if elapsed < stats.min_seconds:
            stats.min_seconds = elapsed
        if elapsed > stats.max_seconds:
            stats.max_seconds = elapsed
        if prof._stack:
            prof._stack[-1].child_seconds += elapsed
        else:
            prof._attributed_seconds += elapsed
        if prof.keep_events and len(prof.events) < prof.max_events:
            prof.events.append((self._path, self._t0 - prof._origin, elapsed))
        return False


class Profiler:
    """Collects scope timings, a metrics registry and a trace timeline.

    Install it as a context manager (installation does not nest — one
    measurement per profiler)::

        with Profiler() as prof:
            agent.train(2)
        print(format_top_table(prof))

    Parameters
    ----------
    keep_events:
        Record a ``(path, start, duration)`` event per scope exit for the
        Chrome ``trace_event`` exporter.  Disable for very long runs
        where only the aggregate table matters.
    max_events:
        Cap on retained events; later scope exits still aggregate into
        ``stats`` but stop appending to the timeline.
    registry:
        An existing :class:`~repro.obs.metrics.MetricsRegistry` to attach
        (e.g. one restored from a training checkpoint); a fresh registry
        is created by default.
    """

    def __init__(self, keep_events: bool = True, max_events: int = 200_000,
                 registry: MetricsRegistry | None = None):
        self._stats: dict[str, ScopeStats] = {}
        self._stack: list[_Scope] = []
        self.events: list[tuple[str, float, float]] = []
        self.keep_events = bool(keep_events)
        self.max_events = int(max_events)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._origin = time.perf_counter()
        self._attributed_seconds = 0.0
        self.wall_seconds: float | None = None

    # -- installation ---------------------------------------------------
    def __enter__(self) -> "Profiler":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a repro.obs.Profiler is already installed")
        _ACTIVE = self
        self._origin = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = None
        self.wall_seconds = time.perf_counter() - self._origin
        return False

    # -- introspection --------------------------------------------------
    @property
    def stats(self) -> dict[str, ScopeStats]:
        """Accumulated per-path scope statistics (insertion-ordered)."""
        return self._stats

    def __iter__(self) -> Iterator[ScopeStats]:
        return iter(self._stats.values())

    @property
    def attributed_seconds(self) -> float:
        """Wall time spent inside root scopes (no double counting)."""
        return self._attributed_seconds

    def coverage(self) -> float:
        """Fraction of wall time attributed to named scopes.

        Meaningful after the profiler exits (``wall_seconds`` is set);
        while still installed it measures against the elapsed time so
        far.  A well-instrumented workload attributes ≥ 0.95.
        """
        wall = (self.wall_seconds if self.wall_seconds is not None
                else time.perf_counter() - self._origin)
        if wall <= 0.0:
            return 0.0
        return min(1.0, self._attributed_seconds / wall)

    def sorted_stats(self, key: str = "self_seconds") -> list[ScopeStats]:
        """Scope stats sorted descending by ``key``."""
        return sorted(self._stats.values(),
                      key=lambda s: getattr(s, key), reverse=True)
