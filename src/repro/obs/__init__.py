"""``repro.obs`` — the observability layer: profiling + metrics.

Three cooperating pieces (see ``docs/observability.md``):

* **Scope timers** (:mod:`repro.obs.scope`) — ``with scope("rollout"):``
  hierarchical wall-time attribution over the training loop, compiled
  to a no-op when no :class:`Profiler` is installed.
* **Per-op autodiff profiler** (:mod:`repro.obs.opprof`) —
  :func:`profile_ops` reuses the graphcheck tape tracer to attribute
  time, bytes and estimated FLOPs to individual engine ops.
* **Metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges
  and histograms that checkpoint/resume alongside training state.

Exporters (:mod:`repro.obs.export`) serialise all of it as a Chrome
``trace_event`` file (open in Perfetto), JSONL, or plain-text top-N
tables.  The ``repro profile`` CLI subcommand (and ``repro train
--profile``) drive the whole stack; the CLI glue lives in
:mod:`repro.obs.cli`, deliberately not imported here so that importing
``repro.obs`` from the instrumented hot paths stays dependency-free.
"""

from .export import (
    chrome_trace_events,
    format_op_table,
    format_top_table,
    write_chrome_trace,
    write_profile_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .opprof import OpProfile, OpStats, TimedTrace, estimate_flops, profile_ops
from .scope import (
    Profiler,
    ScopeStats,
    active_profiler,
    counter_add,
    gauge_set,
    histogram_observe,
    is_profiling,
    scope,
)

__all__ = [
    "Profiler",
    "ScopeStats",
    "scope",
    "counter_add",
    "gauge_set",
    "histogram_observe",
    "is_profiling",
    "active_profiler",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "OpProfile",
    "OpStats",
    "TimedTrace",
    "profile_ops",
    "estimate_flops",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_profile_jsonl",
    "format_top_table",
    "format_op_table",
]
