"""Metrics registry: counters, gauges and histograms for training runs.

A :class:`MetricsRegistry` is the quantitative (non-timing) half of the
observability layer: monotonic counters (env steps, optimizer steps),
point-in-time gauges (learning rate, entropy coefficient) and
fixed-bucket histograms (per-minibatch loss).  Instrument code never
touches the registry directly — it calls the no-op-when-disabled
helpers in :mod:`repro.obs.scope` (``counter_add`` etc.), which route to
the installed profiler's registry.

Registries round-trip through :meth:`state_dict` /
:meth:`load_state_dict` as plain JSON-able trees, which is how training
metrics survive a checkpoint/resume cycle: the
:class:`~repro.experiments.checkpoint.TrainingCheckpointer` snapshots
the registry into each checkpoint's manifest alongside the telemetry
cursor, and ``run_training`` restores it on ``--resume`` so counters
continue from the interrupted run's values (see
``docs/observability.md``).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

# Default histogram bucket upper bounds: geometric, microseconds to
# minutes when observations are in seconds, but unit-agnostic in general.
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Counter:
    """Monotonic accumulator (``add`` only)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1) -> None:
        """Increase the counter by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Point-in-time value (``set`` overwrites)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in an implicit overflow bucket, so ``counts`` has
    ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """File one observation into its bucket and the summary stats."""
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average of all observations (0.0 before the first)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-able snapshot (bounds, bucket counts, summary stats)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named get-or-create store of counters, gauges and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create --------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Return the counter ``name``, creating it on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Return the gauge ``name``, creating it on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  bounds: tuple[float, ...] | None = None) -> Histogram:
        """Return the histogram ``name``, creating it on first use.

        ``bounds`` only applies at creation; later calls return the
        existing histogram unchanged.
        """
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_BUCKETS)
        return h

    def clear(self) -> None:
        """Drop every registered instrument (names and values).

        The fork/spawn-safety reset: a rollout worker bootstrapping from
        an inherited registry clears it so per-process metrics start
        empty instead of double-counting the parent's history.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- introspection --------------------------------------------------
    @property
    def counters(self) -> dict[str, Counter]:
        """Live name -> :class:`Counter` mapping (mutations show up here)."""
        return self._counters

    @property
    def gauges(self) -> dict[str, Gauge]:
        """Live name -> :class:`Gauge` mapping."""
        return self._gauges

    @property
    def histograms(self) -> dict[str, Histogram]:
        """Live name -> :class:`Histogram` mapping."""
        return self._histograms

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def as_dict(self) -> dict:
        """Flat JSON-able snapshot of every metric's current value."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def digest(self) -> str:
        """Canonical digest of every metric's current value.

        ``repro check-determinism`` folds this into its per-iteration
        fingerprint: counters/gauges/histograms driven by training code
        must match between two same-seed runs.
        """
        from ..nn.serialize import state_digest

        return state_digest(self.as_dict())

    # -- checkpoint round-trip -----------------------------------------
    def state_dict(self) -> dict:
        """Complete JSON-able state (identical layout to :meth:`as_dict`)."""
        return self.as_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        Existing metrics with the same names are overwritten; metrics
        not present in ``state`` are left untouched, so a registry can
        be restored into mid-run.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).value = float(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, snap in state.get("histograms", {}).items():
            h = Histogram(name, tuple(snap["bounds"]))
            h.counts = [int(c) for c in snap["counts"]]
            h.count = int(snap["count"])
            h.sum = float(snap["sum"])
            h.min = float(snap["min"]) if h.count else float("inf")
            h.max = float(snap["max"]) if h.count else float("-inf")
            self._histograms[name] = h
