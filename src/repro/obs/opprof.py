"""Per-op autodiff profiler built on the ``repro.nn.trace`` tape tracer.

:func:`profile_ops` runs a callable under a timing variant of the PR-2
tape tracer and compiles the recorded tape into per-op aggregates: wall
time, call counts, output-tensor bytes and an estimated-FLOPs column,
grouped by ``(op, annotate() label, module)``.  The module column is
derived from each op's creation site, so a row reads like
``matmul  [mc_gcn.attention]  core.mc_gcn  1840 calls  12.3 ms``.

Attribution model
-----------------

The engine is eager: one tensor is created per op, in execution order,
and the tracer hook fires inside ``Tensor._make_child``.  The profiler
therefore charges each op the time elapsed since the *previous* op's
hook fired (or since the profiled callable started, for the first op).
Python-level glue between two ops is charged to the later op — exact
per-kernel timing is impossible without instrumenting every op body,
and this approximation is standard for eager-tape profilers.  Two
consequences to keep in mind:

* backward passes create no tape entries (gradients accumulate through
  closures, not ``_make_child``), so backward time is *not* in the op
  table — the scope timers (``update/*/backward``) cover it;
* time spent entirely outside tensor ops (env stepping, numpy
  pre-processing) accrues to no row; compare ``total_op_seconds``
  against ``wall_seconds`` to see that share.

FLOPs are estimates from output/input shapes (2·M·N·K for matmuls,
element counts for pointwise math, zero for pure data movement); they
rank rows and make tensor-shape regressions visible, they are not a
hardware roofline.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Sequence

import numpy as np

from ..nn.tracer import trace

__all__ = ["OpStats", "OpProfile", "TimedTrace", "profile_ops",
           "estimate_flops"]

# Ops that move or view data without arithmetic: zero estimated FLOPs.
_DATA_MOVEMENT_OPS = frozenset({
    "getitem", "reshape", "flatten", "transpose", "swapaxes", "stack",
    "concat", "expand_dims", "squeeze", "pad", "where",
})

# Pointwise transcendental / multi-pass composites get a small constant
# factor over one-op-per-element so they rank above plain arithmetic.
_COMPOSITE_FACTORS = {"softmax": 5.0, "log_softmax": 5.0, "norm": 3.0}


def estimate_flops(op: str, child_shape: tuple[int, ...],
                   parent_shapes: Sequence[tuple[int, ...]]) -> float:
    """Estimated floating-point operations for one recorded op.

    Heuristic by construction (see module docstring): matmul counts
    2·M·N·K using the contraction width from the first parent, pointwise
    ops count one FLOP per output element, reductions count one per
    *input* element, and pure data movement counts zero.
    """
    out_elems = float(np.prod(child_shape)) if child_shape else 1.0
    if op in _DATA_MOVEMENT_OPS:
        return 0.0
    if op == "matmul":
        inner = parent_shapes[0][-1] if parent_shapes and parent_shapes[0] else 1
        return 2.0 * out_elems * float(inner)
    if op in _COMPOSITE_FACTORS:
        return _COMPOSITE_FACTORS[op] * out_elems
    if op in ("sum", "mean", "max", "min"):
        if parent_shapes and parent_shapes[0]:
            return float(np.prod(parent_shapes[0]))
        return out_elems
    # Pointwise arithmetic, activations, comparisons: 1 FLOP/element.
    return out_elems


class TimedTrace(trace):
    """A ``repro.nn.trace`` that also stamps ``perf_counter`` per op.

    Inherits the full tape (records, labels via ``annotate``); adds a
    parallel ``times`` list aligned index-for-index with ``records``.
    """

    # This override adds a frame between _make_child and the base
    # record_op, so the base class must skip this file when walking the
    # stack for the creation site (and the op-name frame lookup below
    # must happen *here*, where _getframe(2) still lands on the op).
    _extra_site_skip = ("opprof.py",)

    def __init__(self, site_provenance: bool = True):
        super().__init__(site_provenance=site_provenance)
        self.times: list[float] = []
        # Rows reported by the compiled executor (repro.nn.compile): the
        # replay path creates no Tensors, so no record_op fires; instead
        # it stamps each executed plan segment here.  Tuples of
        # (op, label, module, stamp, duration_s, bytes).
        self.fused: list[tuple[str, str, str, float, float, int]] = []

    def record_op(self, child, parents, op, attrs=None) -> None:
        if op is None:
            op = sys._getframe(2).f_code.co_name.strip("_")
        super().record_op(child, parents, op, attrs)
        self.times.append(time.perf_counter())

    def record_fused(self, op: str, label: str, module: str, stamp: float,
                     duration: float, nbytes: int) -> None:
        """Report one executed compiled-plan segment (fused group or op).

        Called by ``CompiledStep`` replay when it runs under a profiling
        trace, so ``repro profile`` stays meaningful on the compiled
        path: fused groups appear as ``fused`` rows labelled with their
        member op chain.
        """
        self.fused.append((op, label, module, stamp, duration, nbytes))


class OpStats:
    """One aggregated row of the op table."""

    __slots__ = ("op", "label", "module", "calls", "seconds", "bytes",
                 "flops")

    def __init__(self, op: str, label: str, module: str):
        self.op = op
        self.label = label
        self.module = module
        self.calls = 0
        self.seconds = 0.0
        self.bytes = 0
        self.flops = 0.0

    def as_dict(self) -> dict:
        """JSON-able row (key order matches the text table columns)."""
        return {"op": self.op, "label": self.label, "module": self.module,
                "calls": self.calls, "seconds": self.seconds,
                "bytes": self.bytes, "est_flops": self.flops}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OpStats(op={self.op!r}, label={self.label!r}, "
                f"calls={self.calls}, seconds={self.seconds:.6f})")


def _module_from_site(site: str) -> str:
    """Dotted module path from a tracer creation site.

    ``.../src/repro/core/mc_gcn.py:118 in forward`` → ``core.mc_gcn``;
    sites outside the ``repro`` package keep their bare file name.
    """
    head = site.split(":", 1)[0].replace("\\", "/")
    marker = "repro/"
    idx = head.rfind(marker)
    if idx >= 0:
        rel = head[idx + len(marker):]
    else:
        rel = head.rsplit("/", 1)[-1]
    if rel.endswith(".py"):
        rel = rel[:-3]
    return rel.replace("/", ".")


class OpProfile:
    """Compiled result of :func:`profile_ops`.

    Attributes
    ----------
    rows:
        Aggregated :class:`OpStats`, one per ``(op, label, module)``.
    events:
        ``(name, start_offset_s, duration_s)`` per recorded op, aligned
        to the profiled callable's start — feeds the Chrome trace
        exporter's ops thread.
    wall_seconds:
        Total duration of the profiled callable.
    total_op_seconds:
        Sum of per-op attributed time (≤ ``wall_seconds``; the gap is
        time outside tensor ops, e.g. env stepping or backward).
    result:
        Whatever the profiled callable returned.
    """

    def __init__(self, rows: list[OpStats], events: list[tuple[str, float, float]],
                 wall_seconds: float, result=None):
        self.rows = rows
        self.events = events
        self.wall_seconds = wall_seconds
        self.total_op_seconds = sum(r.seconds for r in rows)
        self.total_calls = sum(r.calls for r in rows)
        self.result = result

    def top(self, n: int = 15, key: str = "seconds") -> list[OpStats]:
        """The ``n`` costliest rows, descending by ``key``."""
        return sorted(self.rows, key=lambda r: getattr(r, key),
                      reverse=True)[:n]

    def __len__(self) -> int:
        return len(self.rows)


def profile_ops(fn: Callable[[], object], *, site_provenance: bool = True,
                max_events: int = 200_000) -> OpProfile:
    """Run ``fn`` under a timed tape trace and aggregate per-op stats.

    ``fn`` runs exactly once; its return value is kept on
    ``OpProfile.result``.  Cannot nest inside another active
    ``repro.nn.trace`` scope (e.g. a graphcheck run) — the tracer's
    no-nesting rule applies.

    ``site_provenance=False`` skips the per-op stack walk (dropping the
    module column) when tracing very hot loops.
    """
    t_start = time.perf_counter()
    with TimedTrace(site_provenance=site_provenance) as tape:
        result = fn()
    wall = time.perf_counter() - t_start

    rows: dict[tuple[str, str, str], OpStats] = {}
    events: list[tuple[str, float, float]] = []
    prev = t_start
    for rec, stamp in zip(tape.records, tape.times):
        dt = stamp - prev
        prev = stamp
        module = _module_from_site(rec.site) if site_provenance else ""
        key = (rec.op, rec.label, module)
        row = rows.get(key)
        if row is None:
            row = rows[key] = OpStats(rec.op, rec.label, module)
        row.calls += 1
        row.seconds += dt
        row.bytes += rec.tensor.data.nbytes
        row.flops += estimate_flops(
            rec.op, tuple(rec.tensor.shape),
            [tuple(p.shape) for p in rec.parents if hasattr(p, "shape")])
        if len(events) < max_events:
            name = f"{rec.op} [{rec.label}]" if rec.label else rec.op
            events.append((name, stamp - t_start - dt, dt))
    # Merge rows stamped by the compiled executor (no tape records on the
    # replay path; see TimedTrace.record_fused).
    for op, label, module, stamp, dt, nbytes in tape.fused:
        key = (op, label, module)
        row = rows.get(key)
        if row is None:
            row = rows[key] = OpStats(op, label, module)
        row.calls += 1
        row.seconds += dt
        row.bytes += nbytes
        if len(events) < max_events:
            name = f"{op} [{label}]" if label else op
            events.append((name, stamp - t_start - dt, dt))
    return OpProfile(list(rows.values()), events, wall, result)
