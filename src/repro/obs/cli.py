"""CLI glue for the observability layer (``repro profile``, ``--profile``).

Kept out of ``repro.obs.__init__`` on purpose: this module imports the
experiment runner (which imports the instrumented training stack), so
pulling it in from ``repro.obs`` would create an import cycle and drag
experiment dependencies into every hot-path ``from ..obs.scope import
scope`` line.  ``repro.cli`` imports it lazily instead.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .export import (
    format_op_table,
    format_top_table,
    write_chrome_trace,
    write_profile_jsonl,
)
from .opprof import OpProfile, profile_ops
from .scope import Profiler

__all__ = ["add_profile_parser", "run_profile_command", "profile_training"]

# Iteration count used by ``repro profile --quick``.
_QUICK_ITERATIONS = 2


def add_profile_parser(sub) -> argparse.ArgumentParser:
    """Register the ``profile`` subcommand on an argparse subparsers set."""
    p = sub.add_parser(
        "profile",
        help="profile a short training run: scope timers + per-op "
             "autodiff table + Chrome trace")
    p.add_argument("--method", default="garl",
                   help="agent to profile (default: garl)")
    p.add_argument("--campus", default="kaist", choices=("kaist", "ucla"))
    p.add_argument("--preset", default="smoke",
                   choices=("smoke", "small", "paper"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ugvs", type=int, default=4)
    p.add_argument("--uavs", type=int, default=2)
    p.add_argument("--iterations", type=int, default=None,
                   help="training iterations to profile (default: the "
                        "preset's count)")
    p.add_argument("--quick", action="store_true",
                   help=f"profile only {_QUICK_ITERATIONS} iterations")
    p.add_argument("--num-envs", type=int, default=1,
                   help="vectorized env replicas (default: 1)")
    p.add_argument("--trace-out", default="profile_trace.json",
                   help="Chrome trace_event output file (open in Perfetto; "
                        "default: profile_trace.json)")
    p.add_argument("--jsonl-out", default=None,
                   help="also write scope/metric/op aggregates as JSONL")
    p.add_argument("--top", type=int, default=15,
                   help="rows in each top-N table (default: 15)")
    p.add_argument("--no-ops", action="store_true",
                   help="skip the per-op tape profile (scope timers only; "
                        "use for longer runs — the op tape retains every "
                        "intermediate tensor)")
    return p


def run_profile_command(args: argparse.Namespace) -> int:
    """Drive one profiled training run from parsed ``profile`` args."""
    from ..experiments.runner import run_method

    iterations = args.iterations
    if args.quick and iterations is None:
        iterations = _QUICK_ITERATIONS

    def run():
        return run_method(args.method, args.campus, preset=args.preset,
                          num_ugvs=args.ugvs, num_uavs_per_ugv=args.uavs,
                          seed=args.seed, train_iterations=iterations,
                          num_envs=args.num_envs)

    # The scope profiler sits *inside* profile_ops so the tape-compile
    # pass after the workload does not count against scope coverage.
    prof = Profiler()

    def workload():
        with prof:
            return run()

    ops: OpProfile | None = None
    if args.no_ops:
        record = workload()
    else:
        ops = profile_ops(workload)
        record = ops.result

    m = record.metrics
    print(f"profiled {args.method} on {args.campus} "
          f"({iterations if iterations is not None else 'preset'} iterations, "
          f"num_envs={args.num_envs}): λ={m['efficiency']:.4f}")
    print()
    print(format_top_table(prof, args.top))
    if ops is not None:
        print()
        print(format_op_table(ops, args.top))

    trace_path = write_chrome_trace(args.trace_out, prof, ops)
    print(f"\nChrome trace written to {trace_path} "
          f"(open at https://ui.perfetto.dev)")
    if args.jsonl_out:
        jsonl_path = write_profile_jsonl(args.jsonl_out, prof, ops)
        print(f"profile JSONL written to {jsonl_path}")

    coverage = prof.coverage()
    print(f"scope coverage: {100.0 * coverage:.1f}% of wall time "
          f"attributed to named scopes")
    return 0


def profile_training(run_training_call, profile_dir: str | Path):
    """Run ``run_training_call()`` under a profiler (``train --profile``).

    Scope-timer-only by design: the per-op tape would retain every
    intermediate tensor of an arbitrarily long training run.  Writes
    ``profile_trace.json`` + ``profile.jsonl`` into ``profile_dir`` and
    prints the top-scope table.  Returns the callable's result.
    """
    profile_dir = Path(profile_dir)
    with Profiler() as prof:
        result = run_training_call()
    print()
    print(format_top_table(prof))
    trace_path = write_chrome_trace(profile_dir / "profile_trace.json", prof)
    jsonl_path = write_profile_jsonl(profile_dir / "profile.jsonl", prof)
    print(f"profile written to {trace_path} and {jsonl_path}")
    return result
