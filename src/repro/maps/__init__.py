"""``repro.maps`` — campus workzones, road networks and the UGV stop graph."""

from .campus import CAMPUS_BUILDERS, CampusMap, build_campus, build_kaist, build_ucla, random_campus
from .geometry import (
    BoundingBox,
    Polygon,
    euclidean,
    point_segment_distance,
    rectangle,
    regular_polygon,
    segments_intersect,
)
from .io import campus_from_dict, campus_to_dict, load_campus, save_campus
from .roads import grid_network, irregular_network, largest_component, total_road_length
from .stop_graph import StopGraph, build_stop_graph

__all__ = [
    "CampusMap",
    "build_campus",
    "build_kaist",
    "build_ucla",
    "CAMPUS_BUILDERS",
    "random_campus",
    "Polygon",
    "BoundingBox",
    "euclidean",
    "segments_intersect",
    "point_segment_distance",
    "rectangle",
    "regular_polygon",
    "grid_network",
    "irregular_network",
    "largest_component",
    "total_road_length",
    "StopGraph",
    "build_stop_graph",
    "campus_to_dict",
    "campus_from_dict",
    "save_campus",
    "load_campus",
]
