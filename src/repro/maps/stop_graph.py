"""UGV stop graph construction and structural correlation (Section III/IV-B).

Virtual stop nodes are placed at regular intervals (the paper uses 100 m)
along every road, and connected according to road connectivity.  The class
also implements the thresholded shortest-path structural correlation
``s(b, b')`` of Eqns. (19)-(20) that MC-GCN consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from .campus import CampusMap

__all__ = ["StopGraph", "build_stop_graph"]


@dataclass
class StopGraph:
    """The stop network ``G = (B, E)``.

    Attributes
    ----------
    positions:
        ``(B, 2)`` stop coordinates in metres.
    graph:
        Undirected networkx graph on node ids ``0..B-1`` with ``length``
        edge attributes (metres).
    """

    positions: np.ndarray
    graph: nx.Graph
    _adj: np.ndarray | None = field(default=None, repr=False)
    _hops: np.ndarray | None = field(default=None, repr=False)
    _metres: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_stops(self) -> int:
        return len(self.positions)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense binary adjacency (cached)."""
        if self._adj is None:
            self._adj = nx.to_numpy_array(self.graph, nodelist=range(self.num_stops), weight=None)
        return self._adj

    def hop_distances(self) -> np.ndarray:
        """All-pairs shortest-path distances in hops (cached)."""
        if self._hops is None:
            sparse = csr_matrix(self.adjacency_matrix())
            self._hops = dijkstra(sparse, unweighted=True, directed=False)
        return self._hops

    def metre_distances(self) -> np.ndarray:
        """All-pairs shortest-path distances in metres along roads (cached)."""
        if self._metres is None:
            weighted = nx.to_numpy_array(self.graph, nodelist=range(self.num_stops), weight="length")
            self._metres = dijkstra(csr_matrix(weighted), directed=False)
        return self._metres

    def structural_correlation(self, q: float, weighted: bool = False) -> np.ndarray:
        """Eqns. (19)-(20): ``s = 1 / (d_sp^q + 1)`` with threshold ``q``.

        Distances beyond ``q`` are treated as infinite, giving zero
        correlation; the self-correlation is exactly 1.  ``weighted``
        selects metre distances instead of hop counts.
        """
        if q <= 0:
            raise ValueError("threshold q must be positive")
        dist = self.metre_distances() if weighted else self.hop_distances()
        capped = np.where(dist <= q, dist, np.inf)
        with np.errstate(divide="ignore"):
            return np.where(np.isinf(capped), 0.0, 1.0 / (capped + 1.0))

    def nearest_stop(self, point) -> int:
        """Index of the stop closest to ``point`` (Euclidean)."""
        deltas = self.positions - np.asarray(point, dtype=float)
        return int(np.argmin(np.hypot(deltas[:, 0], deltas[:, 1])))

    def neighbors(self, stop: int) -> list[int]:
        return sorted(self.graph.neighbors(stop))

    def stops_within_metres(self, stop: int, budget: float) -> list[int]:
        """Stops reachable from ``stop`` within ``budget`` road-metres."""
        row = self.metre_distances()[stop]
        return [int(i) for i in np.nonzero(row <= budget)[0]]

    def path(self, a: int, b: int) -> list[int]:
        """Shortest road path between two stops."""
        return nx.shortest_path(self.graph, a, b, weight="length")

    def path_length(self, a: int, b: int) -> float:
        return float(self.metre_distances()[a, b])


def build_stop_graph(campus: CampusMap, interval: float = 100.0) -> StopGraph:
    """Place stops every ``interval`` metres along each road edge.

    Road junctions always become stops; interior stops subdivide each edge
    so consecutive stops are at most ``interval`` apart, and are chained
    with edges matching road connectivity.
    """
    if interval <= 0:
        raise ValueError("stop interval must be positive")
    stop_graph = nx.Graph()
    positions: list[np.ndarray] = []
    junction_stop: dict = {}

    def add_stop(pos: np.ndarray) -> int:
        idx = len(positions)
        positions.append(np.asarray(pos, dtype=float))
        stop_graph.add_node(idx)
        return idx

    for node in campus.roads.nodes:
        junction_stop[node] = add_stop(np.asarray(campus.roads.nodes[node]["pos"]))

    for u, v, data in campus.roads.edges(data=True):
        a = np.asarray(campus.roads.nodes[u]["pos"])
        b = np.asarray(campus.roads.nodes[v]["pos"])
        length = data.get("length", float(np.linalg.norm(b - a)))
        segments = max(1, int(np.ceil(length / interval)))
        chain = [junction_stop[u]]
        for k in range(1, segments):
            frac = k / segments
            chain.append(add_stop(a + frac * (b - a)))
        chain.append(junction_stop[v])
        for s0, s1 in zip(chain[:-1], chain[1:]):
            seg_len = float(np.linalg.norm(positions[s1] - positions[s0]))
            stop_graph.add_edge(s0, s1, length=seg_len)

    return StopGraph(np.asarray(positions), stop_graph)
