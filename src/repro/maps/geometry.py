"""2-D computational geometry primitives for the campus simulator.

Everything works on plain ``(x, y)`` tuples / numpy arrays; the only class
is :class:`Polygon`, used for building footprints (UAV obstacles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Polygon",
    "BoundingBox",
    "euclidean",
    "segments_intersect",
    "point_segment_distance",
    "rectangle",
    "regular_polygon",
]


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Straight-line distance between two points."""
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    return float(np.hypot(ax - bx, ay - by))


def _orientation(p: Sequence[float], q: Sequence[float], r: Sequence[float]) -> int:
    """Return 0 (collinear), 1 (clockwise) or -1 (counter-clockwise)."""
    val = (q[1] - p[1]) * (r[0] - q[0]) - (q[0] - p[0]) * (r[1] - q[1])
    if abs(val) < 1e-12:
        return 0
    return 1 if val > 0 else -1


def _on_segment(p: Sequence[float], q: Sequence[float], r: Sequence[float]) -> bool:
    """Whether collinear point ``q`` lies on segment ``pr``."""
    return (min(p[0], r[0]) - 1e-12 <= q[0] <= max(p[0], r[0]) + 1e-12
            and min(p[1], r[1]) - 1e-12 <= q[1] <= max(p[1], r[1]) + 1e-12)


def segments_intersect(p1, q1, p2, q2) -> bool:
    """Whether segments ``p1q1`` and ``p2q2`` intersect (inclusive)."""
    o1 = _orientation(p1, q1, p2)
    o2 = _orientation(p1, q1, q2)
    o3 = _orientation(p2, q2, p1)
    o4 = _orientation(p2, q2, q1)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment(p1, q2, q1):
        return True
    if o3 == 0 and _on_segment(p2, p1, q2):
        return True
    if o4 == 0 and _on_segment(p2, q1, q2):
        return True
    return False


def point_segment_distance(point, seg_a, seg_b) -> float:
    """Shortest distance from ``point`` to segment ``seg_a``-``seg_b``."""
    p = np.asarray(point, dtype=float)
    a = np.asarray(seg_a, dtype=float)
    b = np.asarray(seg_b, dtype=float)
    ab = b - a
    denom = float(ab @ ab)
    if denom < 1e-18:
        return euclidean(p, a)
    t = float(np.clip((p - a) @ ab / denom, 0.0, 1.0))
    closest = a + t * ab
    return euclidean(p, closest)


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def contains(self, point: Sequence[float]) -> bool:
        x, y = float(point[0]), float(point[1])
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def expand(self, margin: float) -> "BoundingBox":
        return BoundingBox(self.min_x - margin, self.min_y - margin,
                           self.max_x + margin, self.max_y + margin)


@dataclass
class Polygon:
    """Simple polygon given by its vertex ring (no holes).

    Used for building footprints.  Supports containment tests (ray
    casting), segment intersection (UAV path vs obstacle), and sampling
    perimeter points (sensor placement on building walls).
    """

    vertices: np.ndarray
    _bbox: BoundingBox | None = field(default=None, repr=False, compare=False)

    def __init__(self, vertices: Iterable[Sequence[float]]):
        verts = np.asarray(list(vertices), dtype=float)
        if verts.ndim != 2 or verts.shape[1] != 2 or len(verts) < 3:
            raise ValueError("Polygon needs >= 3 (x, y) vertices")
        self.vertices = verts
        self._bbox = None

    def __len__(self) -> int:
        return len(self.vertices)

    @property
    def bbox(self) -> BoundingBox:
        if self._bbox is None:
            xs, ys = self.vertices[:, 0], self.vertices[:, 1]
            self._bbox = BoundingBox(float(xs.min()), float(ys.min()),
                                     float(xs.max()), float(ys.max()))
        return self._bbox

    @property
    def centroid(self) -> np.ndarray:
        return self.vertices.mean(axis=0)

    @property
    def area(self) -> float:
        """Shoelace area (absolute value)."""
        x, y = self.vertices[:, 0], self.vertices[:, 1]
        return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)

    def edges(self) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        verts = self.vertices
        for i in range(len(verts)):
            yield verts[i], verts[(i + 1) % len(verts)]

    def contains(self, point: Sequence[float]) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        if not self.bbox.contains(point):
            return False
        x, y = float(point[0]), float(point[1])
        inside = False
        verts = self.vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            xi, yi = verts[i]
            xj, yj = verts[j]
            # Boundary check first.
            if point_segment_distance((x, y), (xi, yi), (xj, yj)) < 1e-9:
                return True
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def intersects_segment(self, a: Sequence[float], b: Sequence[float]) -> bool:
        """Whether the open path a->b crosses or enters this polygon."""
        if not self.bbox.expand(1e-9).contains(a) and not self.bbox.expand(1e-9).contains(b):
            # Cheap reject only if the segment bbox misses the polygon bbox.
            seg_box = BoundingBox(min(a[0], b[0]), min(a[1], b[1]),
                                  max(a[0], b[0]), max(a[1], b[1]))
            if (seg_box.max_x < self.bbox.min_x or seg_box.min_x > self.bbox.max_x
                    or seg_box.max_y < self.bbox.min_y or seg_box.min_y > self.bbox.max_y):
                return False
        if self.contains(a) or self.contains(b):
            return True
        return any(segments_intersect(a, b, e0, e1) for e0, e1 in self.edges())

    def perimeter_points(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` points uniformly along the polygon perimeter."""
        if count <= 0:
            return np.zeros((0, 2))
        edges = list(self.edges())
        lengths = np.array([euclidean(a, b) for a, b in edges])
        total = lengths.sum()
        offsets = np.sort(rng.uniform(0.0, total, size=count))
        points = []
        cumulative = np.concatenate([[0.0], np.cumsum(lengths)])
        for off in offsets:
            idx = int(np.searchsorted(cumulative, off, side="right") - 1)
            idx = min(idx, len(edges) - 1)
            a, b = edges[idx]
            frac = (off - cumulative[idx]) / max(lengths[idx], 1e-12)
            points.append(a + frac * (b - a))
        return np.asarray(points)

    def buffered_contains(self, point: Sequence[float], margin: float) -> bool:
        """Containment with a safety margin around the footprint."""
        if self.contains(point):
            return True
        return any(point_segment_distance(point, a, b) <= margin for a, b in self.edges())


def rectangle(cx: float, cy: float, width: float, height: float, angle: float = 0.0) -> Polygon:
    """Axis-aligned (or rotated) rectangle centred at (cx, cy)."""
    hw, hh = width / 2.0, height / 2.0
    corners = np.array([[-hw, -hh], [hw, -hh], [hw, hh], [-hw, hh]])
    if angle:
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, -s], [s, c]])
        corners = corners @ rot.T
    return Polygon(corners + np.array([cx, cy]))


def regular_polygon(cx: float, cy: float, radius: float, sides: int, phase: float = 0.0) -> Polygon:
    """Regular polygon used for non-rectangular building footprints."""
    angles = phase + np.linspace(0.0, 2.0 * np.pi, sides, endpoint=False)
    pts = np.column_stack([cx + radius * np.cos(angles), cy + radius * np.sin(angles)])
    return Polygon(pts)
