"""Synthetic campus reconstructions of KAIST and UCLA.

The paper extracts both campuses from OpenStreetMap; those extracts are not
redistributable here, so we generate deterministic synthetic campuses that
match every statistic the paper publishes and relies on:

* KAIST — 1539.63 m (E-W) x 1433.37 m (N-S), 85 buildings, 138 sensors,
  a relatively simple (grid-like) road network.
* UCLA — 1675.36 m (E-W) x 1737.15 m (N-S), 163 buildings, 236 sensors,
  an irregular road network whose east and west halves connect through a
  thin corridor, with a sparse "lawn" centre holding little data.

The experiments' qualitative results depend on exactly these properties
(workzone size, sensor count and spatial unevenness, road-network
complexity), which is why this substitution preserves behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .geometry import Polygon, point_segment_distance, rectangle, regular_polygon
from .roads import grid_network, irregular_network

__all__ = ["CampusMap", "build_kaist", "build_ucla", "build_campus",
           "random_campus", "CAMPUS_BUILDERS"]

# Geometry published in Section V-A of the paper (metres).
KAIST_WIDTH, KAIST_HEIGHT = 1539.63, 1433.37
UCLA_WIDTH, UCLA_HEIGHT = 1675.36, 1737.15
KAIST_BUILDINGS, KAIST_SENSORS = 85, 138
UCLA_BUILDINGS, UCLA_SENSORS = 163, 236


@dataclass
class CampusMap:
    """Immutable description of a campus workzone.

    Attributes
    ----------
    name:
        Campus identifier (``"kaist"`` / ``"ucla"`` / custom).
    width, height:
        Extent in metres; the workzone is ``[0, width] x [0, height]``.
    roads:
        Undirected road graph; nodes carry ``pos`` attributes.
    buildings:
        Building footprints — obstacles UAVs cannot fly over.
    sensor_positions:
        ``(P, 2)`` array of sensor coordinates (on building walls).
    sensor_buildings:
        For each sensor, the index of its host building.
    """

    name: str
    width: float
    height: float
    roads: nx.Graph
    buildings: list[Polygon]
    sensor_positions: np.ndarray
    sensor_buildings: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    @property
    def num_sensors(self) -> int:
        return len(self.sensor_positions)

    @property
    def num_buildings(self) -> int:
        return len(self.buildings)

    @property
    def center(self) -> np.ndarray:
        return np.array([self.width / 2.0, self.height / 2.0])

    def point_in_building(self, point) -> bool:
        """Whether ``point`` is inside any building footprint."""
        return any(b.contains(point) for b in self.buildings)

    def segment_hits_building(self, a, b) -> bool:
        """Whether the straight path a->b crosses any building."""
        return any(poly.intersects_segment(a, b) for poly in self.buildings)

    def road_edges(self):
        """Yield road edges as coordinate pairs."""
        for u, v in self.roads.edges():
            yield (np.asarray(self.roads.nodes[u]["pos"]),
                   np.asarray(self.roads.nodes[v]["pos"]))

    def distance_to_road(self, point) -> float:
        """Distance from ``point`` to the nearest road segment."""
        return min(point_segment_distance(point, a, b) for a, b in self.road_edges())


def _place_buildings(rng: np.random.Generator, count: int, width: float, height: float,
                     road_edges: list[tuple[np.ndarray, np.ndarray]],
                     keep_region=None, min_side: float = 25.0, max_side: float = 70.0,
                     road_margin: float = 18.0, max_attempts: int = 20000) -> list[Polygon]:
    """Scatter non-overlapping building footprints off the roads."""
    buildings: list[Polygon] = []
    centers: list[np.ndarray] = []
    attempts = 0
    while len(buildings) < count and attempts < max_attempts:
        attempts += 1
        cx = rng.uniform(0.03 * width, 0.97 * width)
        cy = rng.uniform(0.03 * height, 0.97 * height)
        if keep_region is not None and not keep_region(cx, cy):
            continue
        # Keep footprints clear of roads so UGVs never drive "through" one.
        near_road = min(point_segment_distance((cx, cy), a, b) for a, b in road_edges)
        if near_road < road_margin + max_side / 2.0:
            continue
        size = rng.uniform(min_side, max_side)
        radius = size / 2.0
        if centers:
            gaps = np.hypot(*(np.asarray(centers) - np.array([cx, cy])).T)
            if gaps.min() < size + min_side:
                continue
        if rng.random() < 0.8:
            footprint = rectangle(cx, cy, size, rng.uniform(min_side, max_side),
                                  angle=rng.uniform(0, np.pi / 2))
        else:
            footprint = regular_polygon(cx, cy, radius, sides=int(rng.integers(5, 8)),
                                        phase=rng.uniform(0, np.pi))
        buildings.append(footprint)
        centers.append(np.array([cx, cy]))
    return buildings


def _place_sensors(rng: np.random.Generator, buildings: list[Polygon],
                   count: int) -> tuple[np.ndarray, np.ndarray]:
    """Attach sensors to building perimeters, at least one per chosen building.

    Sensor count exceeds building count in both campuses, so we first give
    every building a chance proportional to its area, then round-robin the
    remainder — mirroring the paper's "sensors on buildings" placement.
    """
    if not buildings:
        raise ValueError("cannot place sensors without buildings")
    areas = np.array([b.area for b in buildings])
    probs = areas / areas.sum()
    hosts = rng.choice(len(buildings), size=count, p=probs)
    positions = []
    for host in hosts:
        positions.append(buildings[host].perimeter_points(1, rng)[0])
    return np.asarray(positions), hosts.astype(int)


def build_kaist(seed: int = 7) -> CampusMap:
    """Deterministic synthetic KAIST campus (simple grid-like roads)."""
    rng = np.random.default_rng(seed)
    roads = grid_network(KAIST_WIDTH, KAIST_HEIGHT, rows=6, cols=6,
                         jitter=30.0, rng=rng, drop_prob=0.08)
    edges = [(np.asarray(roads.nodes[u]["pos"]), np.asarray(roads.nodes[v]["pos"]))
             for u, v in roads.edges()]
    buildings = _place_buildings(rng, KAIST_BUILDINGS, KAIST_WIDTH, KAIST_HEIGHT, edges,
                                 min_side=20.0, max_side=55.0, road_margin=12.0)
    sensors, hosts = _place_sensors(rng, buildings, KAIST_SENSORS)
    return CampusMap("kaist", KAIST_WIDTH, KAIST_HEIGHT, roads, buildings, sensors, hosts)


def build_ucla(seed: int = 11) -> CampusMap:
    """Deterministic synthetic UCLA campus.

    Irregular junction placement, a sparse central lawn, and a thin
    east-west connecting corridor — the three features Section V of the
    paper attributes UCLA's difficulty to.
    """
    rng = np.random.default_rng(seed)
    width, height = UCLA_WIDTH, UCLA_HEIGHT
    lawn_center = np.array([width * 0.5, height * 0.52])
    lawn_radius = 0.16 * min(width, height)
    band_lo, band_hi = width * 0.42, width * 0.58
    corridor_y = height * 0.50
    corridor_half = height * 0.045

    def keep_region(x: float, y: float) -> bool:
        # The lawn centre has no junctions; the central band only admits
        # the thin corridor.
        if np.hypot(x - lawn_center[0], y - lawn_center[1]) < lawn_radius:
            return False
        if band_lo < x < band_hi and abs(y - corridor_y) > corridor_half:
            return False
        return True

    corridor = [((band_lo - 20.0, corridor_y), (band_hi + 20.0, corridor_y))]
    roads = irregular_network(width, height, junctions=60, rng=rng,
                              connect_radius=310.0, keep_region=keep_region,
                              corridor_edges=corridor)
    edges = [(np.asarray(roads.nodes[u]["pos"]), np.asarray(roads.nodes[v]["pos"]))
             for u, v in roads.edges()]

    def building_region(x: float, y: float) -> bool:
        # Buildings (and hence data) avoid the lawn and the thin corridor,
        # creating the uneven east/west data distribution.
        if np.hypot(x - lawn_center[0], y - lawn_center[1]) < lawn_radius * 1.15:
            return False
        if band_lo < x < band_hi:
            return False
        return True

    buildings = _place_buildings(rng, UCLA_BUILDINGS, width, height, edges,
                                 keep_region=building_region,
                                 min_side=18.0, max_side=48.0, road_margin=10.0)
    sensors, hosts = _place_sensors(rng, buildings, UCLA_SENSORS)
    return CampusMap("ucla", width, height, roads, buildings, sensors, hosts)


def build_campus(name: str, seed: int | None = None, scale: float = 1.0) -> CampusMap:
    """Build a campus by name.  ``scale`` < 1 shrinks the workzone for tests.

    ``scale`` proportionally reduces extent, building count and sensor
    count, producing a faithful miniature for smoke-scale experiments.
    """
    key = name.lower()
    if key not in CAMPUS_BUILDERS:
        raise KeyError(f"unknown campus {name!r}; choose from {sorted(CAMPUS_BUILDERS)}")
    if scale == 1.0:
        return CAMPUS_BUILDERS[key](seed) if seed is not None else CAMPUS_BUILDERS[key]()
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    full = CAMPUS_BUILDERS[key](seed) if seed is not None else CAMPUS_BUILDERS[key]()
    return _scaled_campus(full, scale, seed if seed is not None else 0)


def _scaled_campus(campus: CampusMap, scale: float, seed: int) -> CampusMap:
    """Produce a miniature campus preserving structure statistics."""
    rng = np.random.default_rng(seed + 1000)
    width, height = campus.width * scale, campus.height * scale
    if campus.name == "kaist":
        roads = grid_network(width, height, rows=4, cols=4, jitter=10.0, rng=rng, drop_prob=0.05)
    else:
        band_lo, band_hi = width * 0.42, width * 0.58
        corridor_y = height * 0.5

        def keep(x: float, y: float) -> bool:
            return not (band_lo < x < band_hi and abs(y - corridor_y) > height * 0.08)

        roads = irregular_network(width, height, junctions=18, rng=rng,
                                  connect_radius=0.35 * max(width, height), keep_region=keep,
                                  corridor_edges=[((band_lo - 5, corridor_y), (band_hi + 5, corridor_y))])
    edges = [(np.asarray(roads.nodes[u]["pos"]), np.asarray(roads.nodes[v]["pos"]))
             for u, v in roads.edges()]
    n_buildings = max(4, int(campus.num_buildings * scale * scale))
    n_sensors = max(6, int(campus.num_sensors * scale * scale))
    buildings = _place_buildings(rng, n_buildings, width, height, edges,
                                 min_side=12.0, max_side=30.0, road_margin=8.0)
    sensors, hosts = _place_sensors(rng, buildings, n_sensors)
    return CampusMap(campus.name, width, height, roads, buildings, sensors, hosts)


def random_campus(name: str = "custom", width: float = 800.0, height: float = 800.0,
                  buildings: int = 20, sensors: int = 30, seed: int = 0,
                  road_style: str = "grid", junctions: int = 24) -> CampusMap:
    """Generate a custom synthetic campus for new scenarios.

    Parameters
    ----------
    road_style:
        ``"grid"`` for a regular KAIST-like net, ``"irregular"`` for a
        UCLA-like random geometric net.
    junctions:
        Junction count for irregular nets; grids derive rows/cols from it.

    The result satisfies the same invariants as the paper campuses:
    connected roads, buildings clear of roads, sensors on building walls.
    """
    if width <= 0 or height <= 0:
        raise ValueError("extent must be positive")
    if buildings < 1 or sensors < 1:
        raise ValueError("need at least one building and one sensor")
    rng = np.random.default_rng(seed)
    if road_style == "grid":
        side = max(2, int(np.sqrt(junctions)))
        roads = grid_network(width, height, rows=side, cols=side,
                             jitter=0.02 * min(width, height), rng=rng,
                             drop_prob=0.05)
    elif road_style == "irregular":
        roads = irregular_network(width, height, junctions=junctions, rng=rng,
                                  connect_radius=0.35 * max(width, height))
    else:
        raise ValueError(f"unknown road_style {road_style!r}")
    edges = [(np.asarray(roads.nodes[u]["pos"]), np.asarray(roads.nodes[v]["pos"]))
             for u, v in roads.edges()]
    side_scale = min(width, height) / 400.0
    footprints = _place_buildings(rng, buildings, width, height, edges,
                                  min_side=max(10.0, 18.0 * side_scale),
                                  max_side=max(20.0, 45.0 * side_scale),
                                  road_margin=max(6.0, 10.0 * side_scale))
    if not footprints:
        raise RuntimeError("could not place any buildings; relax the parameters")
    sensor_positions, hosts = _place_sensors(rng, footprints, sensors)
    return CampusMap(name, float(width), float(height), roads, footprints,
                     sensor_positions, hosts)


CAMPUS_BUILDERS = {"kaist": build_kaist, "ucla": build_ucla}
