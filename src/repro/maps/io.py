"""Campus map (de)serialisation.

The paper builds its campuses from OpenStreetMap extracts.  This module
closes that data path for users: a :class:`CampusMap` round-trips through
a simple JSON schema, so a real OSM extract (converted externally to this
schema) can be dropped into the simulator in place of the synthetic
generators.

Schema (version 1)::

    {
      "version": 1,
      "name": "kaist",
      "width": 1539.63, "height": 1433.37,
      "roads": {"nodes": [[x, y], ...], "edges": [[i, j], ...]},
      "buildings": [[[x, y], ...], ...],        # vertex rings
      "sensors": {"positions": [[x, y], ...], "buildings": [i, ...]}
    }
"""

from __future__ import annotations

import json
from pathlib import Path

import networkx as nx
import numpy as np

from .campus import CampusMap
from .geometry import Polygon

__all__ = ["campus_to_dict", "campus_from_dict", "save_campus", "load_campus"]

SCHEMA_VERSION = 1


def campus_to_dict(campus: CampusMap) -> dict:
    """Serialise a campus to the JSON schema (plain Python types only)."""
    nodes = sorted(campus.roads.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    return {
        "version": SCHEMA_VERSION,
        "name": campus.name,
        "width": campus.width,
        "height": campus.height,
        "roads": {
            "nodes": [list(map(float, campus.roads.nodes[n]["pos"])) for n in nodes],
            "edges": [[index[u], index[v]] for u, v in campus.roads.edges()],
        },
        "buildings": [building.vertices.tolist() for building in campus.buildings],
        "sensors": {
            "positions": campus.sensor_positions.tolist(),
            "buildings": campus.sensor_buildings.tolist(),
        },
    }


def campus_from_dict(payload: dict) -> CampusMap:
    """Build a campus from the JSON schema, validating shape constraints."""
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported campus schema version {version!r}")
    width = float(payload["width"])
    height = float(payload["height"])
    if width <= 0 or height <= 0:
        raise ValueError("campus extent must be positive")

    roads = nx.Graph()
    node_positions = payload["roads"]["nodes"]
    for i, (x, y) in enumerate(node_positions):
        roads.add_node(i, pos=(float(x), float(y)))
    for u, v in payload["roads"]["edges"]:
        if u == v:
            raise ValueError("road edges may not be self-loops")
        pu = np.asarray(roads.nodes[int(u)]["pos"])
        pv = np.asarray(roads.nodes[int(v)]["pos"])
        roads.add_edge(int(u), int(v), length=float(np.linalg.norm(pu - pv)))
    if roads.number_of_nodes() == 0:
        raise ValueError("campus needs at least one road node")

    buildings = [Polygon(ring) for ring in payload["buildings"]]

    sensors = np.asarray(payload["sensors"]["positions"], dtype=float)
    hosts = np.asarray(payload["sensors"]["buildings"], dtype=int)
    if sensors.ndim != 2 or sensors.shape[1] != 2:
        raise ValueError("sensor positions must be (P, 2)")
    if len(hosts) != len(sensors):
        raise ValueError("sensor host list must match sensor count")
    if buildings and hosts.size and (hosts.min() < 0 or hosts.max() >= len(buildings)):
        raise ValueError("sensor host index out of range")

    return CampusMap(str(payload["name"]), width, height, roads,
                     buildings, sensors, hosts)


def save_campus(campus: CampusMap, path: str | Path) -> Path:
    """Write a campus as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(campus_to_dict(campus), fh)
    return path


def load_campus(path: str | Path) -> CampusMap:
    """Read a campus from JSON written by :func:`save_campus` (or an
    external converter emitting the same schema)."""
    with open(path) as fh:
        return campus_from_dict(json.load(fh))
