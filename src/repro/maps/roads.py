"""Road-network construction.

A road network is an undirected ``networkx.Graph`` whose nodes carry a
``pos`` attribute (metres).  Two generators cover the paper's two regimes:

* :func:`grid_network` — a regular, mostly rectilinear net (KAIST's
  "relatively simpler road network").
* :func:`irregular_network` — jittered junctions, pruned edges and
  optional corridor constraints (UCLA's "more complicated" layout with a
  thin east-west connector).
"""

from __future__ import annotations

from typing import Callable, Sequence

import networkx as nx
import numpy as np

__all__ = ["grid_network", "irregular_network", "largest_component", "total_road_length"]


def _add_edge_with_length(graph: nx.Graph, a, b) -> None:
    pa = np.asarray(graph.nodes[a]["pos"])
    pb = np.asarray(graph.nodes[b]["pos"])
    graph.add_edge(a, b, length=float(np.linalg.norm(pa - pb)))


def grid_network(width: float, height: float, rows: int, cols: int,
                 jitter: float = 0.0, rng: np.random.Generator | None = None,
                 drop_prob: float = 0.0) -> nx.Graph:
    """Build a rows x cols junction grid spanning ``width`` x ``height``.

    ``jitter`` perturbs junction positions; ``drop_prob`` randomly removes
    edges (connectivity is restored to the largest component afterwards).
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_network needs at least a 2x2 grid")
    rng = rng or np.random.default_rng(0)
    graph = nx.Graph()
    xs = np.linspace(0.05 * width, 0.95 * width, cols)
    ys = np.linspace(0.05 * height, 0.95 * height, rows)
    # One-off network construction at campus-build time; per-node rng
    # jitter draws are order-dependent, so the loop stays.
    for r in range(rows):  # reprolint: disable=PF003
        for c in range(cols):
            x = xs[c] + (rng.uniform(-jitter, jitter) if jitter else 0.0)
            y = ys[r] + (rng.uniform(-jitter, jitter) if jitter else 0.0)
            graph.add_node((r, c), pos=(float(x), float(y)))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols and (not drop_prob or rng.random() >= drop_prob):
                _add_edge_with_length(graph, (r, c), (r, c + 1))
            if r + 1 < rows and (not drop_prob or rng.random() >= drop_prob):
                _add_edge_with_length(graph, (r, c), (r + 1, c))
    return largest_component(graph)


def irregular_network(width: float, height: float, junctions: int,
                      rng: np.random.Generator, connect_radius: float,
                      keep_region: Callable[[float, float], bool] | None = None,
                      corridor_edges: Sequence[tuple[tuple[float, float], tuple[float, float]]] = ()) -> nx.Graph:
    """Random geometric road network.

    Junctions are sampled uniformly (optionally filtered by
    ``keep_region``), connected when within ``connect_radius``, then
    reduced to the largest connected component.  ``corridor_edges`` force
    specific long links (e.g. UCLA's thin east-west connector).
    """
    graph = nx.Graph()
    placed = 0
    attempts = 0
    while placed < junctions and attempts < junctions * 50:
        attempts += 1
        x = float(rng.uniform(0.05 * width, 0.95 * width))
        y = float(rng.uniform(0.05 * height, 0.95 * height))
        if keep_region is not None and not keep_region(x, y):
            continue
        graph.add_node(placed, pos=(x, y))
        placed += 1
    nodes = list(graph.nodes)
    # One-off gather at network-construction time.
    positions = np.array([graph.nodes[n]["pos"] for n in nodes])  # reprolint: disable=PF001
    for i, a in enumerate(nodes):
        deltas = positions - positions[i]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        for j in np.nonzero((dists > 0) & (dists <= connect_radius))[0]:
            _add_edge_with_length(graph, a, nodes[int(j)])
    next_id = placed
    for (ax, ay), (bx, by) in corridor_edges:
        a_id, b_id = next_id, next_id + 1
        next_id += 2
        graph.add_node(a_id, pos=(float(ax), float(ay)))
        graph.add_node(b_id, pos=(float(bx), float(by)))
        _add_edge_with_length(graph, a_id, b_id)
        # Stitch corridor endpoints to their nearest organic junction.
        for endpoint in (a_id, b_id):
            pos = np.asarray(graph.nodes[endpoint]["pos"])
            dists = np.hypot(positions[:, 0] - pos[0], positions[:, 1] - pos[1])
            nearest = nodes[int(np.argmin(dists))]
            _add_edge_with_length(graph, endpoint, nearest)
    return largest_component(graph)


def largest_component(graph: nx.Graph) -> nx.Graph:
    """Return the subgraph on the largest connected component (relabelled 0..n-1)."""
    if graph.number_of_nodes() == 0:
        return graph
    component = max(nx.connected_components(graph), key=len)
    sub = graph.subgraph(component).copy()
    return nx.convert_node_labels_to_integers(sub, ordering="sorted")


def total_road_length(graph: nx.Graph) -> float:
    """Sum of edge lengths in metres."""
    return float(sum(data["length"] for _, _, data in graph.edges(data=True)))
