"""Generalized Advantage Estimation (Schulman et al., 2015)."""

from __future__ import annotations

import numpy as np

__all__ = ["compute_gae", "compute_gae_batch"]


def compute_gae(rewards: np.ndarray, values: np.ndarray, dones: np.ndarray,
                gamma: float, lam: float, last_value: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Compute GAE advantages and discounted return targets.

    Parameters
    ----------
    rewards, values, dones:
        Arrays of length T for one agent's trajectory.  ``dones[t]`` is
        True when the episode terminates *after* step t.
    last_value:
        Bootstrap value of the state following the final step (0 for a
        finished episode).

    Returns
    -------
    (advantages, returns):
        ``returns = advantages + values`` are the value-function targets
        ``R̂_t`` of Eqn. (16).
    """
    rewards = np.asarray(rewards, dtype=float)
    values = np.asarray(values, dtype=float)
    dones = np.asarray(dones, dtype=bool)
    if not (len(rewards) == len(values) == len(dones)):
        raise ValueError("rewards, values and dones must share a length")

    t_max = len(rewards)
    advantages = np.zeros(t_max)
    gae = 0.0
    next_value = last_value
    for t in reversed(range(t_max)):
        nonterminal = 0.0 if dones[t] else 1.0
        delta = rewards[t] + gamma * next_value * nonterminal - values[t]
        gae = delta + gamma * lam * nonterminal * gae
        advantages[t] = gae
        next_value = values[t]
    return advantages, advantages + values


def compute_gae_batch(rewards: np.ndarray, values: np.ndarray, dones: np.ndarray,
                      gamma: float, lam: float) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized GAE over ``(K, T, ...)`` arrays (time on axis 1).

    Every trailing axis (agents, UAVs) is an independent reward stream;
    ``dones`` is either ``(K, T)`` — broadcast over the trailing axes, the
    shared episode terminal — or the full shape of ``rewards`` for
    per-stream terminals (UAV flight ends).  The recursion is element-wise
    identical to :func:`compute_gae` per stream, just batched: one reverse
    pass over T regardless of K.

    All streams bootstrap with a terminal value of 0, which is exact here
    because every episode (and every UAV flight segment) carries its own
    terminal flag inside ``dones``.
    """
    rewards = np.asarray(rewards, dtype=float)
    values = np.asarray(values, dtype=float)
    dones = np.asarray(dones, dtype=bool)
    if rewards.shape != values.shape:
        raise ValueError("rewards and values must share a shape")
    if dones.shape != rewards.shape[:dones.ndim]:
        raise ValueError(f"dones shape {dones.shape} does not prefix {rewards.shape}")
    # Broadcast (K, T) dones over trailing stream axes.
    dones = dones.reshape(dones.shape + (1,) * (rewards.ndim - dones.ndim))

    t_max = rewards.shape[1]
    advantages = np.zeros_like(rewards)
    gae = np.zeros_like(rewards[:, 0])
    next_value = np.zeros_like(gae)
    for t in reversed(range(t_max)):
        nonterminal = 1.0 - dones[:, t].astype(float)
        delta = rewards[:, t] + gamma * next_value * nonterminal - values[:, t]
        gae = delta + gamma * lam * nonterminal * gae
        advantages[:, t] = gae
        next_value = values[:, t]
    return advantages, advantages + values
