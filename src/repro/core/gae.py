"""Generalized Advantage Estimation (Schulman et al., 2015)."""

from __future__ import annotations

import numpy as np

__all__ = ["compute_gae"]


def compute_gae(rewards: np.ndarray, values: np.ndarray, dones: np.ndarray,
                gamma: float, lam: float, last_value: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Compute GAE advantages and discounted return targets.

    Parameters
    ----------
    rewards, values, dones:
        Arrays of length T for one agent's trajectory.  ``dones[t]`` is
        True when the episode terminates *after* step t.
    last_value:
        Bootstrap value of the state following the final step (0 for a
        finished episode).

    Returns
    -------
    (advantages, returns):
        ``returns = advantages + values`` are the value-function targets
        ``R̂_t`` of Eqn. (16).
    """
    rewards = np.asarray(rewards, dtype=float)
    values = np.asarray(values, dtype=float)
    dones = np.asarray(dones, dtype=bool)
    if not (len(rewards) == len(values) == len(dones)):
        raise ValueError("rewards, values and dones must share a length")

    t_max = len(rewards)
    advantages = np.zeros(t_max)
    gae = 0.0
    next_value = last_value
    for t in reversed(range(t_max)):
        nonterminal = 0.0 if dones[t] else 1.0
        delta = rewards[t] + gamma * next_value * nonterminal - values[t]
        gae = delta + gamma * lam * nonterminal * gae
        advantages[t] = gae
        next_value = values[t]
    return advantages, advantages + values
