"""Rollout storage for IPPO training (the D^u / D^v buffers of Algorithm 1).

Two families coexist:

* ``UGVRollout``/``UAVRollout`` — the original per-episode list/dataclass
  storage used by the sequential path (and by tests as the semantic
  reference).
* ``VecUGVRollout``/``VecUAVRollout`` — preallocated ``(K, T, ...)``
  arrays filled by the vectorized rollout driver, with GAE vectorized
  over all replica/agent streams at once and flat index views for
  minibatched PPO updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..env.observation import UAVObservation, UAVObsArrays, UGVObservation, UGVObsArrays
from .gae import compute_gae, compute_gae_batch

__all__ = ["UGVRollout", "UAVRollout", "UGVSample", "UAVSample",
           "VecUGVRollout", "VecUAVRollout", "UGVFlatBatch", "UAVFlatBatch"]


@dataclass
class UGVSample:
    """One trainable (timestep, agent) pair for the UGV policy.

    ``joint_observations`` is the full per-UGV observation list of that
    timestep — the coupled GARL forward pass re-runs on it during PPO
    updates.  ``episode``/``t`` identify the timestep explicitly, so
    trainers group samples by ``(episode, t)`` to forward each distinct
    timestep exactly once (list identity is not load-bearing).
    """

    joint_observations: list[UGVObservation]
    agent: int
    action: int
    log_prob: float
    value: float
    advantage: float = 0.0
    ret: float = 0.0
    episode: int = 0
    t: int = 0


@dataclass
class UAVSample:
    """One trainable airborne transition for the UAV policy."""

    observation: UAVObservation
    action: np.ndarray
    log_prob: float
    value: float
    advantage: float = 0.0
    ret: float = 0.0


@dataclass
class UGVRollout:
    """Episode storage for all UGVs.

    ``observations[t]`` is the joint list of per-UGV observations, which
    the coupled GARL forward pass needs in full.  Waiting UGVs do not act
    and contribute no policy-loss samples, but their rewards still flow
    into the GAE stream so release decisions are credited correctly.
    """

    num_agents: int
    observations: list[list[UGVObservation]] = field(default_factory=list)
    actions: list[np.ndarray] = field(default_factory=list)
    log_probs: list[np.ndarray] = field(default_factory=list)
    values: list[np.ndarray] = field(default_factory=list)
    rewards: list[np.ndarray] = field(default_factory=list)
    actionable: list[np.ndarray] = field(default_factory=list)
    dones: list[bool] = field(default_factory=list)

    def add(self, obs, actions, log_probs, values, rewards, actionable, done) -> None:
        self.observations.append(obs)
        self.actions.append(np.asarray(actions, dtype=int))
        self.log_probs.append(np.asarray(log_probs, dtype=float))
        self.values.append(np.asarray(values, dtype=float))
        self.rewards.append(np.asarray(rewards, dtype=float))
        self.actionable.append(np.asarray(actionable, dtype=bool))
        self.dones.append(bool(done))

    def __len__(self) -> int:
        return len(self.observations)

    def build_samples(self, gamma: float, lam: float, episode: int = 0) -> list[UGVSample]:
        """Run GAE per agent and emit samples for actionable steps only.

        ``episode`` tags every sample so multi-episode collects keep
        timestep groups from different episodes distinct.
        """
        samples: list[UGVSample] = []
        rewards = np.asarray(self.rewards)  # (T, U)
        values = np.asarray(self.values)
        dones = np.asarray(self.dones)
        # Builds per-timestep Python sample objects (the minibatch unit),
        # so the element access is the point, not an accident; runs once
        # per iteration at sample-build time.
        for agent in range(self.num_agents):  # reprolint: disable=PF003
            adv, ret = compute_gae(rewards[:, agent], values[:, agent], dones, gamma, lam)
            for t in range(len(self)):
                if not self.actionable[t][agent]:
                    continue
                samples.append(UGVSample(
                    joint_observations=self.observations[t], agent=agent,
                    action=int(self.actions[t][agent]),
                    log_prob=float(self.log_probs[t][agent]),
                    value=float(values[t, agent]),
                    advantage=float(adv[t]), ret=float(ret[t]),
                    episode=episode, t=t))
        return samples


@dataclass
class UAVRollout:
    """Per-UAV flight segments.

    Each UAV's airborne transitions form contiguous segments terminated
    by docking; GAE treats each segment as its own (finished) trajectory.
    """

    num_agents: int
    _segments: list[list[dict]] = field(default_factory=list)
    _open: dict[int, list[dict]] = field(default_factory=dict)

    def add(self, agent: int, observation: UAVObservation, action: np.ndarray,
            log_prob: float, value: float, reward: float) -> None:
        self._open.setdefault(agent, []).append({
            "obs": observation, "action": np.asarray(action, dtype=float),
            "logp": float(log_prob), "value": float(value), "reward": float(reward),
        })

    def close_flight(self, agent: int) -> None:
        """Seal the agent's current flight segment (on docking)."""
        seg = self._open.pop(agent, None)
        if seg:
            self._segments.append(seg)

    def close_all(self) -> None:
        for agent in list(self._open):
            self.close_flight(agent)

    @property
    def num_transitions(self) -> int:
        return sum(len(s) for s in self._segments) + sum(len(s) for s in self._open.values())

    def build_samples(self, gamma: float, lam: float) -> list[UAVSample]:
        self.close_all()
        samples: list[UAVSample] = []
        for segment in self._segments:
            # Per-flight-segment GAE arrays, built once per training
            # iteration (segments are ragged, so no shared buffer fits).
            rewards = np.array([step["reward"] for step in segment])
            values = np.array([step["value"] for step in segment])
            dones = np.zeros(len(segment), dtype=bool)  # reprolint: disable=PF002
            dones[-1] = True  # docking ends the decision sequence
            adv, ret = compute_gae(rewards, values, dones, gamma, lam)
            for i, step in enumerate(segment):
                samples.append(UAVSample(
                    observation=step["obs"], action=step["action"],
                    log_prob=step["logp"], value=step["value"],
                    advantage=float(adv[i]), ret=float(ret[i])))
        return samples


# ----------------------------------------------------------------------
# Array-backed vectorized rollouts
# ----------------------------------------------------------------------
@dataclass
class UGVFlatBatch:
    """Flat index view over a VecUGVRollout's actionable (env, t, agent) rows.

    ``env``/``t``/``agent`` index back into the rollout arrays; PPO
    minibatches gather observation slices through them (one batched
    forward per set of unique ``(env, t)`` pairs).
    """

    obs: UGVObsArrays  # the rollout's (K, T, U, ...) arrays, by reference
    horizon: int
    env: np.ndarray  # (N,) int
    t: np.ndarray  # (N,) int
    agent: np.ndarray  # (N,) int
    actions: np.ndarray  # (N,) int
    log_probs: np.ndarray  # (N,)
    values: np.ndarray  # (N,)
    advantages: np.ndarray  # (N,)
    returns: np.ndarray  # (N,)

    def __len__(self) -> int:
        return len(self.env)


@dataclass
class UAVFlatBatch:
    """Flat airborne UAV transitions gathered out of a VecUAVRollout."""

    grids: np.ndarray  # (N, 3, S, S)
    aux: np.ndarray  # (N, 5)
    actions: np.ndarray  # (N, 2)
    log_probs: np.ndarray  # (N,)
    values: np.ndarray  # (N,)
    advantages: np.ndarray  # (N,)
    returns: np.ndarray  # (N,)

    def __len__(self) -> int:
        return len(self.log_probs)


class VecUGVRollout:
    """Preallocated ``(K, T, ...)`` UGV rollout storage.

    Waiting UGVs contribute rewards to the GAE streams but no policy-loss
    rows, mirroring :class:`UGVRollout`; episode boundaries inside the
    horizon carry per-step ``dones`` (auto-reset makes T span several
    episodes when collecting more than one per replica).
    """

    def __init__(self, num_envs: int, horizon: int, num_agents: int, num_stops: int):
        self.num_envs = num_envs
        self.horizon = horizon
        self.num_agents = num_agents
        self.obs = UGVObsArrays.allocate((num_envs, horizon), num_agents, num_stops)
        self.actions = np.zeros((num_envs, horizon, num_agents), dtype=np.int64)
        self.log_probs = np.zeros((num_envs, horizon, num_agents))
        self.values = np.zeros((num_envs, horizon, num_agents))
        self.rewards = np.zeros((num_envs, horizon, num_agents))
        self.actionable = np.zeros((num_envs, horizon, num_agents), dtype=bool)
        self.dones = np.zeros((num_envs, horizon), dtype=bool)
        self._cursor = 0
        self._flat: UGVFlatBatch | None = None

    def __len__(self) -> int:
        return self._cursor

    def add(self, obs: UGVObsArrays, actions, log_probs, values, rewards,
            actionable, dones) -> None:
        """Record one vectorized step (pre-step obs, post-step rewards)."""
        t = self._cursor
        if t >= self.horizon:
            raise IndexError("VecUGVRollout is full")
        self.obs.write((slice(None), t), obs)
        self.actions[:, t] = actions
        self.log_probs[:, t] = log_probs
        self.values[:, t] = values
        self.rewards[:, t] = rewards
        self.actionable[:, t] = actionable
        self.dones[:, t] = dones
        self._cursor = t + 1

    def flat_samples(self, gamma: float, lam: float) -> UGVFlatBatch:
        """GAE over all (K, U) streams at once + flat actionable indices.

        Rows are ordered (env, agent, t) — agent-major within a replica —
        which at K=1 is exactly the sample order of
        :meth:`UGVRollout.build_samples`.
        """
        if self._flat is not None:
            return self._flat
        t = self._cursor
        adv, ret = compute_gae_batch(self.rewards[:, :t], self.values[:, :t],
                                     self.dones[:, :t], gamma, lam)
        env_i, agent_i, t_i = np.nonzero(self.actionable[:, :t].transpose(0, 2, 1))
        rows = (env_i, t_i, agent_i)
        self._flat = UGVFlatBatch(
            obs=self.obs, horizon=self.horizon,
            env=env_i, t=t_i, agent=agent_i,
            actions=self.actions[rows], log_probs=self.log_probs[rows],
            values=self.values[rows], advantages=adv[rows], returns=ret[rows])
        return self._flat


class VecUAVRollout:
    """Preallocated ``(K, T, V, ...)`` UAV rollout storage.

    ``valid[k, t, v]`` marks UAV v airborne at decision time;
    ``flight_end`` marks the last decision of a flight (docked next step,
    or the episode ended), which is where the per-flight GAE recursion
    terminates — equivalent to :class:`UAVRollout`'s explicit segments.
    Invalid gaps between flights hold zeros and never leak into valid
    steps: a valid step followed by an invalid one is by construction a
    flight end, so the recursion is already cut there.
    """

    def __init__(self, num_envs: int, horizon: int, num_uavs: int, obs_size: int):
        self.num_envs = num_envs
        self.horizon = horizon
        self.num_uavs = num_uavs
        self.obs = UAVObsArrays.allocate((num_envs, horizon), num_uavs, obs_size)
        self.actions = np.zeros((num_envs, horizon, num_uavs, 2))
        self.log_probs = np.zeros((num_envs, horizon, num_uavs))
        self.values = np.zeros((num_envs, horizon, num_uavs))
        self.rewards = np.zeros((num_envs, horizon, num_uavs))
        self.valid = np.zeros((num_envs, horizon, num_uavs), dtype=bool)
        self.flight_end = np.zeros((num_envs, horizon, num_uavs), dtype=bool)
        self._cursor = 0
        self._flat: UAVFlatBatch | None = None

    def __len__(self) -> int:
        return self._cursor

    @property
    def num_transitions(self) -> int:
        return int(self.valid.sum())

    def add(self, obs: UAVObsArrays, actions, log_probs, values, rewards,
            next_airborne, dones) -> None:
        """Record one vectorized step for all UAVs.

        ``obs.airborne`` is the decision-time validity; ``next_airborne``
        (the post-step observation's flags) and ``dones`` determine flight
        ends.
        """
        t = self._cursor
        if t >= self.horizon:
            raise IndexError("VecUAVRollout is full")
        self.obs.write((slice(None), t), obs)
        valid = obs.airborne
        self.valid[:, t] = valid
        self.actions[:, t] = actions
        self.log_probs[:, t] = log_probs
        self.values[:, t] = values
        self.rewards[:, t] = np.where(valid, rewards, 0.0)
        dones = np.asarray(dones, dtype=bool)
        self.flight_end[:, t] = valid & (~np.asarray(next_airborne, dtype=bool)
                                         | dones[:, None])
        self._cursor = t + 1

    def flat_samples(self, gamma: float, lam: float) -> UAVFlatBatch:
        """Per-flight GAE over all (K, V) streams + gathered flat rows."""
        if self._flat is not None:
            return self._flat
        t = self._cursor
        values = np.where(self.valid[:, :t], self.values[:, :t], 0.0)
        adv, ret = compute_gae_batch(self.rewards[:, :t], values,
                                     self.flight_end[:, :t], gamma, lam)
        env_i, uav_i, t_i = np.nonzero(self.valid[:, :t].transpose(0, 2, 1))
        rows = (env_i, t_i, uav_i)
        self._flat = UAVFlatBatch(
            grids=self.obs.grid[rows], aux=self.obs.aux[rows],
            actions=self.actions[rows], log_probs=self.log_probs[rows],
            values=self.values[rows], advantages=adv[rows], returns=ret[rows])
        return self._flat
