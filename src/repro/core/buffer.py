"""Rollout storage for IPPO training (the D^u / D^v buffers of Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..env.observation import UAVObservation, UGVObservation
from .gae import compute_gae

__all__ = ["UGVRollout", "UAVRollout", "UGVSample", "UAVSample"]


@dataclass
class UGVSample:
    """One trainable (timestep, agent) pair for the UGV policy.

    ``joint_observations`` is the full per-UGV observation list of that
    timestep — the coupled GARL forward pass re-runs on it during PPO
    updates, so samples sharing a timestep share the same list object
    (trainers group by identity to forward once).
    """

    joint_observations: list[UGVObservation]
    agent: int
    action: int
    log_prob: float
    value: float
    advantage: float = 0.0
    ret: float = 0.0


@dataclass
class UAVSample:
    """One trainable airborne transition for the UAV policy."""

    observation: UAVObservation
    action: np.ndarray
    log_prob: float
    value: float
    advantage: float = 0.0
    ret: float = 0.0


@dataclass
class UGVRollout:
    """Episode storage for all UGVs.

    ``observations[t]`` is the joint list of per-UGV observations, which
    the coupled GARL forward pass needs in full.  Waiting UGVs do not act
    and contribute no policy-loss samples, but their rewards still flow
    into the GAE stream so release decisions are credited correctly.
    """

    num_agents: int
    observations: list[list[UGVObservation]] = field(default_factory=list)
    actions: list[np.ndarray] = field(default_factory=list)
    log_probs: list[np.ndarray] = field(default_factory=list)
    values: list[np.ndarray] = field(default_factory=list)
    rewards: list[np.ndarray] = field(default_factory=list)
    actionable: list[np.ndarray] = field(default_factory=list)
    dones: list[bool] = field(default_factory=list)

    def add(self, obs, actions, log_probs, values, rewards, actionable, done) -> None:
        self.observations.append(obs)
        self.actions.append(np.asarray(actions, dtype=int))
        self.log_probs.append(np.asarray(log_probs, dtype=float))
        self.values.append(np.asarray(values, dtype=float))
        self.rewards.append(np.asarray(rewards, dtype=float))
        self.actionable.append(np.asarray(actionable, dtype=bool))
        self.dones.append(bool(done))

    def __len__(self) -> int:
        return len(self.observations)

    def build_samples(self, gamma: float, lam: float) -> list[UGVSample]:
        """Run GAE per agent and emit samples for actionable steps only."""
        samples: list[UGVSample] = []
        rewards = np.asarray(self.rewards)  # (T, U)
        values = np.asarray(self.values)
        dones = np.asarray(self.dones)
        for agent in range(self.num_agents):
            adv, ret = compute_gae(rewards[:, agent], values[:, agent], dones, gamma, lam)
            for t in range(len(self)):
                if not self.actionable[t][agent]:
                    continue
                samples.append(UGVSample(
                    joint_observations=self.observations[t], agent=agent,
                    action=int(self.actions[t][agent]),
                    log_prob=float(self.log_probs[t][agent]),
                    value=float(values[t, agent]),
                    advantage=float(adv[t]), ret=float(ret[t])))
        return samples


@dataclass
class UAVRollout:
    """Per-UAV flight segments.

    Each UAV's airborne transitions form contiguous segments terminated
    by docking; GAE treats each segment as its own (finished) trajectory.
    """

    num_agents: int
    _segments: list[list[dict]] = field(default_factory=list)
    _open: dict[int, list[dict]] = field(default_factory=dict)

    def add(self, agent: int, observation: UAVObservation, action: np.ndarray,
            log_prob: float, value: float, reward: float) -> None:
        self._open.setdefault(agent, []).append({
            "obs": observation, "action": np.asarray(action, dtype=float),
            "logp": float(log_prob), "value": float(value), "reward": float(reward),
        })

    def close_flight(self, agent: int) -> None:
        """Seal the agent's current flight segment (on docking)."""
        seg = self._open.pop(agent, None)
        if seg:
            self._segments.append(seg)

    def close_all(self) -> None:
        for agent in list(self._open):
            self.close_flight(agent)

    @property
    def num_transitions(self) -> int:
        return sum(len(s) for s in self._segments) + sum(len(s) for s in self._open.values())

    def build_samples(self, gamma: float, lam: float) -> list[UAVSample]:
        self.close_all()
        samples: list[UAVSample] = []
        for segment in self._segments:
            rewards = np.array([step["reward"] for step in segment])
            values = np.array([step["value"] for step in segment])
            dones = np.zeros(len(segment), dtype=bool)
            dones[-1] = True  # docking ends the decision sequence
            adv, ret = compute_gae(rewards, values, dones, gamma, lam)
            for i, step in enumerate(segment):
                samples.append(UAVSample(
                    observation=step["obs"], action=step["action"],
                    log_prob=step["logp"], value=step["value"],
                    advantage=float(adv[i]), ret=float(ret[i])))
        return samples
