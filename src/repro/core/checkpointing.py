"""Checkpoint management for long training runs.

``CheckpointManager`` is used as (or from) a ``train(callback=...)``:
it saves the agent every ``every`` iterations, keeps only the most recent
``keep`` periodic checkpoints, and always preserves the best-metric one.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Periodic + best-model checkpointing for any agent with ``save``.

    Usage::

        manager = CheckpointManager(run_dir, agent, every=10)
        agent.train(iterations=200, callback=manager)
        best = manager.best_directory  # load with agent.load(best)
    """

    def __init__(self, directory: str | Path, agent, every: int = 10,
                 keep: int = 3, metric: str = "efficiency"):
        if every < 1 or keep < 1:
            raise ValueError("every and keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.agent = agent
        self.every = every
        self.keep = keep
        self.metric = metric
        self.best_value = -float("inf")
        self._periodic: list[Path] = []
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def best_directory(self) -> Path:
        return self.directory / "best"

    def __call__(self, record) -> None:
        """Train-loop callback: accepts TrainRecord or a plain dict."""
        metrics = record.metrics if hasattr(record, "metrics") else record.get("metrics", {})
        iteration = getattr(record, "iteration", None)
        if iteration is None and isinstance(record, dict):
            iteration = record.get("iteration", self._count)
        value = float(metrics.get(self.metric, -float("inf")))
        self._count += 1

        if value > self.best_value:
            self.best_value = value
            self.agent.save(self.best_directory)
            self._write_meta(self.best_directory, iteration, value)

        if self._count % self.every == 0:
            path = self.directory / f"iter_{iteration:06d}"
            self.agent.save(path)
            self._write_meta(path, iteration, value)
            self._periodic.append(path)
            while len(self._periodic) > self.keep:
                stale = self._periodic.pop(0)
                shutil.rmtree(stale, ignore_errors=True)

    def _write_meta(self, path: Path, iteration, value: float) -> None:
        path.mkdir(parents=True, exist_ok=True)
        (path / "checkpoint.json").write_text(json.dumps({
            "iteration": iteration,
            "metric": self.metric,
            "value": value,
        }))

    # ------------------------------------------------------------------
    def load_best(self) -> dict:
        """Load the best checkpoint back into the agent; returns its meta."""
        if not self.best_directory.exists():
            raise FileNotFoundError("no best checkpoint recorded yet")
        self.agent.load(self.best_directory)
        return json.loads((self.best_directory / "checkpoint.json").read_text())

    def available(self) -> list[Path]:
        """Periodic checkpoints currently on disk (oldest first)."""
        return list(self._periodic)
