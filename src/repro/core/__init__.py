"""``repro.core`` — GARL: MC-GCN, E-Comm, IPPO and the agent facade."""

from .checkpointing import CheckpointManager
from .buffer import UAVRollout, UAVSample, UGVRollout, UGVSample
from .config import GARLConfig, PPOConfig
from .ecomm import EComm
from .gae import compute_gae
from .garl import GARLAgent
from .ippo import IPPOTrainer, TrainRecord, run_episode
from .mc_gcn import MCGCN, multi_center_structural_feature
from .policies import UAVPolicy, UGVPolicy, UGVPolicyOutput, bias_release_head
from .schedules import ConstantSchedule, CosineSchedule, ExponentialSchedule, LinearSchedule

__all__ = [
    "GARLConfig",
    "PPOConfig",
    "MCGCN",
    "multi_center_structural_feature",
    "EComm",
    "UGVPolicy",
    "UAVPolicy",
    "UGVPolicyOutput",
    "compute_gae",
    "UGVRollout",
    "UAVRollout",
    "UGVSample",
    "UAVSample",
    "IPPOTrainer",
    "TrainRecord",
    "run_episode",
    "GARLAgent",
    "CheckpointManager",
    "bias_release_head",
    "ConstantSchedule",
    "LinearSchedule",
    "CosineSchedule",
    "ExponentialSchedule",
]
