"""``repro.core`` — GARL: MC-GCN, E-Comm, IPPO and the agent facade."""

from .checkpointing import CheckpointManager
from .buffer import (
    UAVFlatBatch,
    UAVRollout,
    UAVSample,
    UGVFlatBatch,
    UGVRollout,
    UGVSample,
    VecUAVRollout,
    VecUGVRollout,
)
from .config import GARLConfig, PPOConfig
from .ecomm import EComm
from .gae import compute_gae, compute_gae_batch
from .garl import GARLAgent
from .ippo import IPPOTrainer, TrainRecord, run_episode, run_vec_episodes
from .mc_gcn import MCGCN, multi_center_structural_feature
from .policies import (
    UAVPolicy,
    UGVPolicy,
    UGVPolicyOutput,
    bias_release_head,
    forward_policy_batched,
)
from .schedules import ConstantSchedule, CosineSchedule, ExponentialSchedule, LinearSchedule

__all__ = [
    "GARLConfig",
    "PPOConfig",
    "MCGCN",
    "multi_center_structural_feature",
    "EComm",
    "UGVPolicy",
    "UAVPolicy",
    "UGVPolicyOutput",
    "compute_gae",
    "compute_gae_batch",
    "UGVRollout",
    "UAVRollout",
    "UGVSample",
    "UAVSample",
    "UGVFlatBatch",
    "UAVFlatBatch",
    "VecUGVRollout",
    "VecUAVRollout",
    "forward_policy_batched",
    "IPPOTrainer",
    "TrainRecord",
    "run_episode",
    "run_vec_episodes",
    "GARLAgent",
    "CheckpointManager",
    "bias_release_head",
    "ConstantSchedule",
    "LinearSchedule",
    "CosineSchedule",
    "ExponentialSchedule",
]
