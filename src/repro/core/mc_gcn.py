"""MC-GCN: multi-center attention graph convolution (Section IV-B).

Each UGV is a *positive* centre of the stop graph and every other UGV a
*negative* centre.  Two feature families combine:

* structure-related (Eqns. 18-20): thresholded shortest-path reciprocals,
  with the mean of the other UGVs' correlations subtracted;
* node-related (Eqn. 21): bilinear attention of each stop against the
  stop currently occupied by each UGV, again centre-subtracted.

Their softmax-normalised product (Eqn. 21c) re-weights each GCN layer's
propagation (Eqn. 22); a linear readout pools the top layer (Eqn. 23).
"""

from __future__ import annotations

import numpy as np

from ..maps.stop_graph import StopGraph
from ..nn import GCNLayer, Linear, Module, Parameter, Tensor, annotate, normalized_laplacian
from ..nn.init import xavier_uniform
from .config import GARLConfig

__all__ = ["MCGCN", "multi_center_structural_feature"]


def multi_center_structural_feature(correlation: np.ndarray, own_stop: int,
                                    other_stops: np.ndarray) -> np.ndarray:
    """Eqn. (18): own structural correlation minus the mean of the others'.

    Parameters
    ----------
    correlation:
        ``(B, B)`` matrix of ``s(b, b')`` values (Eqn. 20).
    own_stop:
        The UGV's current stop ``b_t^u``.
    other_stops:
        Current stops of the *other* UGVs (may be empty).
    """
    own = correlation[own_stop]
    others = np.asarray(other_stops, dtype=int)
    if others.size == 0:
        return own.copy()
    return own - correlation[others].mean(axis=0)


class MCGCN(Module):
    """Multi-center attention-based GCN over the UGV stop graph.

    ``forward`` maps one UGV's observation to (node features ``H`` of the
    top layer, pooled UGV-specific feature ``h̃``) — the node features are
    reused by the policy head for per-stop action scores.

    With ``config.use_mc_gcn`` False the module degrades to a plain GCN
    (no attention, no centre subtraction), which is the "w/o MC" ablation
    of Table III.
    """

    def __init__(self, stops: StopGraph, config: GARLConfig,
                 in_features: int = 3, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.num_stops = stops.num_stops
        self.laplacian = normalized_laplacian(stops.adjacency_matrix())
        self.correlation = stops.structural_correlation(config.structural_q)

        dim = config.hidden_dim
        dims = [in_features] + [dim] * config.mc_gcn_layers
        self.gcn_layers = [GCNLayer(a, b, rng=rng, activation="tanh")
                           for a, b in zip(dims[:-1], dims[1:])]
        # W_1 of Eqn. (21a), one per layer (bilinear attention).  The
        # "w/o MC" ablation never calls _attention, so creating these
        # would leave optimiser-registered parameters with no gradient
        # path (caught by graphcheck GC002).
        self.attn_weights = ([Parameter(xavier_uniform((a, a), rng)) for a in dims[:-1]]
                             if config.use_mc_gcn else [])
        # phi_H of Eqn. (23): linear readout of the pooled top layer.
        self.readout = Linear(2 * dim, dim, rng=rng)

    # ------------------------------------------------------------------
    def _attention(self, h: Tensor, layer_idx: int, own_stop: int,
                   other_stops: np.ndarray, structural: np.ndarray) -> Tensor:
        """Eqn. (21): multi-center node attention weights C (shape (B,))."""
        w1 = self.attn_weights[layer_idx]
        hw = h @ w1  # (B, F)
        own_vec = h[int(own_stop)]  # (F,)
        f_own = hw @ own_vec  # (B,)
        if other_stops.size:
            f_others = [hw @ h[int(b)] for b in other_stops]
            mean_others = Tensor.stack(f_others, axis=0).mean(axis=0)
            node_feature = f_own - mean_others
        else:
            node_feature = f_own
        combined = Tensor(structural) * node_feature
        return annotate(combined.softmax(axis=-1), "MCGCN.attention")

    def forward(self, stop_features: np.ndarray, own_stop: int,
                other_stops: np.ndarray) -> tuple[Tensor, Tensor]:
        """Run the multi-center GCN for one UGV.

        Parameters
        ----------
        stop_features:
            ``X̂_t^{B,u}`` — the masked (B, 3) stop tensor from the
            observation (Eqn. 9).
        own_stop:
            ``b_t^u``, the UGV's current stop.
        other_stops:
            Stops of all other UGVs (negative centres).

        Returns
        -------
        (H, h̃):
            Top-layer node features ``(B, hidden)`` and the pooled
            UGV-specific feature ``(hidden,)``.
        """
        other_stops = np.asarray(other_stops, dtype=int)
        h = Tensor(np.asarray(stop_features, dtype=float))
        use_mc = self.config.use_mc_gcn
        structural = (multi_center_structural_feature(self.correlation, own_stop, other_stops)
                      if use_mc else None)

        for idx, layer in enumerate(self.gcn_layers):
            if use_mc:
                attention = self._attention(h, idx, own_stop, other_stops, structural)
                propagated = layer(h, self.laplacian)
                # Eqn. (22): per-node attention rescales the propagation.
                h = attention.reshape(-1, 1) * propagated
            else:
                h = layer(h, self.laplacian)

        pooled_mean = h.mean(axis=0)
        pooled_own = h[int(own_stop)]
        readout = self.readout(Tensor.concat([pooled_mean, pooled_own], axis=0))
        return h, readout.tanh()

    # ------------------------------------------------------------------
    def _attention_batch(self, h: Tensor, layer_idx: int, rows: np.ndarray,
                         own_stops: np.ndarray, other_stops: np.ndarray,
                         structural: np.ndarray) -> Tensor:
        """Eqn. (21) for a stacked batch of centres; h is (N, B, F).

        Mirrors :meth:`_attention` op-for-op: per-centre bilinear scores
        against the own stop, minus the mean against the other centres.
        """
        w1 = self.attn_weights[layer_idx]
        hw = h @ w1  # (N, B, F)
        own_vec = h[rows, own_stops]  # (N, F)
        f_own = (hw @ own_vec.expand_dims(-1)).squeeze(-1)  # (N, B)
        if other_stops.shape[1]:
            other_vecs = h[rows[:, None], other_stops]  # (N, M, F)
            f_others = hw @ other_vecs.swapaxes(-1, -2)  # (N, B, M)
            node_feature = f_own - f_others.mean(axis=-1)
        else:
            node_feature = f_own
        combined = Tensor(structural) * node_feature
        return annotate(combined.softmax(axis=-1), "MCGCN.attention")

    def forward_batch(self, stop_features: np.ndarray, own_stops: np.ndarray,
                      other_stops: np.ndarray) -> tuple[Tensor, Tensor]:
        """Run the multi-center GCN for N stacked (replica, agent) centres.

        Parameters
        ----------
        stop_features:
            ``(N, B, 3)`` masked stop tensors, one per centre.
        own_stops:
            ``(N,)`` current stop of each centre.
        other_stops:
            ``(N, M)`` stops of the other UGVs per centre (``M = U - 1``;
            a second axis of width 0 means no negative centres).

        Returns ``(H, h̃)`` with shapes ``(N, B, hidden)`` / ``(N, hidden)``.
        """
        own_stops = np.asarray(own_stops, dtype=int)
        other_stops = np.asarray(other_stops, dtype=int)
        if other_stops.ndim != 2:
            raise ValueError(f"other_stops must be (N, M), got {other_stops.shape}")
        n = own_stops.shape[0]
        rows = np.arange(n)
        h = Tensor(np.asarray(stop_features, dtype=float))
        use_mc = self.config.use_mc_gcn
        if use_mc:
            structural = self.correlation[own_stops]  # (N, B)
            if other_stops.shape[1]:
                structural = structural - self.correlation[other_stops].mean(axis=1)
        else:
            structural = None

        for idx, layer in enumerate(self.gcn_layers):
            if use_mc:
                attention = self._attention_batch(h, idx, rows, own_stops,
                                                 other_stops, structural)
                propagated = layer(h, self.laplacian)
                h = attention.expand_dims(-1) * propagated
            else:
                h = layer(h, self.laplacian)

        pooled_mean = h.mean(axis=1)  # (N, hidden)
        pooled_own = h[rows, own_stops]  # (N, hidden)
        readout = self.readout(Tensor.concat([pooled_mean, pooled_own], axis=-1))
        return h, readout.tanh()
