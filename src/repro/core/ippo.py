"""IPPO training loop (Algorithm 1 + Eqns. 2, 15, 16).

The trainer is policy-agnostic: any UGV policy exposing
``forward(list[UGVObservation]) -> output`` with ``.distribution`` /
``.values`` and any UAV policy exposing
``forward(list[UAVObservation]) -> (DiagGaussian, values)`` plugs in —
GARL and every baseline share this loop, so performance comparisons
isolate the architectural differences the paper studies.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..env.airground import AirGroundEnv
from ..env.metrics import MetricSnapshot
from ..env.vector import VecAirGroundEnv
from ..env.workers import WorkerVecEnv
from ..nn import (
    Adam,
    Categorical,
    CompiledStep,
    StepResult,
    Tensor,
    annotate,
    clip_grad_norm,
    detect_anomaly,
    no_grad,
    rng_from_state,
    rng_state,
)
from ..obs.scope import (
    counter_add,
    gauge_set,
    histogram_observe,
    scope as obs_scope,
)
from .buffer import (
    UAVFlatBatch,
    UAVRollout,
    UAVSample,
    UGVFlatBatch,
    UGVRollout,
    UGVSample,
    VecUAVRollout,
    VecUGVRollout,
)
from .config import PPOConfig
from .policies import forward_policy_batched

__all__ = ["IPPOTrainer", "TrainRecord", "run_episode", "run_vec_episodes"]


@dataclass
class TrainRecord:
    """Per-iteration training telemetry."""

    iteration: int
    metrics: dict[str, float]
    ugv_reward: float
    uav_reward: float
    losses: dict[str, float] = field(default_factory=dict)


def run_episode(env: AirGroundEnv, ugv_policy, uav_policy,
                rng: np.random.Generator, greedy: bool = False,
                ugv_rollout: UGVRollout | None = None,
                uav_rollout: UAVRollout | None = None,
                trace: list | None = None) -> MetricSnapshot:
    """Roll one full episode; optionally record training data or a trace.

    ``trace`` (if given) accumulates per-step position snapshots used by
    the Fig. 7 trajectory experiment.
    """
    res = env.reset()
    cfg = env.config
    # Stateful policies (IC3Net's recurrent core) reset per episode.
    for policy in (ugv_policy, uav_policy):
        begin = getattr(policy, "begin_episode", None)
        if begin is not None:
            begin()
    while True:
        # O(U) bool gather (U <= 8); wait flags flip at several env sites,
        # so a synced cache buys nothing over the rebuild.
        actionable = np.array([not g.is_waiting for g in env.ugvs])  # reprolint: disable=PF001
        with obs_scope("forward/ugv"), no_grad():
            out = ugv_policy(res.ugv_observations)
            dist = out.distribution
            actions = dist.mode() if greedy else dist.sample(rng)
            log_probs = dist.log_prob(actions).numpy()
            values = out.values.numpy()

        airborne = [v for v, o in enumerate(res.uav_observations) if o is not None]
        # Fresh zeroed O(V) vectors each timeslot: docked rows must read
        # 0.0, so buffer reuse would still pay the zeroing pass.
        uav_actions: list[np.ndarray | None] = [None] * cfg.num_uavs
        uav_logp = np.zeros(cfg.num_uavs)  # reprolint: disable=PF002
        uav_values = np.zeros(cfg.num_uavs)  # reprolint: disable=PF002
        uav_obs_kept = {}
        if airborne:
            batch = [res.uav_observations[v] for v in airborne]
            with obs_scope("forward/uav"), no_grad():
                gdist, gvalues = uav_policy(batch)
                sampled = gdist.mode() if greedy else gdist.sample(rng)
                logps = gdist.log_prob(sampled).numpy()
            for i, v in enumerate(airborne):
                uav_actions[v] = sampled[i] * cfg.uav_max_step
                uav_logp[v] = logps[i]
                uav_values[v] = gvalues.numpy()[i]
                uav_obs_kept[v] = (batch[i], sampled[i])

        if trace is not None:
            # Trace recording only runs on the visualisation path (trace
            # is None during training).
            trace.append({
                "t": env.t,
                "ugv_positions": np.array([g.position for g in env.ugvs]),  # reprolint: disable=PF001
                "uav_positions": np.array([u.position for u in env.uavs]),  # reprolint: disable=PF001
                "uav_airborne": np.array([u.airborne for u in env.uavs]),  # reprolint: disable=PF001
            })

        prev_obs = res.ugv_observations
        with obs_scope("env/step"):
            res = env.step(actions, uav_actions)
        counter_add("env/steps")
        if res.done:
            counter_add("env/episodes")

        if ugv_rollout is not None:
            ugv_rollout.add(prev_obs, actions, log_probs, values,
                            res.ugv_rewards, actionable, res.done)
        if uav_rollout is not None:
            for v, (obs, raw_action) in uav_obs_kept.items():
                uav_rollout.add(v, obs, raw_action, uav_logp[v], uav_values[v],
                                float(res.uav_rewards[v]))
                if res.uav_observations[v] is None:  # docked this step
                    uav_rollout.close_flight(v)
        if res.done:
            break
    if uav_rollout is not None:
        uav_rollout.close_all()
    return env.metrics()


def run_vec_episodes(venv: VecAirGroundEnv, ugv_policy, uav_policy,
                     rng: np.random.Generator, episodes: int = 1,
                     ugv_rollout: VecUGVRollout | None = None,
                     uav_rollout: VecUAVRollout | None = None,
                     greedy: bool = False) -> MetricSnapshot:
    """Roll ``episodes`` full episodes on every replica simultaneously.

    Episodes are fixed-horizon, so all replicas share boundaries and the
    collect window is exactly ``episodes * episode_len`` steps; the final
    step suppresses auto-reset so each replica performs precisely
    ``episodes`` resets — at K=1 this draws the same rng stream as
    ``episodes`` sequential :func:`run_episode` calls, sample for sample.

    Returns the mean final-episode metrics across all replica episodes.
    """
    cfg = venv.config
    num_envs = venv.num_envs
    total = episodes * cfg.episode_len
    final_snaps: list[MetricSnapshot] = []
    res = venv.reset()
    for step in range(total):
        last = step == total - 1
        actionable = res.ugv_actionable
        prev_ugv_obs = res.ugv_obs
        prev_uav_obs = res.uav_obs

        with obs_scope("forward/ugv"), no_grad():
            out = forward_policy_batched(ugv_policy, res.ugv_obs)
            dist = out.distribution
            actions = dist.mode() if greedy else dist.sample(rng)  # (K, U)
            log_probs = dist.log_prob(actions).numpy()
            values = out.values.numpy()

        # One CNN forward for every airborne UAV across all replicas.
        # Docked rows must read 0.0, so these stay freshly zeroed.
        raw = np.zeros((num_envs, cfg.num_uavs, 2))  # reprolint: disable=PF002
        uav_logp = np.zeros((num_envs, cfg.num_uavs))  # reprolint: disable=PF002
        uav_values = np.zeros((num_envs, cfg.num_uavs))  # reprolint: disable=PF002
        ks, vs = np.nonzero(prev_uav_obs.airborne)
        if len(ks):
            with obs_scope("forward/uav"), no_grad():
                gdist, gvalues = uav_policy.forward_arrays(
                    prev_uav_obs.grid[ks, vs], prev_uav_obs.aux[ks, vs])
                sampled = gdist.mode() if greedy else gdist.sample(rng)
                logps = gdist.log_prob(sampled).numpy()
            raw[ks, vs] = sampled
            uav_logp[ks, vs] = logps
            uav_values[ks, vs] = gvalues.numpy()

        res = venv.step(actions, raw * cfg.uav_max_step,
                        reset_on_done=not last)
        for k in np.nonzero(res.dones)[0]:
            final_snaps.append(res.infos[k]["final_metrics"])

        if ugv_rollout is not None:
            ugv_rollout.add(prev_ugv_obs, actions, log_probs, values,
                            res.ugv_rewards, actionable, res.dones)
        if uav_rollout is not None:
            uav_rollout.add(prev_uav_obs, raw, uav_logp, uav_values,
                            res.uav_rewards, res.uav_obs.airborne, res.dones)
    return MetricSnapshot.mean(final_snaps)


class IPPOTrainer:
    """Collect-then-update IPPO driver shared by GARL and all baselines."""

    def __init__(self, env: AirGroundEnv, ugv_policy, uav_policy,
                 ppo: PPOConfig | None = None, seed: int = 0,
                 lr_schedule=None, entropy_schedule=None,
                 detect_anomaly: bool = False):
        self.env = env
        # Opt-in numerics sanitizer: updates run under repro.nn.detect_anomaly
        # so a NaN/Inf loss or gradient raises, naming the originating op.
        self.detect_anomaly = bool(detect_anomaly)
        self.ugv_policy = ugv_policy
        self.uav_policy = uav_policy
        self.ppo = ppo or PPOConfig()
        self.rng = np.random.default_rng(seed)
        self.ugv_optimizer = Adam(ugv_policy.parameters(), lr=self.ppo.lr)
        self.uav_optimizer = Adam(uav_policy.parameters(), lr=self.ppo.lr)
        self.history: list[TrainRecord] = []
        # Optional annealing: schedules map training progress [0, 1] to a
        # learning rate / entropy coefficient (see repro.core.schedules).
        self.lr_schedule = lr_schedule
        self.entropy_schedule = entropy_schedule
        self._entropy_coef = self.ppo.entropy_coef
        # UAV surrogate-loss step, optionally replayed through the
        # compiled plan executor (ppo.compile); eager when disabled.
        self._uav_step = CompiledStep(self._uav_loss_arrays, name="uav_loss",
                                      enabled=self.ppo.compile)
        self._venv: VecAirGroundEnv | None = None
        # Global iteration counter: persists across train() calls (and
        # through checkpoint/resume), so records and schedule progress
        # are numbered identically whether or not a run was interrupted.
        self._iteration = 0

    # ------------------------------------------------------------------
    def collect(self, episodes: int = 1) -> tuple[list[UGVSample], list[UAVSample], MetricSnapshot, float, float]:
        """Sample trajectories; returns flattened PPO samples + telemetry."""
        cfg = self.env.config
        ugv_samples: list[UGVSample] = []
        uav_samples: list[UAVSample] = []
        last_metrics: MetricSnapshot | None = None
        total_ugv_reward = 0.0
        total_uav_reward = 0.0
        with obs_scope("rollout"):
            for episode in range(episodes):
                ugv_roll = UGVRollout(cfg.num_ugvs)
                uav_roll = UAVRollout(cfg.num_uavs)
                last_metrics = run_episode(self.env, self.ugv_policy,
                                           self.uav_policy, self.rng,
                                           greedy=False, ugv_rollout=ugv_roll,
                                           uav_rollout=uav_roll)
                total_ugv_reward += float(np.sum(ugv_roll.rewards))
                with obs_scope("gae"):
                    uav_samples_ep = uav_roll.build_samples(self.ppo.gamma,
                                                            self.ppo.gae_lambda)
                    ugv_samples.extend(ugv_roll.build_samples(
                        self.ppo.gamma, self.ppo.gae_lambda, episode=episode))
                total_uav_reward += float(sum(s.ret for s in uav_samples_ep if s.ret))
                uav_samples.extend(uav_samples_ep)
        if last_metrics is None:
            raise RuntimeError("collect() requires at least one episode")
        counter_add("rollout/ugv_samples", len(ugv_samples))
        counter_add("rollout/uav_samples", len(uav_samples))
        return ugv_samples, uav_samples, last_metrics, total_ugv_reward, total_uav_reward

    # ------------------------------------------------------------------
    def supports_vectorized(self) -> bool:
        """Whether both policies can run the vectorized collect path.

        Stateful UGV policies (IC3Net's recurrent core) advance episode
        state between steps and cannot be replica-interleaved; UAV
        policies must expose the array forward.
        """
        return (getattr(self.ugv_policy, "supports_vectorized", True)
                and getattr(self.ugv_policy, "begin_episode", None) is None
                and hasattr(self.uav_policy, "forward_arrays"))

    def _get_venv(self, num_envs: int, num_workers: int = 1) -> VecAirGroundEnv:
        """Get-or-rebuild the vec env for a (replicas, workers) choice.

        Rebuilding at the same replica count (resuming with a different
        ``--workers``, say) transfers the per-replica rng streams across,
        so the worker-count axis never moves a replica's stream position
        — ``workers=N`` stays bitwise-equivalent to ``workers=1``.
        """
        current = getattr(self._venv, "num_workers", 1)
        if (self._venv is None or self._venv.num_envs != num_envs
                or current != num_workers):
            states = (self._venv.rng_states()
                      if self._venv is not None
                      and self._venv.num_envs == num_envs else None)
            if isinstance(self._venv, WorkerVecEnv):
                self._venv.close()
            if num_workers > 1:
                self._venv = WorkerVecEnv(self.env, num_envs, num_workers)
            else:
                self._venv = VecAirGroundEnv.from_env(self.env, num_envs)
            if states is not None:
                self._venv.set_rng_states(states)
        return self._venv

    def collect_vec(self, episodes: int, num_envs: int, num_workers: int = 1) -> tuple[
            VecUGVRollout, VecUAVRollout, MetricSnapshot, float, float]:
        """Vectorized counterpart of :meth:`collect` over K replicas.

        Reward telemetry is the total across *all* replicas (K times the
        sequential per-iteration volume).  ``num_workers > 1`` shards the
        replicas over that many rollout worker processes
        (:class:`~repro.env.workers.WorkerVecEnv`); after the window the
        next reset is prefetched so workers overlap the PPO update.
        """
        cfg = self.env.config
        venv = self._get_venv(num_envs, num_workers)
        horizon = episodes * cfg.episode_len
        ugv_roll = VecUGVRollout(num_envs, horizon, cfg.num_ugvs, self.env.num_stops)
        uav_roll = VecUAVRollout(num_envs, horizon, cfg.num_uavs, cfg.uav_obs_size)
        with obs_scope("rollout"):
            metrics = run_vec_episodes(venv, self.ugv_policy, self.uav_policy,
                                       self.rng, episodes=episodes,
                                       ugv_rollout=ugv_roll, uav_rollout=uav_roll)
            prefetch = getattr(venv, "prefetch_reset", None)
            if prefetch is not None:
                prefetch()
            total_ugv_reward = float(ugv_roll.rewards.sum())
            with obs_scope("gae"):
                uav_flat = uav_roll.flat_samples(self.ppo.gamma, self.ppo.gae_lambda)
            total_uav_reward = float(uav_flat.returns.sum())
        counter_add("rollout/ugv_samples", num_envs * horizon * cfg.num_ugvs)
        counter_add("rollout/uav_samples", len(uav_flat))
        return ugv_roll, uav_roll, metrics, total_ugv_reward, total_uav_reward

    # ------------------------------------------------------------------
    def _sanitize(self):
        """Context wrapping gradient updates in anomaly detection if enabled."""
        return detect_anomaly() if self.detect_anomaly else nullcontext()

    def update_ugv(self, samples: list[UGVSample]) -> dict[str, float]:
        """Clipped PPO update for the (shared) UGV policy."""
        if not samples:
            return {"ugv_policy_loss": 0.0, "ugv_value_loss": 0.0}
        ppo = self.ppo
        advantages = np.array([s.advantage for s in samples])
        std = advantages.std()
        mean = advantages.mean()
        norm_adv = (advantages - mean) / (std + 1e-8)

        policy_losses, value_losses = [], []
        order = np.arange(len(samples))
        with obs_scope("update/ugv"):
            for _ in range(ppo.epochs):
                self.rng.shuffle(order)
                for start in range(0, len(order), ppo.minibatch_size):
                    batch_idx = order[start:start + ppo.minibatch_size]
                    with self._sanitize():
                        with obs_scope("forward"):
                            loss, pl, vl = self._ugv_minibatch_loss(
                                samples, batch_idx, norm_adv)
                        self.ugv_optimizer.zero_grad()
                        with obs_scope("backward"):
                            loss.backward()
                        with obs_scope("optim"):
                            clip_grad_norm(self.ugv_optimizer.params,
                                           ppo.max_grad_norm)
                            self.ugv_optimizer.step()
                    counter_add("optim/ugv_steps")
                    histogram_observe("loss/ugv_policy", pl)
                    policy_losses.append(pl)
                    value_losses.append(vl)
        return {"ugv_policy_loss": float(np.mean(policy_losses)),
                "ugv_value_loss": float(np.mean(value_losses))}

    def _ugv_minibatch_loss(self, samples: list[UGVSample], batch_idx: np.ndarray,
                            norm_adv: np.ndarray) -> tuple[Tensor, float, float]:
        """Forward each distinct timestep once; gather per-sample terms."""
        ppo = self.ppo
        # Group by explicit (episode, t) identity — every agent sample of
        # one timestep shares a single joint forward.  (Grouping by the
        # observation list's id() would silently degrade to per-sample
        # forwards if a caller ever rebuilt the lists.)
        groups: dict[tuple[int, int], list[int]] = {}
        for i in batch_idx:
            groups.setdefault((samples[i].episode, samples[i].t), []).append(int(i))

        log_ratios, entropies, values, old_values = [], [], [], []
        adv_list, ret_list, old_logp = [], [], []
        aux_losses = []
        aux_fn = getattr(self.ugv_policy, "auxiliary_loss", None)
        for idxs in groups.values():
            joint = samples[idxs[0]].joint_observations
            out = self.ugv_policy(joint)
            if aux_fn is not None:
                aux_losses.append(aux_fn(joint))
            actions = np.array([samples[i].action for i in idxs])
            agents = np.array([samples[i].agent for i in idxs])
            # Select the rows for the agents in this group, then their actions.
            selected_logits = out.logits[agents]
            sub_dist = Categorical(selected_logits)
            logp = sub_dist.log_prob(actions)
            ent = sub_dist.entropy()
            val = out.values[agents]
            log_ratios.append(logp)
            entropies.append(ent)
            values.append(val)
            old_logp.extend(samples[i].log_prob for i in idxs)
            old_values.extend(samples[i].value for i in idxs)
            adv_list.extend(norm_adv[i] for i in idxs)
            ret_list.extend(samples[i].ret for i in idxs)

        logp = Tensor.concat(log_ratios, axis=0)
        entropy = Tensor.concat(entropies, axis=0)
        value = Tensor.concat(values, axis=0)
        old_logp_arr = np.array(old_logp)
        old_value_arr = np.array(old_values)
        adv = np.array(adv_list)
        ret = np.array(ret_list)

        ratio = (logp - Tensor(old_logp_arr)).exp()
        surr1 = ratio * Tensor(adv)
        surr2 = ratio.clip(1.0 - ppo.clip_eps, 1.0 + ppo.clip_eps) * Tensor(adv)
        policy_loss = -Tensor.minimum(surr1, surr2).mean()

        # Eqn. (16): pessimistic (max) of clipped and unclipped value errors.
        v_clipped = Tensor(old_value_arr) + (value - Tensor(old_value_arr)).clip(
            -ppo.value_clip, ppo.value_clip)
        loss_unclipped = (value - Tensor(ret)) ** 2
        loss_clipped = (v_clipped - Tensor(ret)) ** 2
        value_loss = Tensor.maximum(loss_unclipped, loss_clipped).mean()

        total = (policy_loss + ppo.value_coef * value_loss
                 - self._entropy_coef * entropy.mean())
        if aux_losses:
            # Auxiliary objectives (e.g. AE-Comm's reconstruction loss).
            total = total + Tensor.stack(aux_losses, axis=0).mean()
        annotate(total, "ippo.ugv_loss")
        return total, float(policy_loss.item()), float(value_loss.item())

    # ------------------------------------------------------------------
    def update_ugv_vec(self, rollout: VecUGVRollout) -> dict[str, float]:
        """Clipped PPO update from an array-backed vectorized rollout."""
        ppo = self.ppo
        flat = rollout.flat_samples(ppo.gamma, ppo.gae_lambda)
        if len(flat) == 0:
            return {"ugv_policy_loss": 0.0, "ugv_value_loss": 0.0}
        advantages = flat.advantages
        norm_adv = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        policy_losses, value_losses = [], []
        order = np.arange(len(flat))
        with obs_scope("update/ugv"):
            for _ in range(ppo.epochs):
                self.rng.shuffle(order)
                for start in range(0, len(order), ppo.minibatch_size):
                    batch_idx = order[start:start + ppo.minibatch_size]
                    with self._sanitize():
                        with obs_scope("forward"):
                            loss, pl, vl = self._ugv_minibatch_loss_vec(
                                flat, batch_idx, norm_adv)
                        self.ugv_optimizer.zero_grad()
                        with obs_scope("backward"):
                            loss.backward()
                        with obs_scope("optim"):
                            clip_grad_norm(self.ugv_optimizer.params,
                                           ppo.max_grad_norm)
                            self.ugv_optimizer.step()
                    counter_add("optim/ugv_steps")
                    histogram_observe("loss/ugv_policy", pl)
                    policy_losses.append(pl)
                    value_losses.append(vl)
        return {"ugv_policy_loss": float(np.mean(policy_losses)),
                "ugv_value_loss": float(np.mean(value_losses))}

    def _ugv_minibatch_loss_vec(self, flat: UGVFlatBatch, batch_idx: np.ndarray,
                                norm_adv: np.ndarray) -> tuple[Tensor, float, float]:
        """One batched forward over the minibatch's unique (env, t) pairs.

        The whole minibatch's distinct timesteps stack into a single
        policy forward; per-sample (agent) rows are then gathered out of
        the batched logits/values — same math as the sequential
        per-group loop, minus the Python-level iteration.
        """
        ppo = self.ppo
        env_b = flat.env[batch_idx]
        t_b = flat.t[batch_idx]
        agent_b = flat.agent[batch_idx]
        keys = env_b * flat.horizon + t_b
        uniq, inverse = np.unique(keys, return_inverse=True)
        obs = flat.obs.index((uniq // flat.horizon, uniq % flat.horizon))
        out = forward_policy_batched(self.ugv_policy, obs)

        selected_logits = out.logits[inverse, agent_b]  # (M, B+1)
        sub_dist = Categorical(selected_logits)
        logp = sub_dist.log_prob(flat.actions[batch_idx])
        entropy = sub_dist.entropy()
        value = out.values[inverse, agent_b]

        old_logp = flat.log_probs[batch_idx]
        old_value = flat.values[batch_idx]
        adv = norm_adv[batch_idx]
        ret = flat.returns[batch_idx]

        ratio = (logp - Tensor(old_logp)).exp()
        surr1 = ratio * Tensor(adv)
        surr2 = ratio.clip(1.0 - ppo.clip_eps, 1.0 + ppo.clip_eps) * Tensor(adv)
        policy_loss = -Tensor.minimum(surr1, surr2).mean()

        v_clipped = Tensor(old_value) + (value - Tensor(old_value)).clip(
            -ppo.value_clip, ppo.value_clip)
        loss_unclipped = (value - Tensor(ret)) ** 2
        loss_clipped = (v_clipped - Tensor(ret)) ** 2
        value_loss = Tensor.maximum(loss_unclipped, loss_clipped).mean()

        total = (policy_loss + ppo.value_coef * value_loss
                 - self._entropy_coef * entropy.mean())
        aux_fn = getattr(self.ugv_policy, "auxiliary_loss", None)
        if aux_fn is not None:
            aux_losses = [aux_fn(obs.observations(p)) for p in range(len(uniq))]
            total = total + Tensor.stack(aux_losses, axis=0).mean()
        annotate(total, "ippo.ugv_loss")
        return total, float(policy_loss.item()), float(value_loss.item())

    def _uav_loss_arrays(self, grids: np.ndarray, aux: np.ndarray,
                         actions: np.ndarray, old_logp: np.ndarray,
                         adv: np.ndarray, old_value: np.ndarray,
                         ret: np.ndarray, entropy_coef: np.ndarray
                         ) -> tuple[Tensor, Tensor, Tensor]:
        """UAV surrogate loss (Eqns. 2, 15, 16) as a pure array function.

        Every call-varying value enters the graph as a tensor leaf over
        an argument array — including the annealed entropy coefficient,
        passed as a 0-d array — which is the contract
        :class:`repro.nn.CompiledStep` needs to rebind inputs on replay.
        Op order mirrors the historic inline update exactly, so eager
        and compiled execution stay bit-for-bit interchangeable.
        """
        ppo = self.ppo
        dist, value = self.uav_policy.forward_arrays(grids, aux)
        logp = dist.log_prob(actions)
        ratio = (logp - Tensor(old_logp)).exp()
        adv_t = Tensor(adv)
        surr1 = ratio * adv_t
        surr2 = ratio.clip(1.0 - ppo.clip_eps, 1.0 + ppo.clip_eps) * adv_t
        policy_loss = -Tensor.minimum(surr1, surr2).mean()

        v_clipped = Tensor(old_value) + (value - Tensor(old_value)).clip(
            -ppo.value_clip, ppo.value_clip)
        value_loss = Tensor.maximum(
            (value - Tensor(ret)) ** 2,
            (v_clipped - Tensor(ret)) ** 2).mean()
        entropy = dist.entropy().mean()

        total = (policy_loss + ppo.value_coef * value_loss
                 - Tensor(entropy_coef) * entropy)
        annotate(total, "ippo.uav_loss")
        return total, policy_loss, value_loss

    def _uav_loss_list(self, batch: list[UAVSample], actions: np.ndarray,
                       old_logp: np.ndarray, adv: np.ndarray,
                       old_value: np.ndarray, ret: np.ndarray) -> StepResult:
        """Legacy list-based UAV loss for policies without an array forward.

        Same surrogate math as :meth:`_uav_loss_arrays`, but the policy
        consumes observation objects — never compiled, always eager.
        """
        ppo = self.ppo
        dist, value = self.uav_policy([s.observation for s in batch])
        logp = dist.log_prob(actions)
        ratio = (logp - Tensor(old_logp)).exp()
        adv_t = Tensor(adv)
        surr1 = ratio * adv_t
        surr2 = ratio.clip(1.0 - ppo.clip_eps, 1.0 + ppo.clip_eps) * adv_t
        policy_loss = -Tensor.minimum(surr1, surr2).mean()

        v_clipped = Tensor(old_value) + (value - Tensor(old_value)).clip(
            -ppo.value_clip, ppo.value_clip)
        value_loss = Tensor.maximum(
            (value - Tensor(ret)) ** 2,
            (v_clipped - Tensor(ret)) ** 2).mean()
        entropy = dist.entropy().mean()

        total = (policy_loss + ppo.value_coef * value_loss
                 - self._entropy_coef * entropy)
        annotate(total, "ippo.uav_loss")
        return StepResult(tensors=(total, policy_loss, value_loss))

    def _uav_apply(self, res) -> tuple[float, float]:
        """Backward + clipped Adam step for one UAV minibatch result."""
        ppo = self.ppo
        self.uav_optimizer.zero_grad()
        with obs_scope("backward"):
            res.backward()
        with obs_scope("optim"):
            clip_grad_norm(self.uav_optimizer.params, ppo.max_grad_norm)
            self.uav_optimizer.step()
        counter_add("optim/uav_steps")
        pl = res.item(1)
        histogram_observe("loss/uav_policy", pl)
        return pl, res.item(2)

    def update_uav_vec(self, rollout: VecUAVRollout) -> dict[str, float]:
        """Clipped PPO update for the UAV policy from flat array batches."""
        ppo = self.ppo
        flat = rollout.flat_samples(ppo.gamma, ppo.gae_lambda)
        if len(flat) == 0:
            return {"uav_policy_loss": 0.0, "uav_value_loss": 0.0}
        norm_adv = (flat.advantages - flat.advantages.mean()) / (flat.advantages.std() + 1e-8)

        policy_losses, value_losses = [], []
        order = np.arange(len(flat))
        with obs_scope("update/uav"):
            for _ in range(ppo.epochs):
                self.rng.shuffle(order)
                for start in range(0, len(order), ppo.minibatch_size):
                    idxs = order[start:start + ppo.minibatch_size]
                    with self._sanitize():
                        with obs_scope("forward"):
                            res = self._uav_step(
                                flat.grids[idxs], flat.aux[idxs],
                                flat.actions[idxs], flat.log_probs[idxs],
                                norm_adv[idxs], flat.values[idxs],
                                flat.returns[idxs],
                                np.asarray(self._entropy_coef,
                                           dtype=np.float64))
                        pl, vl = self._uav_apply(res)
                    policy_losses.append(pl)
                    value_losses.append(vl)
        return {"uav_policy_loss": float(np.mean(policy_losses)),
                "uav_value_loss": float(np.mean(value_losses))}

    # ------------------------------------------------------------------
    def update_uav(self, samples: list[UAVSample]) -> dict[str, float]:
        """Clipped PPO update for the (shared) UAV policy."""
        if not samples:
            return {"uav_policy_loss": 0.0, "uav_value_loss": 0.0}
        ppo = self.ppo
        advantages = np.array([s.advantage for s in samples])
        norm_adv = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        policy_losses, value_losses = [], []
        order = np.arange(len(samples))
        with obs_scope("update/uav"):
            for _ in range(ppo.epochs):
                self.rng.shuffle(order)
                for start in range(0, len(order), ppo.minibatch_size):
                    idxs = order[start:start + ppo.minibatch_size]
                    batch = [samples[i] for i in idxs]
                    with self._sanitize():
                        with obs_scope("forward"):
                            # Ragged per-sample fields gathered once per
                            # minibatch (list-based legacy update path).
                            actions = np.stack([s.action for s in batch])  # reprolint: disable=PF002
                            old_logp = np.array([s.log_prob for s in batch])  # reprolint: disable=PF002
                            ret = np.array([s.ret for s in batch])
                            old_value = np.array([s.value for s in batch])
                            # UAVPolicy.forward is exactly stack +
                            # forward_arrays, so the shared array step
                            # applies; duck-typed policies without the
                            # array forward keep the list-based loss.
                            if hasattr(self.uav_policy, "forward_arrays"):
                                obs = [s.observation for s in batch]
                                grids = np.stack([o.grid for o in obs])  # reprolint: disable=PF002
                                aux = np.stack([o.aux for o in obs])  # reprolint: disable=PF002
                                res = self._uav_step(
                                    grids, aux, actions, old_logp,
                                    norm_adv[idxs], old_value, ret,
                                    np.asarray(self._entropy_coef,
                                               dtype=np.float64))
                            else:
                                res = self._uav_loss_list(
                                    batch, actions, old_logp,
                                    norm_adv[idxs], old_value, ret)
                        pl, vl = self._uav_apply(res)
                    policy_losses.append(pl)
                    value_losses.append(vl)
        return {"uav_policy_loss": float(np.mean(policy_losses)),
                "uav_value_loss": float(np.mean(value_losses))}

    # ------------------------------------------------------------------
    def train(self, iterations: int, episodes_per_iteration: int = 1,
              callback=None, num_envs: int = 1,
              total_iterations: int | None = None,
              num_workers: int = 1) -> list[TrainRecord]:
        """Run M training iterations (Algorithm 1's outer loop).

        With ``num_envs > 1`` (and vectorization-capable policies,
        :meth:`supports_vectorized`) collection runs K env replicas in
        lock-step with batched policy forwards and array-backed rollouts;
        each iteration then gathers ``num_envs * episodes_per_iteration``
        episodes.  Stateful policies silently fall back to the sequential
        path.  ``num_workers > 1`` additionally shards those replicas
        over that many rollout processes (see ``docs/parallelism.md``);
        the sampled streams are bitwise-identical for every worker count.

        ``iterations`` counts iterations *to run now*; the trainer's
        persistent counter numbers them globally, so a checkpoint-resumed
        call continues where the interrupted run stopped.
        ``total_iterations`` (default: counter + ``iterations``) anchors
        schedule progress — a resumed run must pass the original planned
        total for lr/entropy schedules to anneal identically.
        """
        if num_workers > num_envs:
            raise ValueError(f"num_workers={num_workers} cannot exceed "
                             f"num_envs={num_envs}")
        use_vec = num_envs > 1 and self.supports_vectorized()
        total = (total_iterations if total_iterations is not None
                 else self._iteration + iterations)
        for _ in range(iterations):
            with obs_scope("iteration"):
                iteration = self._iteration
                progress = iteration / max(1, total - 1)
                if self.lr_schedule is not None:
                    lr = float(self.lr_schedule(progress))
                    self.ugv_optimizer.lr = lr
                    self.uav_optimizer.lr = lr
                    gauge_set("train/lr", lr)
                if self.entropy_schedule is not None:
                    self._entropy_coef = float(self.entropy_schedule(progress))
                    gauge_set("train/entropy_coef", self._entropy_coef)
                losses = {}
                if use_vec:
                    ugv_roll, uav_roll, metrics, ugv_r, uav_r = self.collect_vec(
                        episodes_per_iteration, num_envs, num_workers)
                    losses.update(self.update_ugv_vec(ugv_roll))
                    losses.update(self.update_uav_vec(uav_roll))
                else:
                    ugv_samples, uav_samples, metrics, ugv_r, uav_r = self.collect(
                        episodes_per_iteration)
                    losses.update(self.update_ugv(ugv_samples))
                    losses.update(self.update_uav(uav_samples))
                for policy in (self.ugv_policy, self.uav_policy):
                    post = getattr(policy, "post_update", None)
                    if post is not None:
                        post()
                record = TrainRecord(iteration, metrics.as_dict(), ugv_r,
                                     uav_r, losses)
                self.history.append(record)
                self._iteration += 1
                counter_add("train/iterations")
                if callback is not None:
                    callback(record)
        return self.history

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full resumable trainer state (everything but the parameters).

        Captured at iteration boundaries: both Adam optimisers (step
        count + moments), the sampling rng stream, the env's rng stream
        (plus each vec-env replica's, when vectorized collection has
        run), the global iteration counter and the current entropy
        coefficient.  Leaves are numpy arrays or JSON-able scalars.
        """
        state: dict = {
            "iteration": int(self._iteration),
            "entropy_coef": float(self._entropy_coef),
            "rng": rng_state(self.rng),
            "ugv_optimizer": self.ugv_optimizer.state_dict(),
            "uav_optimizer": self.uav_optimizer.state_dict(),
            "env_rng": self.env.rng_state(),
        }
        if self._venv is not None:
            # ``num_workers`` records how the interrupted run sharded its
            # replicas (informational — the flat per-replica rng_states
            # are worker-count invariant, so a resume may repartition).
            state["venv"] = {
                "num_envs": int(self._venv.num_envs),
                "num_workers": int(getattr(self._venv, "num_workers", 1)),
                "rng_states": self._venv.rng_states(),
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        When the snapshot includes vec-env replica streams, the replicas
        are re-materialised and repositioned so a resumed vectorized run
        continues every replica's stream (including unseeded auto-reset
        continuations) exactly where the interrupted run left it.
        """
        self._iteration = int(state["iteration"])
        self._entropy_coef = float(state["entropy_coef"])
        self.rng = rng_from_state(state["rng"])
        self.ugv_optimizer.load_state_dict(state["ugv_optimizer"])
        self.uav_optimizer.load_state_dict(state["uav_optimizer"])
        self.env.set_rng_state(state["env_rng"])
        venv = state.get("venv")
        if venv:
            self._venv = self._get_venv(int(venv["num_envs"]),
                                        int(venv.get("num_workers", 1)))
            self._venv.set_rng_states(venv["rng_states"])

    def close(self) -> None:
        """Release collect-side resources (multi-process rollout workers).

        No-op for the in-process paths; safe to call repeatedly.  Worker
        processes are daemons, so this is hygiene rather than a
        correctness requirement — but an explicit close avoids leaving W
        idle processes around for the rest of a long driver run.  The
        replica rng streams migrate into an in-process vec env first, so
        training can continue after a close without losing determinism.
        """
        if isinstance(self._venv, WorkerVecEnv):
            pool = self._venv
            states = None if pool._closed else pool.rng_states()
            pool.close()
            self._venv = VecAirGroundEnv.from_env(self.env, pool.num_envs)
            if states is not None:
                self._venv.set_rng_states(states)

    def evaluate(self, episodes: int = 1, greedy: bool = True) -> MetricSnapshot:
        """Average metrics over greedy evaluation episodes."""
        totals = np.zeros(4)
        with obs_scope("eval"):
            for _ in range(episodes):
                snap = run_episode(self.env, self.ugv_policy, self.uav_policy,
                                   self.rng, greedy=greedy)
                totals += np.array([snap.psi, snap.xi, snap.zeta, snap.beta])
        psi, xi, zeta, beta = totals / episodes
        return MetricSnapshot(float(psi), float(xi), float(zeta), float(beta))
