"""Model and training hyperparameters for GARL (Section IV / V-B)."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GARLConfig", "PPOConfig"]


@dataclass(frozen=True)
class PPOConfig:
    """IPPO optimisation hyperparameters (Eqns. 2, 15, 16)."""

    lr: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_eps: float = 0.2  # epsilon_1 in Eqn. (15)
    value_clip: float = 0.2  # epsilon_2 in Eqn. (16)
    value_coef: float = 0.5  # c_1 in Eqn. (2)
    entropy_coef: float = 0.01  # c_2 in Eqn. (2)
    epochs: int = 4  # J in Algorithm 1
    minibatch_size: int = 64
    max_grad_norm: float = 0.5
    # Replay the UAV surrogate-loss step through the compiled plan
    # executor (repro.nn.compile).  Bit-for-bit equal to eager; off by
    # default so the eager tape stays the reference path.
    compile: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma < 1.0:
            raise ValueError("gamma must be in [0, 1)")
        if not 0.0 <= self.gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        if self.clip_eps <= 0 or self.epochs < 1 or self.minibatch_size < 1:
            raise ValueError("invalid PPO hyperparameters")


@dataclass(frozen=True)
class GARLConfig:
    """Architecture hyperparameters for the GARL model.

    ``mc_gcn_layers`` and ``ecomm_layers`` are the L^MC / L^E of Table II
    (both peak at 3).  ``use_mc_gcn`` / ``use_ecomm`` are the Table III
    ablation switches: disabling MC-GCN falls back to a plain GCN without
    the multi-center attention; disabling E-Comm skips communication.
    """

    hidden_dim: int = 32
    mc_gcn_layers: int = 3  # L^MC
    ecomm_layers: int = 3  # L^E
    structural_q: float = 8.0  # threshold q in Eqn. (19), in hops
    ecomm_clip: float = 50.0  # g̃_max in Eqn. (29), metres
    use_mc_gcn: bool = True
    use_ecomm: bool = True
    # Extra ablation: replace Eqn. (26)'s inverse-distance softmax with a
    # uniform mean over neighbours (the CommNet-style aggregation the
    # paper argues against).
    ecomm_uniform_weights: bool = False
    uav_channels: int = 8
    uav_hidden_dim: int = 32
    ppo: PPOConfig = PPOConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mc_gcn_layers < 1 or self.ecomm_layers < 1:
            raise ValueError("layer counts must be >= 1")
        if self.hidden_dim < 1 or self.uav_hidden_dim < 1:
            raise ValueError("hidden dims must be >= 1")
        if self.structural_q <= 0:
            raise ValueError("structural_q must be positive")

    def replace(self, **kwargs) -> "GARLConfig":
        return replace(self, **kwargs)

    def ablated(self, mc: bool = True, ecomm: bool = True) -> "GARLConfig":
        """Convenience for Table III: keep/drop components."""
        return replace(self, use_mc_gcn=mc, use_ecomm=ecomm)
