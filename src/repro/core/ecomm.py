"""E-Comm: equivariant multi-agent communication (Section IV-C).

UGVs form a complete communication graph.  Each layer performs

* **Message aggregation** (invariant, Eqns. 25-27): softmax weights from
  reciprocal pairwise distances combine linear messages from neighbours;
* **Target updating** (equivariant, Eqns. 28-29): geometric features move
  along unit relative-direction vectors, norm-clipped by ``g̃_max``.

The readout (Eqn. 30) scores every stop against the final geometric
target and concatenates with the invariant feature.

Equivariance contract (property-tested): for any rotation ``R`` and
translation ``t`` applied to the input coordinates, the non-geometric
outputs ``h`` are unchanged and the geometric outputs satisfy
``g(Rx + t) = R g(x) + t``.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, annotate
from .config import GARLConfig

__all__ = ["EComm"]


class ECommLayer(Module):
    """One E-Comm layer: invariant aggregation + equivariant update.

    ``uniform_weights`` replaces the inverse-distance softmax (Eqn. 26)
    with a plain mean over neighbours — the ablation of the geometric
    weighting.
    """

    def __init__(self, dim: int, clip: float, rng: np.random.Generator,
                 uniform_weights: bool = False):
        super().__init__()
        self.clip = clip
        self.uniform_weights = uniform_weights
        self.phi_m = Linear(dim, dim, rng=rng)  # message encoder (Eqn. 27a)
        self.phi_h = Linear(2 * dim, dim, rng=rng)  # feature update (Eqn. 27c)
        self.phi_g = Linear(dim, 1, rng=rng)  # radial magnitude (Eqn. 28)

    def forward(self, h: Tensor, g: Tensor) -> tuple[Tensor, Tensor]:
        """Process all U agents at once; h is (U, D), g is (U, 2)."""
        u = h.shape[0]
        if u == 1:
            # A lone UGV has no neighbours: feature passes through the
            # update MLP with a zero message; geometry is unchanged.
            zero_msg = Tensor(np.zeros_like(h.data))
            h_new = self.phi_h(Tensor.concat([h, zero_msg], axis=-1)).tanh()
            return h_new, g

    # Pairwise relative geometry r^{uu'} (Eqn. 25); diagonal is excluded.
        r = g.expand_dims(1) - g.expand_dims(0)  # (U, U, 2), r[u, u'] = g_u - g_u'
        norms = r.norm(axis=-1, eps=1e-8)  # (U, U)
        eye = np.eye(u, dtype=bool)

        # Eqn. (26): softmax over exp(1/||r||), masked to neighbours.
        if self.uniform_weights:
            alpha = Tensor(np.where(eye, 0.0, 1.0 / (u - 1)))
        else:
            inv = 1.0 / (norms + 1e-6)
            logits = inv + Tensor(np.where(eye, -1e9, 0.0))
            alpha = annotate(logits.softmax(axis=-1), "EComm.alpha")  # (U, U)

        # Eqn. (27): invariant message aggregation.
        messages = self.phi_m(h)  # (U, D); m^{uu'} depends only on u'
        aggregated = alpha @ messages  # (U, D)
        h_new = self.phi_h(Tensor.concat([h, aggregated], axis=-1)).tanh()

        # Eqn. (28): radial joint effect; unit vectors keep direction only.
        unit = r / (norms.expand_dims(-1) + 1e-6)
        magnitudes = self.phi_g(messages).squeeze(-1)  # (U,) scalar per sender
        weighted = alpha * magnitudes.expand_dims(0)  # (U, U)
        effect = (weighted.expand_dims(-1) * unit).sum(axis=1)  # (U, 2)

        # Eqn. (29): norm-clip preserves rotation equivariance.
        effect_norm = effect.norm(axis=-1, keepdims=True, eps=1e-8)
        scale = Tensor.minimum(Tensor(np.ones_like(effect_norm.data)),
                               self.clip / effect_norm)
        g_new = g + effect * scale
        return h_new, g_new

    def forward_batch(self, h: Tensor, g: Tensor) -> tuple[Tensor, Tensor]:
        """Replica-batched layer: h is (P, U, D), g is (P, U, 2).

        Same ops as :meth:`forward` with every axis shifted right by the
        replica dimension; all matmuls broadcast over P.
        """
        u = h.shape[1]
        if u == 1:
            zero_msg = Tensor(np.zeros_like(h.data))
            h_new = self.phi_h(Tensor.concat([h, zero_msg], axis=-1)).tanh()
            return h_new, g

        r = g.expand_dims(2) - g.expand_dims(1)  # (P, U, U, 2), r[p, u, u'] = g_u - g_u'
        norms = r.norm(axis=-1, eps=1e-8)  # (P, U, U)
        eye = np.eye(u, dtype=bool)  # broadcasts over P

        if self.uniform_weights:
            alpha = Tensor(np.broadcast_to(np.where(eye, 0.0, 1.0 / (u - 1)),
                                           norms.shape).copy())
        else:
            inv = 1.0 / (norms + 1e-6)
            logits = inv + Tensor(np.where(eye, -1e9, 0.0))
            alpha = annotate(logits.softmax(axis=-1), "EComm.alpha")  # (P, U, U)

        messages = self.phi_m(h)  # (P, U, D)
        aggregated = alpha @ messages  # (P, U, D)
        h_new = self.phi_h(Tensor.concat([h, aggregated], axis=-1)).tanh()

        unit = r / (norms.expand_dims(-1) + 1e-6)
        magnitudes = self.phi_g(messages).squeeze(-1)  # (P, U)
        weighted = alpha * magnitudes.expand_dims(1)  # (P, U, U)
        effect = (weighted.expand_dims(-1) * unit).sum(axis=2)  # (P, U, 2)

        effect_norm = effect.norm(axis=-1, keepdims=True, eps=1e-8)
        scale = Tensor.minimum(Tensor(np.ones_like(effect_norm.data)),
                               self.clip / effect_norm)
        g_new = g + effect * scale
        return h_new, g_new


class EComm(Module):
    """Stacked E-Comm layers plus the stop-preference readout (Eqn. 30)."""

    def __init__(self, dim: int, config: GARLConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed + 1)
        self.config = config
        self.layers = [ECommLayer(dim, config.ecomm_clip, rng,
                                  uniform_weights=config.ecomm_uniform_weights)
                       for _ in range(config.ecomm_layers)]
        self.w3 = Linear(2, 2, bias=False, rng=rng)  # W_3 in Eqn. (30a)
        self.phi_u = Linear(dim + 1, dim, rng=rng)  # final readout (Eqn. 30b)

    def forward(self, features: Tensor, positions: np.ndarray,
                stop_positions: np.ndarray) -> tuple[Tensor, Tensor, Tensor]:
        """Communicate among all UGVs.

        Parameters
        ----------
        features:
            ``(U, D)`` stacked MC-GCN features h̃ (Eqn. 24a).
        positions:
            ``(U, 2)`` UGV coordinates, initialising g (Eqn. 24b).
        stop_positions:
            ``(B, 2)`` stop coordinates for the preference readout.

        Returns
        -------
        (h, z, g):
            Final invariant features ``(U, D)``, per-stop preference
            scores ``(U, B)`` and final geometric targets ``(U, 2)``.
        """
        h = features
        g = Tensor(np.asarray(positions, dtype=float))
        for layer in self.layers:
            h, g = layer(h, g)

        # Eqn. (30a): z^u_b = x_b^T W_3 g_u — affinity of stop b to the
        # learned target position of UGV u.
        stops = Tensor(np.asarray(stop_positions, dtype=float))  # (B, 2)
        z = self.w3(stops) @ g.transpose()  # (B, U)
        z = z.transpose()  # (U, B)

        # Eqn. (30b): the readout combines invariant h with a pooled view
        # of the equivariant preference (its mean keeps dims fixed).
        z_summary = z.mean(axis=-1, keepdims=True)  # (U, 1)
        h_final = self.phi_u(Tensor.concat([h, z_summary], axis=-1)).tanh()
        return h_final, z, g

    def forward_batch(self, features: Tensor, positions: np.ndarray,
                      stop_positions: np.ndarray) -> tuple[Tensor, Tensor, Tensor]:
        """Communicate among all UGVs across P stacked replicas.

        Same contract as :meth:`forward` with a leading replica axis:
        ``features`` is ``(P, U, D)``, ``positions`` is ``(P, U, 2)`` and
        the returns are ``(P, U, D)`` / ``(P, U, B)`` / ``(P, U, 2)``.
        """
        h = features
        g = Tensor(np.asarray(positions, dtype=float))
        for layer in self.layers:
            h, g = layer.forward_batch(h, g)

        # Eqn. (30a) batched: z[p, u, b] = x_b^T W_3 g_{p,u}, identical
        # per-element dot products to the sequential (B, U) formulation.
        stops = Tensor(np.asarray(stop_positions, dtype=float))  # (B, 2)
        z = g @ self.w3(stops).transpose()  # (P, U, 2) @ (2, B) -> (P, U, B)

        z_summary = z.mean(axis=-1, keepdims=True)  # (P, U, 1)
        h_final = self.phi_u(Tensor.concat([h, z_summary], axis=-1)).tanh()
        return h_final, z, g
