"""Hyperparameter schedules (learning rate / entropy annealing).

PPO practice anneals the learning rate and entropy bonus over training;
the paper does not specify its schedule, so these are opt-in.  A schedule
maps training *progress* in [0, 1] to a value.
"""

from __future__ import annotations

import math

__all__ = ["ConstantSchedule", "LinearSchedule", "CosineSchedule", "ExponentialSchedule"]


class _Schedule:
    def __call__(self, progress: float) -> float:
        if not 0.0 <= progress <= 1.0:
            raise ValueError(f"progress must be in [0, 1], got {progress}")
        return self._value(progress)

    def _value(self, progress: float) -> float:
        raise NotImplementedError


class ConstantSchedule(_Schedule):
    """Always returns ``value``."""

    def __init__(self, value: float):
        self.value = value

    def _value(self, progress: float) -> float:
        return self.value


class LinearSchedule(_Schedule):
    """Linear interpolation from ``start`` (progress 0) to ``end`` (1)."""

    def __init__(self, start: float, end: float):
        self.start = start
        self.end = end

    def _value(self, progress: float) -> float:
        return self.start + (self.end - self.start) * progress


class CosineSchedule(_Schedule):
    """Cosine decay from ``start`` to ``end``."""

    def __init__(self, start: float, end: float):
        self.start = start
        self.end = end

    def _value(self, progress: float) -> float:
        return self.end + (self.start - self.end) * 0.5 * (1.0 + math.cos(math.pi * progress))


class ExponentialSchedule(_Schedule):
    """Exponential decay ``start * (end/start)^progress`` (start, end > 0)."""

    def __init__(self, start: float, end: float):
        if start <= 0 or end <= 0:
            raise ValueError("exponential schedule needs positive endpoints")
        self.start = start
        self.end = end

    def _value(self, progress: float) -> float:
        return self.start * (self.end / self.start) ** progress
