"""GARL agent facade: model construction + training + evaluation.

This is the main entry point of the library::

    from repro import AirGroundEnv, EnvConfig, GARLAgent, build_campus

    campus = build_campus("kaist", scale=0.3)
    env = AirGroundEnv(campus, EnvConfig(num_ugvs=4, num_uavs_per_ugv=2))
    agent = GARLAgent(env)
    agent.train(iterations=10)
    print(agent.evaluate())
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..env.airground import AirGroundEnv
from ..env.metrics import MetricSnapshot
from ..nn import load_checkpoint, save_checkpoint
from ..obs.scope import scope as obs_scope
from .config import GARLConfig
from .ippo import IPPOTrainer, TrainRecord, run_episode
from .policies import UAVPolicy, UGVPolicy

__all__ = ["GARLAgent"]


class GARLAgent:
    """The full GARL system (MC-GCN + E-Comm + IPPO) bound to an env.

    Table III ablations are a constructor flag away::

        GARLAgent(env, GARLConfig(use_mc_gcn=False))          # "w/o MC"
        GARLAgent(env, GARLConfig(use_ecomm=False))           # "w/o E"
        GARLAgent(env, GARLConfig(use_mc_gcn=False, use_ecomm=False))
    """

    name = "GARL"

    def __init__(self, env: AirGroundEnv, config: GARLConfig | None = None,
                 detect_anomaly: bool = False):
        self.env = env
        self.config = config or GARLConfig()
        rng = np.random.default_rng(self.config.seed)
        self.ugv_policy = UGVPolicy(env.stops, self.config, rng=rng)
        self.uav_policy = UAVPolicy(env.config.uav_obs_size, self.config, rng=rng)
        self.trainer = IPPOTrainer(env, self.ugv_policy, self.uav_policy,
                                   self.config.ppo, seed=self.config.seed,
                                   detect_anomaly=detect_anomaly)

    # ------------------------------------------------------------------
    def train(self, iterations: int, episodes_per_iteration: int = 1,
              callback=None, num_envs: int = 1,
              total_iterations: int | None = None,
              num_workers: int = 1) -> list[TrainRecord]:
        """Run the Algorithm-1 training loop for ``iterations`` rounds.

        ``num_envs > 1`` collects each iteration's episodes from that
        many lock-stepped env replicas with batched policy forwards;
        ``num_workers > 1`` shards those replicas across rollout worker
        processes (bitwise-identical streams for any worker count).
        ``total_iterations`` anchors schedule progress across a
        checkpoint/resume split (see :meth:`IPPOTrainer.train`).
        """
        return self.trainer.train(iterations, episodes_per_iteration, callback,
                                  num_envs=num_envs,
                                  total_iterations=total_iterations,
                                  num_workers=num_workers)

    def close(self) -> None:
        """Shut down any multi-process rollout workers (no-op otherwise)."""
        self.trainer.close()

    def evaluate(self, episodes: int = 1, greedy: bool = True) -> MetricSnapshot:
        """Greedy evaluation; returns averaged metric snapshot."""
        return self.trainer.evaluate(episodes, greedy)

    def rollout_trace(self, greedy: bool = True, seed: int | None = None) -> list[dict]:
        """One episode recording per-step positions (the Fig. 7 traces)."""
        trace: list[dict] = []
        rng = np.random.default_rng(seed if seed is not None else self.config.seed)
        if seed is not None:
            self.env.reset(seed)
        with obs_scope("trace"):
            run_episode(self.env, self.ugv_policy, self.uav_policy, rng,
                        greedy=greedy, trace=trace)
        return trace

    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist both policies under ``directory``."""
        directory = Path(directory)
        meta = {"config": {"hidden_dim": self.config.hidden_dim,
                           "mc_gcn_layers": self.config.mc_gcn_layers,
                           "ecomm_layers": self.config.ecomm_layers,
                           "use_mc_gcn": self.config.use_mc_gcn,
                           "use_ecomm": self.config.use_ecomm}}
        save_checkpoint(self.ugv_policy, directory / "ugv_policy.npz", meta)
        save_checkpoint(self.uav_policy, directory / "uav_policy.npz", meta)

    def load(self, directory: str | Path) -> None:
        """Load both policies from a :meth:`save` directory (weights only)."""
        directory = Path(directory)
        load_checkpoint(self.ugv_policy, directory / "ugv_policy.npz")
        load_checkpoint(self.uav_policy, directory / "uav_policy.npz")

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full training state: both policies plus the trainer snapshot.

        Everything needed for ``resume ≡ uninterrupted``: parameters,
        Adam moments/steps, all rng streams and the iteration counter.
        Leaves are numpy arrays or JSON-able scalars (see
        ``repro.experiments.checkpoint`` for the on-disk format).
        """
        return {"ugv_policy": self.ugv_policy.state_dict(),
                "uav_policy": self.uav_policy.state_dict(),
                "trainer": self.trainer.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validates names/shapes)."""
        from ..nn import validate_state_dict

        validate_state_dict(self.ugv_policy, state["ugv_policy"], "ugv_policy state")
        validate_state_dict(self.uav_policy, state["uav_policy"], "uav_policy state")
        self.ugv_policy.load_state_dict(state["ugv_policy"])
        self.uav_policy.load_state_dict(state["uav_policy"])
        self.trainer.load_state_dict(state["trainer"])
