"""Actor-critic policies for UGVs (GARL) and UAVs (CNN), Section IV-A.

``UGVPolicy`` wires MC-GCN -> E-Comm -> policy/value heads (Eqn. 14).
The discrete action head covers ``B + 1`` actions: move-to-stop ``b`` for
every stop plus a final *release* action, masked by feasibility.

``UAVPolicy`` implements Eqn. (17): a small CNN over the egocentric crop,
a diagonal-Gaussian movement head and a value head.
"""

from __future__ import annotations

import numpy as np

from ..env.observation import UAVObservation, UGVObsArrays, UGVObservation
from ..maps.stop_graph import StopGraph
from ..nn import (
    MLP,
    Categorical,
    Conv2d,
    DiagGaussian,
    Linear,
    Module,
    Parameter,
    Tensor,
)
from .config import GARLConfig
from .ecomm import EComm
from .mc_gcn import MCGCN

__all__ = ["UGVPolicy", "UAVPolicy", "UGVPolicyOutput", "bias_release_head",
           "forward_policy_batched"]

# Initial bias on the release logit.  With one release action among B+1
# mostly-uniform choices, an unbiased init almost never flies the UAVs,
# so early training sees no collection signal at all; a positive prior
# makes flights common from the first episode.  Applied identically to
# GARL and every baseline (the paper does not specify initialisation).
RELEASE_BIAS = 2.0


def bias_release_head(head) -> None:
    """Set the final linear layer's bias of a release head to RELEASE_BIAS."""
    from ..nn import Linear

    last = None
    for module in head.modules():
        if isinstance(module, Linear):
            last = module
    if last is not None and last.bias is not None:
        last.bias.data = np.full_like(last.bias.data, RELEASE_BIAS)  # reprolint: disable=RL001


class UGVPolicyOutput:
    """Joint forward result for all UGVs at one timeslot."""

    __slots__ = ("logits", "values", "distribution")

    def __init__(self, logits: Tensor, values: Tensor):
        self.logits = logits  # (U, B+1), already masked
        self.values = values  # (U,)
        self.distribution = Categorical(logits)


class UGVPolicy(Module):
    """GARL's UGV actor-critic (Eqns. 14a-14d).

    The policy is *parameter-shared* across UGVs (the standard IPPO
    arrangement); each UGV's forward pass is individualised through its
    own observation, centre subtraction and communication geometry.
    """

    def __init__(self, stops: StopGraph, config: GARLConfig,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.stops = stops
        dim = config.hidden_dim
        self.mc_gcn = MCGCN(stops, config, rng=rng)
        self.ecomm = EComm(dim, config, rng=rng) if config.use_ecomm else None
        # Per-stop score from that stop's node feature.
        self.node_head = Linear(dim, 1, rng=rng, init="orthogonal", gain=0.01)
        # Mixing weight for the E-Comm preference scores z; only exists
        # when E-Comm produces a z (graphcheck GC002 flags it otherwise).
        self.z_scale = Parameter(np.array([0.1])) if config.use_ecomm else None
        # Release logit and value from the compact feature h.
        self.release_head = MLP([dim, dim, 1], rng=rng, final_gain=0.01)
        bias_release_head(self.release_head)
        self.value_head = MLP([dim, dim, 1], rng=rng, final_gain=1.0)
        # Coordinates are normalised by the workzone extent inside forward.
        self._extent = float(max(stops.positions[:, 0].max(), stops.positions[:, 1].max(), 1.0))
        self._norm_stop_positions = stops.positions / self._extent

    def forward(self, observations: list[UGVObservation]) -> UGVPolicyOutput:
        """Joint forward for the whole coalition (needed by E-Comm)."""
        num_agents = len(observations)
        all_stops = observations[0].ugv_stops

        node_features = []
        pooled = []
        for obs in observations:
            others = np.delete(all_stops, obs.agent_index)
            h_nodes, h_pooled = self.mc_gcn(obs.stop_features, obs.current_stop, others)
            node_features.append(h_nodes)
            pooled.append(h_pooled)
        h_stack = Tensor.stack(pooled, axis=0)  # (U, D)

        if self.ecomm is not None and num_agents >= 1:
            positions = self.stops.positions[all_stops] / self._extent
            h_final, z, _ = self.ecomm(h_stack, positions, self._norm_stop_positions)
        else:
            h_final, z = h_stack, None

        logits_rows = []
        for u, obs in enumerate(observations):
            stop_scores = self.node_head(node_features[u]).squeeze(-1)  # (B,)
            if z is not None:
                stop_scores = stop_scores + self.z_scale * z[u]
            release = self.release_head(h_final[u])  # (1,)
            row = Tensor.concat([stop_scores, release], axis=0)  # (B+1,)
            mask_penalty = np.where(obs.action_mask, 0.0, -1e9)
            logits_rows.append(row + Tensor(mask_penalty))
        logits = Tensor.stack(logits_rows, axis=0)
        values = self.value_head(h_final).squeeze(-1)
        return UGVPolicyOutput(logits, values)

    def forward_batched(self, obs: UGVObsArrays) -> UGVPolicyOutput:
        """Joint forward for P stacked replicas in one pass.

        The (P, U) centres fold into a single ``N = P * U`` MC-GCN batch;
        E-Comm then communicates within each replica's coalition along a
        broadcast replica axis.  Returns logits ``(P, U, B + 1)`` and
        values ``(P, U)`` — at P = 1 numerically equivalent to
        :meth:`forward` on the corresponding observation list.
        """
        num_replicas, num_agents = obs.ugv_stops.shape
        num_stops = obs.num_stops
        own = obs.ugv_stops.reshape(-1)  # (N,)
        # Static (U, U-1) index of "the other agents" per agent, applied
        # replica-wise to gather the negative-centre stops.
        # Depends only on num_agents (U <= 8); rebuilding the (U, U-1)
        # index per forward is cheaper than a keyed cache.
        other_idx = np.array([[j for j in range(num_agents) if j != u]  # reprolint: disable=PF001
                              for u in range(num_agents)], dtype=int).reshape(num_agents, -1)
        others = obs.ugv_stops[:, other_idx].reshape(num_replicas * num_agents, -1)

        features = obs.stop_features.reshape(-1, num_stops, obs.stop_features.shape[-1])
        nodes, pooled = self.mc_gcn.forward_batch(features, own, others)
        h_stack = pooled.reshape(num_replicas, num_agents, -1)  # (P, U, D)

        if self.ecomm is not None and num_agents >= 1:
            positions = self.stops.positions[obs.ugv_stops] / self._extent  # (P, U, 2)
            h_final, z, _ = self.ecomm.forward_batch(h_stack, positions,
                                                     self._norm_stop_positions)
        else:
            h_final, z = h_stack, None

        stop_scores = self.node_head(nodes).squeeze(-1)  # (N, B)
        stop_scores = stop_scores.reshape(num_replicas, num_agents, num_stops)
        if z is not None:
            stop_scores = stop_scores + self.z_scale * z
        release = self.release_head(h_final)  # (P, U, 1)
        rows = Tensor.concat([stop_scores, release], axis=-1)  # (P, U, B+1)
        logits = rows + Tensor(np.where(obs.action_mask, 0.0, -1e9))
        values = self.value_head(h_final).squeeze(-1)  # (P, U)
        return UGVPolicyOutput(logits, values)


def forward_policy_batched(policy, obs: UGVObsArrays) -> UGVPolicyOutput:
    """Forward a UGV policy over stacked replica observations.

    Uses the policy's native ``forward_batched`` when it defines one;
    otherwise falls back to one sequential forward per replica and stacks
    the outputs.  The fallback keeps every policy (baselines included)
    usable behind the vectorized pipeline at unbatched speed.
    """
    batched = getattr(policy, "forward_batched", None)
    if batched is not None:
        return batched(obs)
    outputs = [policy(obs.observations(p)) for p in range(obs.lead_shape[0])]
    logits = Tensor.stack([out.logits for out in outputs], axis=0)
    values = Tensor.stack([out.values for out in outputs], axis=0)
    return UGVPolicyOutput(logits, values)


class UAVPolicy(Module):
    """CNN actor-critic for UAV movement (Eqn. 17).

    Outputs a diagonal Gaussian over the 2-D movement direction in
    normalised units; the runner scales samples by ``δ_max^v``.
    """

    def __init__(self, obs_size: int, config: GARLConfig,
                 rng: np.random.Generator | None = None, aux_dim: int = 5):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed + 2)
        c = config.uav_channels
        self.conv1 = Conv2d(3, c, 3, stride=2, rng=rng)
        self.conv2 = Conv2d(c, 2 * c, 3, stride=2, rng=rng)
        side = ((obs_size - 3) // 2 + 1 - 3) // 2 + 1
        flat = 2 * c * side * side
        dim = config.uav_hidden_dim
        self.trunk = MLP([flat + aux_dim, dim], rng=rng, final_gain=1.0)
        self.mean_head = MLP([dim, 2], rng=rng, final_gain=0.01)
        self.value_head = MLP([dim, 1], rng=rng, final_gain=1.0)
        self.log_std = Parameter(np.full(2, -0.5))

    def features(self, grids: np.ndarray, aux: np.ndarray) -> Tensor:
        """Shared conv-trunk embedding of grid + aux observation arrays."""
        x = Tensor(np.asarray(grids, dtype=float))
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        x = x.reshape(x.shape[0], -1)
        x = Tensor.concat([x, Tensor(np.asarray(aux, dtype=float))], axis=-1)
        return self.trunk(x).tanh()

    def forward(self, observations: list[UAVObservation]) -> tuple[DiagGaussian, Tensor]:
        """Batched forward over airborne UAVs."""
        grids = np.stack([o.grid for o in observations])
        aux = np.stack([o.aux for o in observations])
        return self.forward_arrays(grids, aux)

    def forward_arrays(self, grids: np.ndarray, aux: np.ndarray) -> tuple[DiagGaussian, Tensor]:
        """Forward directly from ``(N, 3, S, S)`` / ``(N, aux)`` arrays.

        The vectorized pipeline gathers every airborne UAV across all
        replicas into one such batch, so the whole fleet shares a single
        CNN forward per step.
        """
        feats = self.features(grids, aux)
        mean = self.mean_head(feats).tanh()
        values = self.value_head(feats).squeeze(-1)
        return DiagGaussian(mean, self.log_std), values
