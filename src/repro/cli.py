"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the paper's experiments:

* ``train``        — train one method on one campus, optionally saving a
                     checkpoint directory.
* ``evaluate``     — evaluate a saved checkpoint.
* ``ablation``     — Table III rows for one campus.
* ``layers``       — Table II layer sweep.
* ``sweep``        — Fig. 3-6 coalition sweep (writes JSON records).
* ``complexity``   — Table IV inference-cost rows.
* ``trajectories`` — Fig. 7 trajectory statistics.
* ``lint``         — reprolint static analysis over the codebase
                     (autodiff-misuse rules; see docs/static_analysis.md).
* ``graphcheck``   — trace each method's training step into a graph IR
                     and run the GC001-GC005 static passes over it.
* ``profile``      — profile a short training run: hierarchical scope
                     timers, per-op autodiff table, Chrome trace (see
                     docs/observability.md).
* ``check-determinism`` — static DT rules, whole-program shared-state
                     map, and a two-run runtime divergence bisector
                     naming the first divergent iteration and op.
* ``perfcheck``    — profile-guided performance analysis: PF source
                     rules plus fusion/buffer/recompute passes over a
                     traced step (see docs/static_analysis.md).
* ``compile``      — lower GARL's UAV surrogate step through the
                     compiled plan executor and report fused groups,
                     arena bytes and the guard set (``--smoke`` verifies
                     bitwise replay/eager equivalence).
* ``check``        — run all five analysis pillars with one summary
                     table and a combined exit code.
* ``export``       — freeze a training checkpoint into a tape-free
                     inference artifact (weights + config fingerprint +
                     schema manifest), probe-verified bit-for-bit.
* ``serve``        — stand up the micro-batched policy inference service
                     over an exported artifact (see docs/serving.md).
"""

from __future__ import annotations

import argparse
import sys

from .baselines.registry import AGENT_NAMES, make_agent
from .experiments import (
    ablation_study,
    complexity_study,
    coalition_sweep,
    format_ablation,
    format_coalition_series,
    format_complexity,
    format_layer_sweep,
    format_trajectory_stats,
    get_preset,
    layer_sweep,
    run_method,
    save_records,
    trajectory_study,
)
from .experiments.runner import build_env, method_seed

_CAMPUSES = ("kaist", "ucla")
_PRESETS = ("smoke", "small", "paper")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campus", default="kaist", choices=_CAMPUSES)
    parser.add_argument("--preset", default="smoke", choices=_PRESETS)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="GARL reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train one method")
    p_train.add_argument("method", choices=sorted(AGENT_NAMES))
    _add_common(p_train)
    p_train.add_argument("--ugvs", type=int, default=4)
    p_train.add_argument("--uavs", type=int, default=2)
    p_train.add_argument("--iterations", type=int, default=None,
                         help="override the preset's training iterations")
    p_train.add_argument("--num-envs", type=int, default=1,
                         help="collect from this many vectorized env "
                              "replicas per iteration (default: 1, "
                              "sequential)")
    p_train.add_argument("--workers", type=int, default=1,
                         help="shard the --num-envs replicas across this "
                              "many rollout worker processes (default: 1, "
                              "in-process; results are bitwise identical "
                              "for any worker count)")
    p_train.add_argument("--save", type=str, default=None,
                         help="directory to write the trained (weights-only) "
                              "checkpoint")
    p_train.add_argument("--checkpoint-dir", type=str, default=None,
                         help="run directory for full-training-state "
                              "checkpoints + train.jsonl telemetry "
                              "(crash-safe, resumable)")
    p_train.add_argument("--save-every", type=int, default=10,
                         help="checkpoint every N iterations "
                              "(default: 10; requires --checkpoint-dir)")
    p_train.add_argument("--keep-last", type=int, default=3,
                         help="periodic checkpoints to retain besides the "
                              "best-by-λ one (default: 3)")
    p_train.add_argument("--resume", type=str, default=None, metavar="latest|PATH",
                         help="resume from 'latest' (via the run directory's "
                              "pointer) or from a specific checkpoint path; "
                              "continuation is bit-for-bit identical to an "
                              "uninterrupted run")
    p_train.add_argument("--profile", action="store_true",
                         help="run under the repro.obs scope profiler; "
                              "prints the top-scope table and writes a "
                              "Chrome trace + JSONL to --profile-dir")
    p_train.add_argument("--profile-dir", type=str, default=None,
                         help="output directory for --profile artifacts "
                              "(default: --checkpoint-dir, else cwd)")

    p_eval = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    p_eval.add_argument("method", choices=sorted(AGENT_NAMES))
    p_eval.add_argument("checkpoint", help="directory written by 'train --save'")
    _add_common(p_eval)
    p_eval.add_argument("--ugvs", type=int, default=4)
    p_eval.add_argument("--uavs", type=int, default=2)
    p_eval.add_argument("--episodes", type=int, default=3)

    p_abl = sub.add_parser("ablation", help="Table III rows")
    _add_common(p_abl)

    p_layers = sub.add_parser("layers", help="Table II layer sweep")
    _add_common(p_layers)
    p_layers.add_argument("--which", choices=("mc", "e"), default="mc")
    p_layers.add_argument("--layers", type=int, nargs="+", default=[1, 2, 3, 4, 5])

    p_sweep = sub.add_parser("sweep", help="Fig. 3-6 coalition sweep")
    _add_common(p_sweep)
    p_sweep.add_argument("--methods", nargs="+", default=["garl", "gat", "random"])
    p_sweep.add_argument("--ugv-counts", type=int, nargs="+", default=[2, 4, 6])
    p_sweep.add_argument("--uav-counts", type=int, nargs="+", default=[1, 2, 3])
    p_sweep.add_argument("--metric", default="efficiency",
                         choices=("efficiency", "psi", "xi", "zeta", "beta"))
    p_sweep.add_argument("--out", type=str, default=None,
                         help="write raw records to this JSON file")

    p_cx = sub.add_parser("complexity", help="Table IV rows")
    _add_common(p_cx)
    p_cx.add_argument("--methods", nargs="+",
                      default=["garl", "gam", "gat", "cubicmap", "aecomm",
                               "dgn", "ic3net", "maddpg"])

    p_traj = sub.add_parser("trajectories", help="Fig. 7 statistics")
    _add_common(p_traj)
    p_traj.add_argument("--methods", nargs="+",
                        default=["garl", "aecomm", "dgn", "gam", "gat"])

    p_render = sub.add_parser("render", help="render a campus (and optional "
                                             "method trace) to SVG")
    _add_common(p_render)
    p_render.add_argument("--method", default=None, choices=sorted(AGENT_NAMES),
                          help="also train this method and overlay its trace")
    p_render.add_argument("--out", default="campus.svg")

    p_lint = sub.add_parser("lint", help="run the reprolint static-analysis "
                                         "rules (exit 1 on findings)")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")

    p_gc = sub.add_parser("graphcheck", add_help=False,
                          help="trace each method's training step into a "
                               "graph IR and run the GC001-GC005 passes "
                               "(exit 1 on findings)")
    p_gc.add_argument("gc_args", nargs=argparse.REMAINDER,
                      help="arguments for the graphcheck runner "
                           "(--methods, --dot, --json, --show-cse, ...)")

    p_det = sub.add_parser("check-determinism", add_help=False,
                           help="static DT rules + shared-state map + "
                                "two-run runtime divergence bisection "
                                "(exit 1 on findings)")
    p_det.add_argument("det_args", nargs=argparse.REMAINDER,
                       help="arguments for the determinism analyzer "
                            "(--quick, --num-envs, --state-map, ...)")

    p_pc = sub.add_parser("perfcheck", add_help=False,
                          help="PF performance rules + PC001-PC003 "
                               "fusion/buffer/recompute passes over a "
                               "traced step (exit 1 on findings)")
    p_pc.add_argument("pc_args", nargs=argparse.REMAINDER,
                      help="arguments for the perfcheck driver "
                           "(paths, --profile, --json, --baseline, ...)")

    p_compile = sub.add_parser("compile", add_help=False,
                               help="lower GARL's UAV step through the "
                                    "compiled plan executor and report the "
                                    "plan (exit 2 on --smoke mismatch)")
    p_compile.add_argument("compile_args", nargs=argparse.REMAINDER,
                           help="arguments for the compile reporter "
                                "(--smoke, --json, --minibatch, ...)")

    p_check = sub.add_parser("check", add_help=False,
                             help="run all five analysis pillars with one "
                                  "summary table and a combined exit code")
    p_check.add_argument("check_args", nargs=argparse.REMAINDER,
                         help="arguments for the meta-check "
                              "(--methods, --only, --verbose)")

    p_export = sub.add_parser("export", help="freeze a training checkpoint "
                                             "into an inference artifact")
    p_export.add_argument("checkpoint",
                          help="an iter_* checkpoint directory or a run "
                               "directory (resolved via its 'latest' pointer)")
    p_export.add_argument("--out", required=True,
                          help="artifact output directory")
    p_export.add_argument("--method", default=None, choices=sorted(AGENT_NAMES),
                          help="override/supply the method when the "
                               "checkpoint manifest predates the serve fields")
    p_export.add_argument("--campus", default=None, choices=_CAMPUSES)
    p_export.add_argument("--preset", default=None, choices=_PRESETS)
    p_export.add_argument("--seed", type=int, default=None)
    p_export.add_argument("--ugvs", type=int, default=None)
    p_export.add_argument("--uavs", type=int, default=None)

    p_serve = sub.add_parser("serve", help="serve an exported artifact "
                                           "(micro-batched inference, SLOs)")
    p_serve.add_argument("artifact", help="directory written by 'repro export'")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="listen port (0 picks a free one; see "
                              "--ready-file)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="flush a batch at this many queued requests "
                              "(default: 32)")
    p_serve.add_argument("--max-wait-us", type=float, default=2000.0,
                         help="flush a batch this long after its oldest "
                              "request arrived, in µs (default: 2000)")
    p_serve.add_argument("--queue-limit", type=int, default=256,
                         help="bounded-queue depth; beyond it requests are "
                              "shed with 429 (default: 256)")
    p_serve.add_argument("--timeout-ms", type=float, default=1000.0,
                         help="per-request deadline (default: 1000)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         help="max seconds to wait for in-flight requests "
                              "after SIGTERM (default: 30)")
    p_serve.add_argument("--no-compile", action="store_true",
                         help="serve the UAV CNN eagerly instead of through "
                              "the compiled plan cache")
    p_serve.add_argument("--no-warmup", action="store_true",
                         help="skip pre-capturing compiled plans at boot")
    p_serve.add_argument("--no-verify", action="store_true",
                         help="skip the load-time bit-for-bit probe check")
    p_serve.add_argument("--ready-file", default=None,
                         help="write '<host> <port>' here once listening")

    from .obs.cli import add_profile_parser

    add_profile_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "graphcheck":
        # Dispatch before parsing: argparse's REMAINDER does not capture
        # leading options, and the runner owns its own option surface.
        from .analysis.graphcheck import main as graphcheck_main

        return graphcheck_main(argv[1:])
    if argv and argv[0] == "check-determinism":
        from .analysis.determinism import main as determinism_main

        return determinism_main(argv[1:])
    if argv and argv[0] == "perfcheck":
        from .analysis.perfcheck import main as perfcheck_main

        return perfcheck_main(argv[1:])
    if argv and argv[0] == "compile":
        from .nn.compile_cli import main as compile_main

        return compile_main(argv[1:])
    if argv and argv[0] == "check":
        from .analysis.check import main as check_main

        return check_main(argv[1:])
    args = build_parser().parse_args(argv)

    if args.command == "lint":
        from .analysis.lint import main as lint_main

        lint_args = list(args.paths)
        if args.list_rules:
            lint_args.append("--list-rules")
        return lint_main(lint_args)

    if args.command == "graphcheck":
        from .analysis.graphcheck import main as graphcheck_main

        return graphcheck_main(args.gc_args)

    if args.command == "check-determinism":
        from .analysis.determinism import main as determinism_main

        return determinism_main(args.det_args)

    if args.command == "perfcheck":
        from .analysis.perfcheck import main as perfcheck_main

        return perfcheck_main(args.pc_args)

    if args.command == "compile":
        from .nn.compile_cli import main as compile_main

        return compile_main(args.compile_args)

    if args.command == "check":
        from .analysis.check import main as check_main

        return check_main(args.check_args)

    if args.command == "export":
        from .serve import ArtifactError, export_artifact

        try:
            out = export_artifact(
                args.checkpoint, args.out, method=args.method,
                campus=args.campus, preset=args.preset, seed=args.seed,
                num_ugvs=args.ugvs, num_uavs_per_ugv=args.uavs)
        except ArtifactError as exc:
            print(f"export failed: {exc}", file=sys.stderr)
            return 1
        print(f"artifact written to {out} (probe-verified bit-for-bit)")
        return 0

    if args.command == "serve":
        from .serve import ArtifactError, run_service

        try:
            return run_service(
                args.artifact, host=args.host, port=args.port,
                max_batch=args.max_batch, max_wait_us=args.max_wait_us,
                queue_limit=args.queue_limit, timeout_ms=args.timeout_ms,
                drain_timeout_s=args.drain_timeout,
                compile_uav=not args.no_compile, warmup=not args.no_warmup,
                verify=not args.no_verify, ready_file=args.ready_file)
        except ArtifactError as exc:
            print(f"refusing to serve: {exc}", file=sys.stderr)
            return 1

    preset = get_preset(args.preset)

    if args.command == "profile":
        from .obs.cli import run_profile_command

        return run_profile_command(args)

    if args.command == "train":
        from .experiments import RESUME_EXIT_CODE, TrainingInterrupted, run_training

        def _train_call():
            return run_training(
                args.method, args.campus, preset,
                num_ugvs=args.ugvs, num_uavs_per_ugv=args.uavs,
                seed=args.seed, train_iterations=args.iterations,
                num_envs=args.num_envs, num_workers=args.workers,
                checkpoint_dir=args.checkpoint_dir,
                save_every=args.save_every, keep_last=args.keep_last,
                resume=args.resume)

        try:
            if args.profile:
                from .obs.cli import profile_training

                profile_dir = (args.profile_dir or args.checkpoint_dir or ".")
                record, agent = profile_training(_train_call, profile_dir)
            else:
                record, agent = _train_call()
        except TrainingInterrupted as interrupted:
            print(f"{interrupted}")
            print(f"resume with: repro train {args.method} --campus "
                  f"{args.campus} --preset {args.preset} "
                  f"--checkpoint-dir {args.checkpoint_dir} --resume latest")
            return RESUME_EXIT_CODE
        m = record.metrics
        print(f"{args.method} on {args.campus}: λ={m['efficiency']:.4f} "
              f"ψ={m['psi']:.4f} ξ={m['xi']:.4f} ζ={m['zeta']:.4f} β={m['beta']:.4f}")
        if args.save:
            agent.save(args.save)
            print(f"checkpoint written to {args.save}")

    elif args.command == "evaluate":
        env = build_env(args.campus, preset, args.ugvs, args.uavs, args.seed)
        agent = make_agent(args.method, env, preset.garl_config())
        agent.load(args.checkpoint)
        snap = agent.evaluate(episodes=args.episodes, greedy=False)
        print(snap)

    elif args.command == "ablation":
        print(format_ablation(ablation_study(args.campus, preset, seed=args.seed)))

    elif args.command == "layers":
        records = layer_sweep(args.campus, which=args.which,
                              layers=tuple(args.layers), preset=preset,
                              seed=args.seed)
        print(format_layer_sweep(records, args.which))

    elif args.command == "sweep":
        records = coalition_sweep(args.campus, tuple(args.methods),
                                  ugv_counts=tuple(args.ugv_counts),
                                  uav_counts=tuple(args.uav_counts),
                                  preset=preset, seed=args.seed)
        for axis in ("ugvs", "uavs"):
            print(format_coalition_series(records, axis, args.metric))
            print()
        if args.out:
            save_records(records, args.out)
            print(f"records written to {args.out}")

    elif args.command == "complexity":
        rows = complexity_study(args.campus, tuple(args.methods), preset,
                                seed=args.seed)
        print(format_complexity(rows))

    elif args.command == "trajectories":
        stats = trajectory_study(args.campus, tuple(args.methods), preset,
                                 seed=args.seed)
        print(format_trajectory_stats(stats))

    elif args.command == "render":
        from .viz import render_campus, render_trajectories

        env = build_env(args.campus, preset, num_ugvs=4, num_uavs_per_ugv=2,
                        seed=args.seed)
        if args.method:
            agent = make_agent(args.method, env, preset.garl_config().replace(
                seed=method_seed(args.method, args.seed)))
            agent.train(preset.train_iterations, preset.episodes_per_iteration)
            trace = agent.rollout_trace(greedy=False, seed=args.seed)
            canvas = render_trajectories(env, trace,
                                         title=f"{args.method} on {args.campus}")
        else:
            env.reset()
            canvas = render_campus(env.campus, stops=env.stops)
        path = canvas.save(args.out)
        print(f"SVG written to {path}")

    return 0


if __name__ == "__main__":
    sys.exit(main())
