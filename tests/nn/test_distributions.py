"""Tests for the policy distributions."""

import numpy as np
import pytest

from repro.nn import Categorical, DiagGaussian, Tensor


class TestCategorical:
    def test_log_prob_matches_softmax(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        dist = Categorical(Tensor(logits))
        actions = np.array([2])
        expected = logits[0, 2] - np.log(np.exp(logits).sum())
        assert dist.log_prob(actions).numpy()[0] == pytest.approx(expected)

    def test_sample_frequencies_match_probs(self):
        rng = np.random.default_rng(0)
        logits = np.log(np.array([[0.7, 0.2, 0.1]]))
        dist = Categorical(Tensor(np.repeat(logits, 4000, axis=0)))
        samples = dist.sample(rng)
        freq = np.bincount(samples, minlength=3) / len(samples)
        np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.03)

    def test_mode(self):
        dist = Categorical(Tensor(np.array([[0.0, 5.0, 1.0], [9.0, 0.0, 0.0]])))
        np.testing.assert_array_equal(dist.mode(), [1, 0])

    def test_entropy_uniform_is_log_n(self):
        dist = Categorical(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(dist.entropy().numpy(), np.full(2, np.log(4)), atol=1e-10)

    def test_entropy_degenerate_is_zero(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        assert Categorical(Tensor(logits)).entropy().numpy()[0] == pytest.approx(0.0, abs=1e-6)

    def test_masked_logits_never_sampled(self):
        rng = np.random.default_rng(1)
        logits = np.array([[0.0, -1e9, 0.0]])
        dist = Categorical(Tensor(np.repeat(logits, 500, axis=0)))
        samples = dist.sample(rng)
        assert not (samples == 1).any()

    def test_gradient_through_log_prob(self):
        t = Tensor(np.zeros((1, 3)), requires_grad=True)
        dist = Categorical(t)
        dist.log_prob(np.array([0])).sum().backward()
        # d/dlogits of log p(a=0) = onehot(0) - softmax = [2/3, -1/3, -1/3]
        np.testing.assert_allclose(t.grad, [[2 / 3, -1 / 3, -1 / 3]], atol=1e-9)

    def test_batched_shapes(self):
        dist = Categorical(Tensor(np.zeros((5, 7))))
        rng = np.random.default_rng(2)
        actions = dist.sample(rng)
        assert actions.shape == (5,)
        assert dist.log_prob(actions).shape == (5,)
        assert dist.entropy().shape == (5,)


class TestDiagGaussian:
    def test_log_prob_matches_scipy(self):
        from scipy.stats import norm

        mean = np.array([[0.5, -1.0]])
        log_std = np.array([0.1, -0.3])
        dist = DiagGaussian(Tensor(mean), Tensor(log_std))
        action = np.array([[0.7, -0.5]])
        expected = norm.logpdf(action, loc=mean, scale=np.exp(log_std)).sum()
        assert dist.log_prob(action).numpy()[0] == pytest.approx(expected)

    def test_sample_statistics(self):
        rng = np.random.default_rng(0)
        mean = np.tile(np.array([[2.0, -3.0]]), (20000, 1))
        dist = DiagGaussian(Tensor(mean), Tensor(np.log([0.5, 2.0])))
        samples = dist.sample(rng)
        np.testing.assert_allclose(samples.mean(axis=0), [2.0, -3.0], atol=0.05)
        np.testing.assert_allclose(samples.std(axis=0), [0.5, 2.0], atol=0.05)

    def test_mode_is_mean(self):
        mean = np.array([[1.0, 2.0]])
        dist = DiagGaussian(Tensor(mean), Tensor(np.zeros(2)))
        np.testing.assert_array_equal(dist.mode(), mean)

    def test_entropy_formula(self):
        log_std = np.array([0.0, 1.0])
        dist = DiagGaussian(Tensor(np.zeros((3, 2))), Tensor(log_std))
        expected = (log_std + 0.5 * (np.log(2 * np.pi) + 1)).sum()
        np.testing.assert_allclose(dist.entropy().numpy(), np.full(3, expected), atol=1e-9)

    def test_gradient_through_log_prob_mean(self):
        mean = Tensor(np.zeros((1, 2)), requires_grad=True)
        dist = DiagGaussian(mean, Tensor(np.zeros(2)))
        dist.log_prob(np.array([[1.0, -1.0]])).sum().backward()
        # d log N / d mu = (a - mu) / sigma^2 = [1, -1]
        np.testing.assert_allclose(mean.grad, [[1.0, -1.0]], atol=1e-9)

    def test_gradient_through_log_std(self):
        log_std = Tensor(np.zeros(2), requires_grad=True)
        dist = DiagGaussian(Tensor(np.zeros((1, 2))), log_std)
        dist.log_prob(np.array([[2.0, 0.0]])).sum().backward()
        # d log N / d log_std = (a-mu)^2/sigma^2 - 1 = [3, -1]
        np.testing.assert_allclose(log_std.grad, [3.0, -1.0], atol=1e-9)
