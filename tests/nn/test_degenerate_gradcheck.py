"""Degenerate-input gradient sweeps for graph and attention layers.

Hypothesis drives the layers through the edge cases the sanitizer exists
for: single-node graphs, zero-distance neighbours, fully masked attention
rows.  The contract for each case is "the sanitizer flags it — or the
gradients survive": under ``detect_anomaly()`` either an ``AnomalyError``
is raised naming the culprit op, or backward completes and every gradient
is finite.  Silent NaN is the one forbidden outcome.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.ecomm import ECommLayer
from repro.nn import (
    AnomalyError,
    GATLayer,
    GCNLayer,
    MultiHeadAttention,
    ScaledDotProductAttention,
    Tensor,
    detect_anomaly,
    normalized_laplacian,
)

from .gradcheck import check_gradient

SETTINGS = dict(max_examples=15, deadline=None)


def features(rows, cols, min_value=-2.0, max_value=2.0):
    return arrays(
        dtype=np.float64,
        shape=(rows, cols),
        elements=st.floats(min_value=min_value, max_value=max_value,
                           allow_nan=False, allow_infinity=False),
    )


def backward_survives_or_flags(build_loss, params):
    """Run loss.backward() under anomaly mode; forbid only silent NaN."""
    for p in params:
        p.grad = None
    with detect_anomaly():
        try:
            build_loss().backward()
        except AnomalyError:
            return  # flagged with provenance: acceptable outcome
    for p in params:
        if p.grad is not None:
            assert np.isfinite(p.grad).all(), "silent non-finite gradient"


# ----------------------------------------------------------------------
# GCN: single-node graphs
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(features(1, 3))
def test_gcn_single_node_graph(x):
    layer = GCNLayer(3, 2, rng=np.random.default_rng(0))
    lap = normalized_laplacian(np.zeros((1, 1)))
    t = Tensor(x, requires_grad=True)
    backward_survives_or_flags(
        lambda: (layer(t, lap) ** 2).sum(),
        [t, layer.weight, layer.bias],
    )


def test_gcn_single_node_numeric_gradient():
    layer = GCNLayer(3, 2, rng=np.random.default_rng(1), activation="tanh")
    lap = normalized_laplacian(np.zeros((1, 1)))
    x = np.random.default_rng(2).normal(size=(1, 3))
    check_gradient(lambda t: layer(t, lap), x)


# ----------------------------------------------------------------------
# GAT: empty adjacency (self-loops only) and single node
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(features(4, 3), st.booleans())
def test_gat_isolated_nodes(x, empty):
    layer = GATLayer(3, 2, rng=np.random.default_rng(0))
    adj = np.zeros((4, 4)) if empty else np.ones((4, 4)) - np.eye(4)
    t = Tensor(x, requires_grad=True)
    backward_survives_or_flags(
        lambda: (layer(t, adj) ** 2).sum(),
        [t, layer.weight, layer.attn_src, layer.attn_dst],
    )


def test_gat_single_node_numeric_gradient():
    layer = GATLayer(3, 2, rng=np.random.default_rng(3))
    adj = np.zeros((1, 1))
    x = np.random.default_rng(4).normal(size=(1, 3))
    check_gradient(lambda t: layer(t, adj), x)


# ----------------------------------------------------------------------
# E-Comm: zero-distance neighbours (coincident UGVs)
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(features(3, 4), st.sampled_from([0, 1, 2]))
def test_ecomm_coincident_positions(h, n_coincident):
    layer = ECommLayer(4, clip=1.0, rng=np.random.default_rng(0))
    positions = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]])
    # Collapse the first n_coincident+1 UGVs onto one point: zero-distance
    # neighbours exercise the 1/||r|| guards of Eqns. 26 and 28.
    positions[: n_coincident + 1] = positions[0]
    ht = Tensor(h, requires_grad=True)
    gt = Tensor(positions, requires_grad=True)

    def loss():
        h_new, g_new = layer(ht, gt)
        return (h_new ** 2).sum() + (g_new ** 2).sum()

    backward_survives_or_flags(loss, [ht, gt, *layer.parameters()])


def test_ecomm_all_coincident_numeric_gradient():
    layer = ECommLayer(4, clip=1.0, rng=np.random.default_rng(5))
    positions = np.zeros((3, 2))  # every pairwise distance is exactly zero

    def op(t):
        h_new, g_new = layer(t, Tensor(positions))
        return Tensor.concat([h_new, g_new], axis=-1)

    x = np.random.default_rng(6).normal(size=(3, 4))
    check_gradient(op, x, atol=1e-4, rtol=1e-3)


def test_ecomm_single_ugv_passthrough_gradient():
    layer = ECommLayer(4, clip=1.0, rng=np.random.default_rng(7))
    x = np.random.default_rng(8).normal(size=(1, 4))
    check_gradient(lambda t: layer(t, Tensor(np.zeros((1, 2))))[0], x)


# ----------------------------------------------------------------------
# Attention: fully masked rows
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(features(3, 4), st.integers(min_value=0, max_value=2))
def test_sdpa_fully_masked_row(x, dead_row):
    attn = ScaledDotProductAttention(4, rng=np.random.default_rng(0))
    mask = np.ones((3, 3), dtype=bool)
    mask[dead_row] = False  # this query may attend to nothing
    t = Tensor(x, requires_grad=True)
    backward_survives_or_flags(
        lambda: (attn(t, mask) ** 2).sum(),
        [t, *attn.parameters()],
    )


@settings(**SETTINGS)
@given(features(4, 4))
def test_multihead_all_masked(x):
    attn = MultiHeadAttention(4, heads=2, rng=np.random.default_rng(0))
    mask = np.zeros((4, 4), dtype=bool)  # every row fully masked
    t = Tensor(x, requires_grad=True)
    backward_survives_or_flags(
        lambda: (attn(t, mask) ** 2).sum(),
        [t, *attn.parameters()],
    )


def test_sdpa_numeric_gradient_unmasked():
    # The masked variants above only assert survival: the -1e9 mask bias
    # costs ~7 digits of float64 precision, far above central-difference
    # noise.  The unmasked path anchors the analytic gradient exactly.
    attn = ScaledDotProductAttention(4, rng=np.random.default_rng(9))
    x = np.random.default_rng(10).normal(size=(3, 4))
    check_gradient(lambda t: attn(t, None), x, atol=1e-4, rtol=1e-3)


# ----------------------------------------------------------------------
# The sanitizer does catch a genuinely broken degenerate case
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_log_of_masked_softmax_is_flagged_not_silent():
    scores = Tensor(np.full((2, 3), -1e9), requires_grad=True)
    with detect_anomaly():
        weights = scores.softmax(axis=-1)  # uniform, fine
        shifted = weights - Tensor(np.full((2, 3), 1.0 / 3.0))
        with pytest.raises(AnomalyError):
            shifted.log()  # log(0): must be flagged, never silent
