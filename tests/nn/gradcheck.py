"""Numerical gradient checking against the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(ndarray)`` w.r.t. ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(op, x: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert analytic gradient of ``scalar = op(Tensor).sum()`` matches numeric.

    ``op`` maps a Tensor to a Tensor of any shape; the check reduces with a
    fixed random weighting so ties in sum() cannot hide errors.
    """
    x = np.asarray(x, dtype=np.float64)
    rng = np.random.default_rng(12345)
    probe_shape = op(Tensor(x)).shape
    probe = rng.normal(size=probe_shape)

    def scalar(arr: np.ndarray) -> float:
        return float((op(Tensor(arr)).numpy() * probe).sum())

    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    (out * Tensor(probe)).sum().backward()
    analytic = t.grad
    numeric = numerical_gradient(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
