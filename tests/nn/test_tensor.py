"""Unit tests for the autograd Tensor: forward math and backward passes."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad

from .gradcheck import check_gradient


class TestForwardMath:
    def test_add_matches_numpy(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([10.0, 20.0])
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).numpy(), a + b)

    def test_sub_mul_div(self):
        a, b = np.array([3.0, 8.0]), np.array([2.0, 4.0])
        np.testing.assert_allclose((Tensor(a) - Tensor(b)).numpy(), a - b)
        np.testing.assert_allclose((Tensor(a) * Tensor(b)).numpy(), a * b)
        np.testing.assert_allclose((Tensor(a) / Tensor(b)).numpy(), a / b)

    def test_scalar_operands(self):
        a = np.array([1.0, 2.0])
        np.testing.assert_allclose((2.0 + Tensor(a)).numpy(), a + 2.0)
        np.testing.assert_allclose((3.0 * Tensor(a)).numpy(), 3.0 * a)
        np.testing.assert_allclose((1.0 - Tensor(a)).numpy(), 1.0 - a)
        np.testing.assert_allclose((6.0 / Tensor(a)).numpy(), 6.0 / a)

    def test_matmul_shapes(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.ones((4, 5)))
        assert (a @ b).shape == (3, 5)

    def test_matmul_vector_cases(self):
        m = np.arange(6.0).reshape(2, 3)
        v = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose((Tensor(m) @ Tensor(v)).numpy(), m @ v)
        np.testing.assert_allclose((Tensor(v) @ Tensor(m.T)).numpy(), v @ m.T)
        np.testing.assert_allclose((Tensor(v) @ Tensor(v)).numpy(), v @ v)

    def test_pow_and_sqrt(self):
        a = np.array([1.0, 4.0, 9.0])
        np.testing.assert_allclose((Tensor(a) ** 2).numpy(), a**2)
        np.testing.assert_allclose(Tensor(a).sqrt().numpy(), np.sqrt(a))

    def test_reductions(self):
        a = np.arange(12.0).reshape(3, 4)
        t = Tensor(a)
        assert t.sum().item() == a.sum()
        np.testing.assert_allclose(t.sum(axis=0).numpy(), a.sum(axis=0))
        np.testing.assert_allclose(t.mean(axis=1, keepdims=True).numpy(),
                                   a.mean(axis=1, keepdims=True))
        np.testing.assert_allclose(t.max(axis=1).numpy(), a.max(axis=1))
        np.testing.assert_allclose(t.min().numpy(), a.min())

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        rows = t.softmax(axis=-1).numpy().sum(axis=-1)
        np.testing.assert_allclose(rows, np.ones(5), atol=1e-12)

    def test_log_softmax_consistency(self):
        x = np.random.default_rng(1).normal(size=(4, 6))
        np.testing.assert_allclose(Tensor(x).log_softmax().numpy(),
                                   np.log(Tensor(x).softmax().numpy()), atol=1e-10)

    def test_shape_ops(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4))
        assert t.reshape(6, 4).shape == (6, 4)
        assert t.flatten().shape == (24,)
        assert t.transpose().shape == (4, 3, 2)
        assert t.swapaxes(0, 1).shape == (3, 2, 4)
        assert t.expand_dims(1).shape == (2, 1, 3, 4)
        assert t.expand_dims(1).squeeze(1).shape == (2, 3, 4)

    def test_getitem(self):
        a = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose(Tensor(a)[1].numpy(), a[1])
        np.testing.assert_allclose(Tensor(a)[:, 2].numpy(), a[:, 2])
        idx = np.array([0, 2])
        np.testing.assert_allclose(Tensor(a)[idx].numpy(), a[idx])

    def test_concat_stack(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 3)))
        assert Tensor.concat([a, b], axis=0).shape == (4, 3)
        assert Tensor.concat([a, b], axis=1).shape == (2, 6)
        assert Tensor.stack([a, b], axis=0).shape == (2, 2, 3)

    def test_where_maximum_minimum(self):
        a, b = np.array([1.0, 5.0]), np.array([4.0, 2.0])
        np.testing.assert_allclose(Tensor.maximum(Tensor(a), Tensor(b)).numpy(), [4.0, 5.0])
        np.testing.assert_allclose(Tensor.minimum(Tensor(a), Tensor(b)).numpy(), [1.0, 2.0])
        np.testing.assert_allclose(
            Tensor.where(a > b, Tensor(a), Tensor(b)).numpy(), [4.0, 5.0])

    def test_clip(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]))
        np.testing.assert_allclose(t.clip(-1.0, 1.0).numpy(), [-1.0, 0.5, 1.0])

    def test_norm(self):
        v = np.array([3.0, 4.0])
        assert Tensor(v).norm().item() == pytest.approx(5.0, abs=1e-6)

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)


class TestBackward:
    def test_add_backward_broadcast(self):
        check_gradient(lambda t: t + Tensor(np.ones(3)), np.random.default_rng(0).normal(size=(2, 3)))

    def test_mul_backward(self):
        other = Tensor(np.array([2.0, -1.0, 0.5]))
        check_gradient(lambda t: t * other, np.random.default_rng(1).normal(size=(4, 3)))

    def test_div_backward_both_sides(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 3)) + 3.0
        check_gradient(lambda t: Tensor(np.ones((3, 3))) / t, x)
        check_gradient(lambda t: t / Tensor(x), rng.normal(size=(3, 3)))

    def test_matmul_backward(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda t: t @ w, rng.normal(size=(3, 4)))
        x = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: x @ t, rng.normal(size=(4, 5)))

    def test_matmul_vector_backward(self):
        rng = np.random.default_rng(4)
        v = Tensor(rng.normal(size=4))
        check_gradient(lambda t: t @ v, rng.normal(size=(3, 4)))

    @pytest.mark.parametrize("op_name", ["exp", "log", "tanh", "sigmoid", "relu", "abs"])
    def test_unary_backward(self, op_name):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, 4))
        if op_name == "log":
            x = np.abs(x) + 0.5
        if op_name in ("relu", "abs"):
            x = x + np.sign(x) * 0.05  # keep away from the kink
        check_gradient(lambda t: getattr(t, op_name)(), x)

    def test_softmax_backward(self):
        check_gradient(lambda t: t.softmax(axis=-1), np.random.default_rng(6).normal(size=(3, 5)))

    def test_log_softmax_backward(self):
        check_gradient(lambda t: t.log_softmax(axis=-1), np.random.default_rng(7).normal(size=(3, 5)))

    def test_sum_mean_backward(self):
        rng = np.random.default_rng(8)
        check_gradient(lambda t: t.sum(axis=0), rng.normal(size=(3, 4)))
        check_gradient(lambda t: t.mean(axis=1, keepdims=True), rng.normal(size=(3, 4)))

    def test_max_backward_unique(self):
        x = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        check_gradient(lambda t: t.max(axis=1), x)

    def test_max_backward_splits_ties(self):
        t = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])

    def test_getitem_backward(self):
        idx = np.array([0, 2, 2])
        check_gradient(lambda t: t[idx], np.random.default_rng(9).normal(size=(4, 3)))

    def test_getitem_duplicate_index_accumulates(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        out = t[np.array([1, 1])]
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 2.0, 0.0])

    def test_reshape_transpose_backward(self):
        rng = np.random.default_rng(10)
        check_gradient(lambda t: t.reshape(6, 2), rng.normal(size=(3, 4)))
        check_gradient(lambda t: t.transpose(), rng.normal(size=(3, 4)))

    def test_concat_backward(self):
        rng = np.random.default_rng(11)
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: Tensor.concat([t, other], axis=0), rng.normal(size=(2, 3)))

    def test_stack_backward(self):
        rng = np.random.default_rng(12)
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: Tensor.stack([t, other], axis=1), rng.normal(size=(2, 3)))

    def test_clip_backward_passthrough_region(self):
        x = np.array([-0.5, 0.2, 0.9])
        check_gradient(lambda t: t.clip(-1.0, 1.0), x)

    def test_clip_blocks_gradient_outside(self):
        t = Tensor(np.array([5.0]), requires_grad=True)
        t.clip(-1.0, 1.0).backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [0.0])

    def test_norm_backward(self):
        check_gradient(lambda t: t.norm(axis=-1), np.random.default_rng(13).normal(size=(3, 4)) + 2.0)

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x must give dy/dx = 4x, requiring accumulation.
        t = Tensor(np.array([3.0]), requires_grad=True)
        y = t * t + t * t
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [12.0])

    def test_deep_chain(self):
        t = Tensor(np.array([0.5]), requires_grad=True)
        out = t
        for _ in range(50):
            out = out * 1.01
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [1.01**50], rtol=1e-10)


class TestGraphSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores(self):
        with no_grad():
            pass
        t = Tensor(np.ones(1), requires_grad=True)
        assert (t * 2).requires_grad

    def test_detach(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.numpy() is t.numpy()  # shares storage

    def test_copy_is_independent(self):
        t = Tensor(np.ones(2))
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_zero_grad(self):
        t = Tensor(np.ones(1), requires_grad=True)
        (t * 3).backward(np.array([1.0]))
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(1), requires_grad=True))

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).numpy().sum() == 4.0
