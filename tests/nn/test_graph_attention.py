"""Tests for GCN/GAT layers, the normalised Laplacian and attention blocks."""

import numpy as np
import pytest

from repro.nn import (
    GATLayer,
    GCNLayer,
    ScaledDotProductAttention,
    SelfAttentionBlock,
    Tensor,
    normalized_laplacian,
)


def ring_adjacency(n: int) -> np.ndarray:
    adj = np.zeros((n, n))
    for i in range(n):
        adj[i, (i + 1) % n] = adj[(i + 1) % n, i] = 1.0
    return adj


class TestNormalizedLaplacian:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalized_laplacian(np.zeros((2, 3)))

    def test_symmetric(self):
        lap = normalized_laplacian(ring_adjacency(6))
        np.testing.assert_allclose(lap, lap.T)

    def test_isolated_node_keeps_self_loop(self):
        adj = np.zeros((3, 3))
        lap = normalized_laplacian(adj)
        np.testing.assert_allclose(lap, np.eye(3))

    def test_constant_vector_preserved_on_regular_graph(self):
        # For a k-regular graph the normalised operator has eigenvalue 1
        # on the constant vector.
        lap = normalized_laplacian(ring_adjacency(8))
        ones = np.ones(8)
        np.testing.assert_allclose(lap @ ones, ones, atol=1e-12)

    def test_spectrum_bounded(self):
        rng = np.random.default_rng(0)
        adj = (rng.random((10, 10)) > 0.6).astype(float)
        adj = np.maximum(adj, adj.T)
        np.fill_diagonal(adj, 0)
        eigs = np.linalg.eigvalsh(normalized_laplacian(adj))
        assert eigs.max() <= 1.0 + 1e-9
        assert eigs.min() >= -1.0 - 1e-9


class TestGCNLayer:
    def test_output_shape(self):
        lap = normalized_laplacian(ring_adjacency(5))
        layer = GCNLayer(3, 7, rng=np.random.default_rng(0))
        out = layer(Tensor(np.zeros((5, 3))), lap)
        assert out.shape == (5, 7)

    def test_isolated_graph_acts_nodewise(self):
        # With identity Laplacian, two nodes with equal features get
        # identical outputs.
        lap = np.eye(4)
        layer = GCNLayer(2, 3, rng=np.random.default_rng(1))
        x = np.array([[1.0, 2.0], [1.0, 2.0], [0.0, 0.0], [5.0, 5.0]])
        out = layer(Tensor(x), lap).numpy()
        np.testing.assert_allclose(out[0], out[1])

    def test_unknown_activation_raises(self):
        layer = GCNLayer(2, 2, activation="bogus")
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 2))), np.eye(2))

    def test_gradients_flow(self):
        lap = normalized_laplacian(ring_adjacency(4))
        layer = GCNLayer(2, 2, rng=np.random.default_rng(2), activation="tanh")
        out = layer(Tensor(np.random.default_rng(3).normal(size=(4, 2))), lap)
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_propagates_neighbour_information(self):
        # A feature planted on one node must reach its ring neighbours.
        lap = normalized_laplacian(ring_adjacency(5))
        layer = GCNLayer(1, 1, rng=np.random.default_rng(4), activation="none")
        x = np.zeros((5, 1))
        x[0, 0] = 1.0
        out = layer(Tensor(x), lap).numpy().ravel()
        assert abs(out[1]) > 1e-8 and abs(out[4]) > 1e-8
        assert abs(out[2]) < 1e-12  # two hops away: untouched after 1 layer


class TestGATLayer:
    def test_output_shape_and_gradient(self):
        adj = ring_adjacency(6)
        layer = GATLayer(3, 4, rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(6, 3))), adj)
        assert out.shape == (6, 4)
        out.sum().backward()
        assert layer.weight.grad is not None

    def test_masked_nodes_do_not_influence(self):
        # Node 0 of a disconnected pair only attends to itself: changing
        # node 1's features must not change node 0's output.
        adj = np.zeros((2, 2))
        layer = GATLayer(2, 3, rng=np.random.default_rng(2))
        x1 = np.array([[1.0, 2.0], [0.0, 0.0]])
        x2 = np.array([[1.0, 2.0], [9.0, -9.0]])
        out1 = layer(Tensor(x1), adj).numpy()
        out2 = layer(Tensor(x2), adj).numpy()
        np.testing.assert_allclose(out1[0], out2[0], atol=1e-9)

    def test_outputs_bounded_by_tanh(self):
        adj = ring_adjacency(4)
        layer = GATLayer(2, 2, rng=np.random.default_rng(3))
        out = layer(Tensor(np.random.default_rng(4).normal(size=(4, 2)) * 10), adj)
        assert (np.abs(out.numpy()) <= 1.0).all()


class TestAttention:
    def test_shapes(self):
        attn = ScaledDotProductAttention(4, rng=np.random.default_rng(0))
        out = attn(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 4)

    def test_mask_blocks_positions(self):
        attn = ScaledDotProductAttention(3, rng=np.random.default_rng(1))
        x1 = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        x2 = np.array([[1.0, 0.0, 0.0], [5.0, 5.0, 5.0]])
        mask = np.array([[True, False], [False, True]])  # each attends to itself
        out1 = attn(Tensor(x1), mask).numpy()
        out2 = attn(Tensor(x2), mask).numpy()
        np.testing.assert_allclose(out1[0], out2[0], atol=1e-9)

    def test_self_attention_block_residual(self):
        block = SelfAttentionBlock(4, rng=np.random.default_rng(2))
        x = np.random.default_rng(3).normal(size=(3, 4))
        out = block(Tensor(x))
        assert out.shape == (3, 4)
        assert (out.numpy() >= 0).all()  # final relu

    def test_gradients_flow_through_block(self):
        block = SelfAttentionBlock(4, rng=np.random.default_rng(4))
        t = Tensor(np.random.default_rng(5).normal(size=(3, 4)), requires_grad=True)
        block(t).sum().backward()
        assert t.grad is not None


class TestMultiHeadAttention:
    def test_dim_divisibility_enforced(self):
        from repro.nn import MultiHeadAttention

        with pytest.raises(ValueError):
            MultiHeadAttention(6, heads=4)

    def test_shapes(self):
        from repro.nn import MultiHeadAttention

        attn = MultiHeadAttention(8, heads=2, rng=np.random.default_rng(0))
        out = attn(Tensor(np.random.default_rng(1).normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_mask_blocks_information_flow(self):
        from repro.nn import MultiHeadAttention

        attn = MultiHeadAttention(4, heads=2, rng=np.random.default_rng(0))
        mask = np.eye(2, dtype=bool)  # each row attends only to itself
        x1 = np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]])
        x2 = np.array([[1.0, 0.0, 0.0, 0.0], [9.0, 9.0, 9.0, 9.0]])
        out1 = attn(Tensor(x1), mask).numpy()
        out2 = attn(Tensor(x2), mask).numpy()
        np.testing.assert_allclose(out1[0], out2[0], atol=1e-9)

    def test_gradients_reach_all_heads(self):
        from repro.nn import MultiHeadAttention

        attn = MultiHeadAttention(8, heads=4, rng=np.random.default_rng(0))
        t = Tensor(np.random.default_rng(1).normal(size=(3, 8)), requires_grad=True)
        attn(t).sum().backward()
        for p in attn.parameters():
            assert p.grad is not None
        assert t.grad is not None

    def test_differs_from_single_head(self):
        from repro.nn import MultiHeadAttention

        rng = np.random.default_rng(0)
        multi = MultiHeadAttention(8, heads=4, rng=np.random.default_rng(1))
        single = MultiHeadAttention(8, heads=1, rng=np.random.default_rng(1))
        x = Tensor(rng.normal(size=(4, 8)))
        assert not np.allclose(multi(x).numpy(), single(x).numpy())
