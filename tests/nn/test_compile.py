"""Tests for the compiled plan executor (``repro.nn.compile``).

The executor's contract is bitwise golden equivalence: a replayed plan
must reproduce the eager tape's outputs and parameter gradients to the
last ulp, or fall back to the eager path.  The property suite drives
random small graphs from the op registry through capture/replay/eager;
the GARL tests exercise the real UAV surrogate-loss step end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import CompiledStep, Tensor


def bitexact(a, b) -> bool:
    """Last-ulp equality: same shape, same dtype, same bytes."""
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.dtype == b.dtype \
        and a.tobytes() == b.tobytes()


# ----------------------------------------------------------------------
# Property suite: random graphs over the op registry
# ----------------------------------------------------------------------
def _apply_unary(name: str, t: Tensor) -> Tensor:
    return {
        "tanh": lambda: t.tanh(),
        "exp": lambda: t.clip(-3.0, 3.0).exp(),
        "relu": lambda: t.relu(),
        "neg": lambda: -t,
        "abs": lambda: t.abs(),
        "sigmoid": lambda: t.sigmoid(),
        "clip": lambda: t.clip(-2.0, 2.0),
        "log": lambda: (t.abs() + 1.0).log(),
        "square": lambda: t * t,
    }[name]()


def _apply_binary(name: str, a: Tensor, b: Tensor) -> Tensor:
    return {
        "add": lambda: a + b,
        "sub": lambda: a - b,
        "mul": lambda: a * b,
        "div": lambda: a / (b.abs() + 1.0),
        "maximum": lambda: Tensor.maximum(a, b),
        "minimum": lambda: Tensor.minimum(a, b),
    }[name]()


UNARY = ["tanh", "exp", "relu", "neg", "abs", "sigmoid", "clip", "log",
         "square"]
BINARY = ["add", "sub", "mul", "div", "maximum", "minimum"]

graph_programs = st.lists(
    st.one_of(
        st.tuples(st.just("u"), st.sampled_from(UNARY),
                  st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("b"), st.sampled_from(BINARY),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=7)),
    ),
    min_size=1, max_size=8)

finite_matrix = st.lists(
    st.floats(min_value=-2.0, max_value=2.0,
              allow_nan=False, allow_infinity=False),
    min_size=12, max_size=12).map(
        lambda xs: np.asarray(xs, dtype=np.float64).reshape(4, 3))


@settings(max_examples=25, deadline=None)
@given(program=graph_programs, x=finite_matrix, y=finite_matrix)
def test_random_graph_replay_matches_eager(program, x, y):
    param = Tensor(np.linspace(-1.0, 1.0, 3), requires_grad=True)

    def fn(x_arr, y_arr):
        pool = [Tensor(x_arr), Tensor(y_arr), param]
        for instr in program:
            if instr[0] == "u":
                _, name, i = instr
                pool.append(_apply_unary(name, pool[i % len(pool)]))
            else:
                _, name, i, j = instr
                pool.append(_apply_binary(name, pool[i % len(pool)],
                                          pool[j % len(pool)]))
        # Anchor both inputs into the graph (the compiler refuses plans
        # with unused inputs) without changing the loss value.
        loss = (pool[-1] * param + pool[0] * 0.0 + pool[1] * 0.0).mean()
        return (loss,)

    step = CompiledStep(fn, name="prop")

    def run():
        param.grad = None
        res = step(x, y)
        res.backward()
        return res.mode, np.asarray(res.outputs[0]).copy(), param.grad.copy()

    run()  # capture
    mode, out_replay, g_replay = run()
    step.enabled = False
    _, out_eager, g_eager = run()

    assert step.disabled_reason is None
    assert mode == "replay"
    assert bitexact(out_replay, out_eager)
    assert bitexact(g_replay, g_eager)


# ----------------------------------------------------------------------
# Dispatch: guards, fallback, plan cache
# ----------------------------------------------------------------------
class TestDispatch:
    def _step(self, max_plans=8):
        param = Tensor(np.arange(3.0), requires_grad=True)
        step = CompiledStep(
            lambda x: (((Tensor(x) * param).tanh() + 1.0).mean(),),
            name="guarded", max_plans=max_plans)
        return step, param

    def test_new_shape_captures_fresh_plan(self):
        step, _ = self._step()
        a, b = np.ones((4, 3)), np.full((2, 3), 0.5)
        step(a)
        assert step(a).mode == "replay"
        res = step(b)  # different batch: must not replay the stale plan
        assert res.mode == "capture"
        assert step(b).mode == "replay"
        assert len(step.plans) == 2

    def test_cache_full_falls_back_to_eager_identically(self):
        step, param = self._step(max_plans=1)
        step(np.ones((4, 3)))
        b = np.full((2, 3), 0.25)

        def run():
            param.grad = None
            res = step(b)
            res.backward()
            return res.mode, np.asarray(res.outputs[0]).copy(), \
                param.grad.copy()

        mode, out, grad = run()
        assert mode == "eager"
        step.enabled = False
        _, out_ref, grad_ref = run()
        assert bitexact(out, out_ref) and bitexact(grad, grad_ref)

    def test_disabled_step_never_compiles(self):
        step, _ = self._step()
        step.enabled = False
        assert step(np.ones((4, 3))).mode == "eager"
        assert step.plans == {}


# ----------------------------------------------------------------------
# The real GARL UAV surrogate step
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def uav_step():
    from repro.nn.compile_cli import build_uav_step
    return build_uav_step(minibatch=8)


class TestGarlUavStep:
    def test_golden_equivalence(self, uav_step):
        from repro.nn.compile_cli import golden_smoke
        trainer, args = uav_step
        assert golden_smoke(trainer, args) == []

    def test_plan_quality_floor(self, uav_step):
        trainer, args = uav_step
        trainer._uav_step(*args)
        stats = trainer._uav_step.describe()["plans"][0]
        assert len(stats["fused_groups"]) >= 3
        assert stats["arena_bytes"] < stats["total_alloc_bytes"]

    def test_profiled_replay_reports_fused_segments(self, uav_step):
        from repro.obs.opprof import TimedTrace
        trainer, args = uav_step
        trainer._uav_step(*args)  # ensure the plan exists
        with TimedTrace() as tr:
            res = trainer._uav_step(*args)
        assert res.mode == "replay"
        assert tr.fused
        assert all(row[2] == "nn.compile" for row in tr.fused)
        fused_rows = [row for row in tr.fused if row[0] == "fused"]
        assert fused_rows and any("+" in row[1] for row in fused_rows)


@pytest.mark.slow
def test_compiled_training_matches_eager_bitwise():
    """Three full optimizer steps: compiled and eager params stay equal."""
    from repro.nn.compile_cli import build_uav_step

    def params_after(enabled):
        trainer, args = build_uav_step(minibatch=8)
        trainer._uav_step.enabled = enabled
        for _ in range(3):
            res = trainer._uav_step(*args)
            trainer._uav_apply(res)
        return [p.data.copy() for p in trainer.uav_optimizer.params]

    compiled = params_after(True)
    eager = params_after(False)
    assert all(bitexact(a, b) for a, b in zip(compiled, eager))


# ----------------------------------------------------------------------
# PF005 audit (see ISSUE 8): the premise that PF005 suppressions had
# accumulated was false — the codebase has none, and none should appear.
# ----------------------------------------------------------------------
def test_no_pf005_suppressions_in_source():
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    offenders = [str(p) for p in src.rglob("*.py")
                 if "disable=PF005" in p.read_text()]
    assert offenders == []
