"""Tests for LSTM / GRU cells."""

import numpy as np

from repro.nn import GRUCell, LSTMCell, Tensor


class TestLSTMCell:
    def test_shapes(self):
        cell = LSTMCell(4, 8, rng=np.random.default_rng(0))
        h, (h2, c2) = cell(Tensor(np.zeros((3, 4))), cell.init_state(3))
        assert h.shape == (3, 8)
        assert h2.shape == (3, 8) and c2.shape == (3, 8)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(2, 3)
        np.testing.assert_array_equal(cell.b_f.data, np.ones(3))

    def test_state_evolves_with_input(self):
        rng = np.random.default_rng(1)
        cell = LSTMCell(2, 4, rng=rng)
        state = cell.init_state(1)
        x1 = Tensor(rng.normal(size=(1, 2)))
        x2 = Tensor(rng.normal(size=(1, 2)))
        h1, state = cell(x1, state)
        h2, state = cell(x2, state)
        assert not np.allclose(h1.numpy(), h2.numpy())

    def test_zero_input_zero_state_bounded(self):
        cell = LSTMCell(3, 5, rng=np.random.default_rng(2))
        h, _ = cell(Tensor(np.zeros((2, 3))), cell.init_state(2))
        assert (np.abs(h.numpy()) < 1.0).all()

    def test_gradients_flow_through_time(self):
        rng = np.random.default_rng(3)
        cell = LSTMCell(2, 3, rng=rng)
        state = cell.init_state(1)
        x = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        h, state = cell(x, state)
        for _ in range(3):
            h, state = cell(Tensor(np.zeros((1, 2))), state)
        h.sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0
        assert cell.w_i.grad is not None

    def test_deterministic_given_seed(self):
        a = LSTMCell(2, 3, rng=np.random.default_rng(7))
        b = LSTMCell(2, 3, rng=np.random.default_rng(7))
        x = np.random.default_rng(0).normal(size=(1, 2))
        ha, _ = a(Tensor(x), a.init_state(1))
        hb, _ = b(Tensor(x), b.init_state(1))
        np.testing.assert_array_equal(ha.numpy(), hb.numpy())


class TestGRUCell:
    def test_shapes(self):
        cell = GRUCell(4, 6, rng=np.random.default_rng(0))
        h = cell(Tensor(np.zeros((5, 4))), cell.init_state(5))
        assert h.shape == (5, 6)

    def test_interpolation_property(self):
        # With update gate ~0 the state barely changes; the GRU output is a
        # convex combination of old state and candidate, so it stays in
        # the hull of [-1, 1].
        cell = GRUCell(2, 3, rng=np.random.default_rng(1))
        h = cell(Tensor(np.ones((1, 2))), Tensor(np.zeros((1, 3))))
        assert (np.abs(h.numpy()) <= 1.0).all()

    def test_gradients_reach_parameters(self):
        rng = np.random.default_rng(2)
        cell = GRUCell(3, 4, rng=rng)
        h = cell(Tensor(rng.normal(size=(2, 3))), cell.init_state(2))
        h.sum().backward()
        for p in cell.parameters():
            assert p.grad is not None

    def test_state_carries_information(self):
        rng = np.random.default_rng(3)
        cell = GRUCell(2, 4, rng=rng)
        x = Tensor(rng.normal(size=(1, 2)))
        h0a = cell.init_state(1)
        h0b = Tensor(np.ones((1, 4)))
        ha = cell(x, h0a)
        hb = cell(x, h0b)
        assert not np.allclose(ha.numpy(), hb.numpy())
