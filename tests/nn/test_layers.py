"""Tests for Module discovery, layers and state dicts."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Conv2d,
    Flatten,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(2, 3)
        self.blocks = [Linear(3, 3), Linear(3, 1)]
        self.scale = Parameter(np.array([1.0]))

    def forward(self, x):
        x = self.linear(x)
        for block in self.blocks:
            x = block(x)
        return x * self.scale


class TestModule:
    def test_named_parameters_discovers_nested_and_lists(self):
        names = {name for name, _ in Nested().named_parameters()}
        assert "linear.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        m = Linear(4, 3)
        assert m.num_parameters() == 4 * 3 + 3

    def test_state_dict_round_trip(self):
        a, b = Nested(), Nested()
        for p in a.parameters():
            p.data = p.data + 1.0
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_load_state_dict_rejects_missing_keys(self):
        m = Nested()
        state = m.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        m = Linear(2, 3)
        state = m.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_train_eval_propagates(self):
        m = Nested()
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_zero_grad_clears_all(self):
        m = Linear(2, 2)
        out = m(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None


class TestLinear:
    def test_affine_math(self):
        m = Linear(3, 2)
        m.weight.data = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        m.bias.data = np.array([10.0, 20.0])
        out = m(Tensor(np.array([[1.0, 2.0, 3.0]])))
        np.testing.assert_allclose(out.numpy(), [[14.0, 25.0]])

    def test_no_bias(self):
        m = Linear(3, 2, bias=False)
        assert m.bias is None
        assert m.num_parameters() == 6

    def test_deterministic_given_rng(self):
        a = Linear(4, 4, rng=np.random.default_rng(3))
        b = Linear(4, 4, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestActivationsAndContainers:
    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(ReLU()(x).numpy(), [0.0, 2.0])
        np.testing.assert_allclose(Tanh()(x).numpy(), np.tanh([-1.0, 2.0]))
        np.testing.assert_allclose(Sigmoid()(x).numpy(), 1 / (1 + np.exp([1.0, -2.0])))
        np.testing.assert_allclose(LeakyReLU(0.1)(x).numpy(), [-0.1, 2.0])

    def test_sequential_order_and_access(self):
        seq = Sequential(Linear(2, 4), ReLU(), Linear(4, 1))
        assert isinstance(seq[1], ReLU)
        assert len(list(iter(seq))) == 3
        out = seq(Tensor(np.ones((5, 2))))
        assert out.shape == (5, 1)

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_conv_maxpool_modules(self):
        conv = Conv2d(1, 2, 3, padding=1)
        pool = MaxPool2d(2)
        out = pool(conv(Tensor(np.zeros((1, 1, 4, 4)))))
        assert out.shape == (1, 2, 2, 2)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(8)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(4, 8))
        out = ln(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_affine_params_apply(self):
        ln = LayerNorm(2)
        ln.weight.data = np.array([2.0, 2.0])
        ln.bias.data = np.array([1.0, 1.0])
        out = ln(Tensor(np.array([[0.0, 2.0]]))).numpy()
        np.testing.assert_allclose(out, [[-1.0, 3.0]], atol=1e-4)


class TestMLP:
    def test_rejects_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_layer_structure(self):
        mlp = MLP([3, 8, 8, 2])
        linears = [l for l in mlp.net if isinstance(l, Linear)]
        assert [(l.in_features, l.out_features) for l in linears] == [(3, 8), (8, 8), (8, 2)]

    def test_output_activation(self):
        mlp = MLP([2, 4, 1], output_activation=Sigmoid)
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(10, 2)))).numpy()
        assert ((out > 0) & (out < 1)).all()

    def test_trains_on_regression(self):
        from repro.nn import Adam
        from repro.nn import functional as F

        rng = np.random.default_rng(2)
        mlp = MLP([1, 16, 1], rng=rng, final_gain=1.0)
        opt = Adam(mlp.parameters(), lr=1e-2)
        x = rng.normal(size=(64, 1))
        y = np.sin(x)
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss = F.mse_loss(mlp(Tensor(x)), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.2
