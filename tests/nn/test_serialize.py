"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    CheckpointMismatchError,
    Tensor,
    atomic_savez,
    atomic_write_bytes,
    load_checkpoint,
    save_checkpoint,
    validate_state_dict,
)


def test_round_trip_preserves_parameters(tmp_path):
    a = MLP([3, 8, 2], rng=np.random.default_rng(0))
    b = MLP([3, 8, 2], rng=np.random.default_rng(99))
    path = save_checkpoint(a, tmp_path / "model.npz")
    load_checkpoint(b, path)
    x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
    np.testing.assert_array_equal(a(x).numpy(), b(x).numpy())


def test_metadata_round_trip(tmp_path):
    model = MLP([2, 2], rng=np.random.default_rng(0))
    meta = {"iteration": 7, "campus": "kaist"}
    save_checkpoint(model, tmp_path / "m.npz", metadata=meta)
    loaded = load_checkpoint(model, tmp_path / "m.npz")
    assert loaded == meta


def test_missing_metadata_defaults_to_empty(tmp_path):
    model = MLP([2, 2], rng=np.random.default_rng(0))
    save_checkpoint(model, tmp_path / "m.npz")
    assert load_checkpoint(model, tmp_path / "m.npz") == {}


def test_creates_parent_directories(tmp_path):
    model = MLP([2, 2], rng=np.random.default_rng(0))
    path = save_checkpoint(model, tmp_path / "deep" / "nested" / "m.npz")
    assert path.exists()


def test_load_into_wrong_architecture_raises(tmp_path):
    a = MLP([3, 8, 2], rng=np.random.default_rng(0))
    wrong = MLP([3, 4, 2], rng=np.random.default_rng(0))
    path = save_checkpoint(a, tmp_path / "m.npz")
    with pytest.raises(ValueError):
        load_checkpoint(wrong, path)


# ----------------------------------------------------------------------
# Upfront validation diagnostics (CheckpointMismatchError)
# ----------------------------------------------------------------------

def test_mismatch_error_lists_every_problem():
    """One load attempt → one complete diagnosis, not first-key-wins."""
    model = MLP([3, 4, 2], rng=np.random.default_rng(0))
    state = model.state_dict()
    names = sorted(state)
    dropped = names[0]
    state.pop(dropped)                       # missing
    state["not.a.param"] = np.zeros(3)       # unexpected
    state[names[1]] = np.zeros((9, 9))       # shape mismatch

    with pytest.raises(CheckpointMismatchError) as excinfo:
        validate_state_dict(model, state, context="unit-test")
    err = excinfo.value
    assert err.missing == [dropped]
    assert err.unexpected == ["not.a.param"]
    assert len(err.mismatched) == 1 and names[1] in err.mismatched[0]
    message = str(err)
    for fragment in ("unit-test", "missing keys (1)", "unexpected keys (1)",
                     "mismatched keys (1)", dropped, "not.a.param"):
        assert fragment in message


def test_mismatch_error_flags_uncastable_dtype():
    model = MLP([2, 2], rng=np.random.default_rng(0))
    state = model.state_dict()
    key = sorted(state)[0]
    state[key] = state[key].astype(np.complex128)
    with pytest.raises(CheckpointMismatchError) as excinfo:
        validate_state_dict(model, state)
    assert any("dtype" in m for m in excinfo.value.mismatched)


def test_failed_load_leaves_module_untouched(tmp_path):
    a = MLP([3, 8, 2], rng=np.random.default_rng(0))
    wrong = MLP([3, 4, 2], rng=np.random.default_rng(5))
    before = {k: v.copy() for k, v in wrong.state_dict().items()}
    path = save_checkpoint(a, tmp_path / "m.npz")
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(wrong, path)
    for key, value in wrong.state_dict().items():
        np.testing.assert_array_equal(value, before[key])


def test_validate_accepts_exact_match():
    model = MLP([3, 4, 2], rng=np.random.default_rng(0))
    validate_state_dict(model, model.state_dict())  # no raise


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------

def test_atomic_write_replaces_and_leaves_no_temp(tmp_path):
    target = tmp_path / "sub" / "file.bin"
    atomic_write_bytes(target, b"first")
    atomic_write_bytes(target, b"second")
    assert target.read_bytes() == b"second"
    leftovers = [p for p in target.parent.iterdir() if p != target]
    assert leftovers == []


def test_atomic_savez_round_trips_slash_keys(tmp_path):
    arrays = {"trainer/ugv_optimizer/_m.0": np.arange(6.0).reshape(2, 3),
              "env_rng/state": np.array([1, 2, 3], dtype=np.uint64)}
    path = atomic_savez(tmp_path / "state.npz", arrays)
    with np.load(path) as data:
        assert sorted(data.files) == sorted(arrays)
        for key in arrays:
            np.testing.assert_array_equal(data[key], arrays[key])


def test_save_checkpoint_is_atomic_over_existing(tmp_path):
    model = MLP([2, 2], rng=np.random.default_rng(0))
    path = save_checkpoint(model, tmp_path / "m.npz", metadata={"v": 1})
    save_checkpoint(model, path, metadata={"v": 2})
    assert load_checkpoint(model, path) == {"v": 2}
    assert [p.name for p in tmp_path.iterdir()] == ["m.npz"]
