"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor, load_checkpoint, save_checkpoint


def test_round_trip_preserves_parameters(tmp_path):
    a = MLP([3, 8, 2], rng=np.random.default_rng(0))
    b = MLP([3, 8, 2], rng=np.random.default_rng(99))
    path = save_checkpoint(a, tmp_path / "model.npz")
    load_checkpoint(b, path)
    x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
    np.testing.assert_array_equal(a(x).numpy(), b(x).numpy())


def test_metadata_round_trip(tmp_path):
    model = MLP([2, 2], rng=np.random.default_rng(0))
    meta = {"iteration": 7, "campus": "kaist"}
    save_checkpoint(model, tmp_path / "m.npz", metadata=meta)
    loaded = load_checkpoint(model, tmp_path / "m.npz")
    assert loaded == meta


def test_missing_metadata_defaults_to_empty(tmp_path):
    model = MLP([2, 2], rng=np.random.default_rng(0))
    save_checkpoint(model, tmp_path / "m.npz")
    assert load_checkpoint(model, tmp_path / "m.npz") == {}


def test_creates_parent_directories(tmp_path):
    model = MLP([2, 2], rng=np.random.default_rng(0))
    path = save_checkpoint(model, tmp_path / "deep" / "nested" / "m.npz")
    assert path.exists()


def test_load_into_wrong_architecture_raises(tmp_path):
    a = MLP([3, 8, 2], rng=np.random.default_rng(0))
    wrong = MLP([3, 4, 2], rng=np.random.default_rng(0))
    path = save_checkpoint(a, tmp_path / "m.npz")
    with pytest.raises(ValueError):
        load_checkpoint(wrong, path)
