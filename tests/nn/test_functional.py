"""Tests for conv/pool kernels, indexing helpers and loss functions."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from .gradcheck import check_gradient


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Reference convolution by explicit loops."""
    n, c_in, h, wd = x.shape
    c_out, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        got = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        want = naive_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(got.numpy(), want, atol=1e-10)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)))
        check_gradient(lambda t: F.conv2d(t, w, stride=1, padding=1),
                       rng.normal(size=(1, 2, 5, 5)))

    def test_weight_gradient(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        check_gradient(lambda t: F.conv2d(x, t, stride=2, padding=0),
                       rng.normal(size=(3, 2, 3, 3)))

    def test_bias_gradient(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 1, 4, 4)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        check_gradient(lambda t: F.conv2d(x, w, t), rng.normal(size=2))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2).numpy()
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2).numpy()
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradient_goes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        grad = t.grad[0, 0]
        assert grad.sum() == 4.0
        assert grad[1, 1] == 1.0 and grad[3, 3] == 1.0
        assert grad[0, 0] == 0.0

    def test_max_pool_gradcheck(self):
        rng = np.random.default_rng(4)
        # Distinct values so the argmax is stable under perturbation.
        x = rng.permutation(36).reshape(1, 1, 6, 6).astype(float)
        check_gradient(lambda t: F.max_pool2d(t, 2), x)

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(5)
        check_gradient(lambda t: F.avg_pool2d(t, 2), rng.normal(size=(1, 2, 4, 4)))


class TestIndexing:
    def test_gather_picks_elements(self):
        x = np.arange(12.0).reshape(3, 4)
        idx = np.array([0, 3, 2])
        out = F.gather(Tensor(x), idx, axis=-1).numpy()
        np.testing.assert_allclose(out, [0.0, 7.0, 10.0])

    def test_gather_gradient(self):
        rng = np.random.default_rng(6)
        idx = np.array([1, 0, 2])
        check_gradient(lambda t: F.gather(t, idx, axis=-1), rng.normal(size=(3, 4)))

    def test_embedding_lookup(self):
        table = Tensor(np.arange(10.0).reshape(5, 2), requires_grad=True)
        out = F.embedding_lookup(table, np.array([0, 0, 4]))
        np.testing.assert_allclose(out.numpy(), [[0, 1], [0, 1], [8, 9]])
        out.sum().backward()
        np.testing.assert_allclose(table.grad[0], [2.0, 2.0])  # duplicates accumulate
        np.testing.assert_allclose(table.grad[4], [1.0, 1.0])


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert F.mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_mse_gradient(self):
        rng = np.random.default_rng(7)
        target = rng.normal(size=(3, 2))
        check_gradient(lambda t: F.mse_loss(t, target), rng.normal(size=(3, 2)))

    def test_huber_quadratic_region_matches_half_mse(self):
        pred = Tensor(np.array([0.3, -0.2]))
        target = np.zeros(2)
        huber = F.huber_loss(pred, target, delta=1.0).item()
        assert huber == pytest.approx(0.5 * (0.09 + 0.04) / 2)

    def test_huber_linear_region(self):
        pred = Tensor(np.array([10.0]))
        # 0.5*delta^2 + delta*(|x|-delta) with delta=1 -> 0.5 + 9 = 9.5
        assert F.huber_loss(pred, np.zeros(1), delta=1.0).item() == pytest.approx(9.5)

    def test_huber_gradient(self):
        check_gradient(lambda t: F.huber_loss(t, np.zeros(4), delta=1.0),
                       np.array([0.3, -0.4, 2.0, -3.0]))

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        assert F.cross_entropy(logits, np.array([0, 3])).item() == pytest.approx(np.log(4))

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(8)
        targets = np.array([1, 0, 2])
        check_gradient(lambda t: F.cross_entropy(t, targets), rng.normal(size=(3, 4)))

    def test_nll_matches_cross_entropy(self):
        rng = np.random.default_rng(9)
        logits = rng.normal(size=(3, 5))
        targets = np.array([0, 4, 2])
        ce = F.cross_entropy(Tensor(logits), targets).item()
        nll = F.nll_loss(Tensor(logits).log_softmax(), targets).item()
        assert ce == pytest.approx(nll)

    def test_bce_with_logits_matches_reference(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(4, 3)) * 3.0
        z = (rng.random((4, 3)) > 0.5).astype(float)
        got = F.binary_cross_entropy_with_logits(Tensor(x), z).item()
        p = 1.0 / (1.0 + np.exp(-x))
        want = -(z * np.log(p) + (1 - z) * np.log(1 - p)).mean()
        assert got == pytest.approx(want, rel=1e-9)

    def test_bce_gradient(self):
        rng = np.random.default_rng(11)
        z = (rng.random((3, 2)) > 0.5).astype(float)
        check_gradient(lambda t: F.binary_cross_entropy_with_logits(t, z),
                       rng.normal(size=(3, 2)))


class TestConvEdgeCases:
    def test_stride_three(self):
        rng = np.random.default_rng(20)
        x = rng.normal(size=(1, 1, 9, 9))
        w = rng.normal(size=(1, 1, 3, 3))
        got = F.conv2d(Tensor(x), Tensor(w), stride=3)
        want = naive_conv2d(x, w, stride=3)
        np.testing.assert_allclose(got.numpy(), want, atol=1e-10)

    def test_one_by_one_kernel(self):
        rng = np.random.default_rng(21)
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        got = F.conv2d(Tensor(x), Tensor(w))
        want = naive_conv2d(x, w)
        np.testing.assert_allclose(got.numpy(), want, atol=1e-10)

    def test_overlapping_pool_stride(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2, stride=1)
        assert out.shape == (1, 1, 3, 3)
        np.testing.assert_allclose(out.numpy()[0, 0, 0], [5.0, 6.0, 7.0])

    def test_overlapping_pool_gradient(self):
        rng = np.random.default_rng(22)
        x = rng.permutation(25).reshape(1, 1, 5, 5).astype(float)
        check_gradient(lambda t: F.max_pool2d(t, kernel=3, stride=1), x)
