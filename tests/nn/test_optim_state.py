"""Property-based round-trip tests for optimiser state and rng capture.

The checkpoint subsystem's resume ≡ uninterrupted invariant rests on two
primitives being exact: (a) an optimiser restored from its state dict
continues the *identical* update sequence, and (b) a Generator rebuilt
from a captured bit-generator state continues the *identical* draw
sequence.  Hypothesis drives both across random seeds and split points.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MLP, SGD, Adam, RMSProp, Tensor
from repro.nn.serialize import rng_from_state, rng_state, set_rng_state

SETTINGS = dict(max_examples=20, deadline=None)


def _make_pair(seed):
    """Two architecture-identical MLPs with *different* init weights."""
    a = MLP([3, 6, 2], rng=np.random.default_rng(seed))
    b = MLP([3, 6, 2], rng=np.random.default_rng(seed + 1))
    return a, b


def _train_steps(model, opt, steps, seed):
    """Run deterministic regression steps; data depends only on ``seed``."""
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x = Tensor(rng.normal(size=(5, 3)))
        target = rng.normal(size=(5, 2))
        opt.zero_grad()
        loss = ((model(x) - Tensor(target)) ** 2).mean()
        loss.backward()
        opt.step()


def _params(model):
    return [p.data.copy() for p in model.parameters()]


OPTIMIZERS = {
    "adam": lambda params: Adam(params, lr=1e-2, betas=(0.9, 0.99),
                                weight_decay=1e-3),
    "sgd": lambda params: SGD(params, lr=1e-2, momentum=0.9),
    "rmsprop": lambda params: RMSProp(params, lr=1e-3),
}


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**16), warm=st.integers(0, 6),
       cont=st.integers(1, 6),
       kind=st.sampled_from(sorted(OPTIMIZERS)))
def test_optimizer_state_round_trip_continues_identically(seed, warm, cont, kind):
    """split-at-``warm`` resume reproduces the uninterrupted trajectory.

    Model A trains ``warm + cont`` steps straight through.  Model B
    copies A's weights+optimiser state at step ``warm`` (via the state
    dicts only) and trains the remaining ``cont`` steps on the same
    data stream.  Final parameters must agree bit-for-bit.
    """
    a, b = _make_pair(seed)
    opt_a = OPTIMIZERS[kind](a.parameters())

    _train_steps(a, opt_a, warm, seed=seed)

    # Transfer *only* through the serialisable state dicts.
    for p_b, p_a in zip(b.parameters(), a.parameters()):
        p_b.data = p_a.data.copy()
    opt_b = OPTIMIZERS[kind](b.parameters())
    opt_b.load_state_dict(opt_a.state_dict())

    # Continue both on an identical data stream (fresh rng per phase so
    # A's and B's continuation draws coincide).
    _train_steps(a, opt_a, cont, seed=seed + 7)
    _train_steps(b, opt_b, cont, seed=seed + 7)

    for arr_a, arr_b in zip(_params(a), _params(b)):
        np.testing.assert_array_equal(arr_a, arr_b)


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**16), warm=st.integers(1, 5))
def test_adam_state_dict_round_trips_exactly(seed, warm):
    """state_dict → load_state_dict is lossless for moments and step count."""
    model = MLP([3, 6, 2], rng=np.random.default_rng(seed))
    opt = Adam(model.parameters(), lr=3e-3)
    _train_steps(model, opt, warm, seed=seed)
    state = opt.state_dict()

    other = Adam(model.parameters(), lr=1.0)  # wrong lr, zero moments
    other.load_state_dict(state)
    assert other._t == opt._t
    assert other.lr == opt.lr
    assert (other.beta1, other.beta2) == (opt.beta1, opt.beta2)
    for m1, m2 in zip(opt._m, other._m):
        np.testing.assert_array_equal(m1, m2)
    for v1, v2 in zip(opt._v, other._v):
        np.testing.assert_array_equal(v1, v2)


def test_load_state_dict_rejects_wrong_shapes():
    big = MLP([3, 8, 2], rng=np.random.default_rng(0))
    small = MLP([3, 4, 2], rng=np.random.default_rng(0))
    state = Adam(big.parameters(), lr=1e-3).state_dict()
    with pytest.raises(ValueError, match="shape"):
        Adam(small.parameters(), lr=1e-3).load_state_dict(state)


def test_load_state_dict_rejects_missing_slots():
    model = MLP([3, 4, 2], rng=np.random.default_rng(0))
    opt = Adam(model.parameters(), lr=1e-3)
    state = opt.state_dict()
    del state["_m.0"]
    with pytest.raises(KeyError, match="_m.0"):
        opt.load_state_dict(state)


def test_load_state_dict_validates_before_mutating():
    """A bad state dict must leave the optimiser untouched."""
    model = MLP([3, 4, 2], rng=np.random.default_rng(0))
    opt = Adam(model.parameters(), lr=1e-3)
    _train_steps(model, opt, 2, seed=0)
    moments = [m.copy() for m in opt._m]
    bad = opt.state_dict()
    bad["_v.0"] = np.zeros((99, 99))
    with pytest.raises(ValueError):
        opt.load_state_dict(bad)
    for before, after in zip(moments, opt._m):
        np.testing.assert_array_equal(before, after)


# ----------------------------------------------------------------------
# rng stream capture
# ----------------------------------------------------------------------

@settings(**SETTINGS)
@given(seed=st.integers(0, 2**32 - 1), burn=st.integers(0, 40),
       draws=st.integers(1, 40))
def test_rng_capture_resumes_stream_exactly(seed, burn, draws):
    """A Generator rebuilt mid-stream continues the identical sequence."""
    rng = np.random.default_rng(seed)
    rng.normal(size=burn)
    state = rng_state(rng)

    resumed = rng_from_state(state)
    np.testing.assert_array_equal(rng.normal(size=draws),
                                  resumed.normal(size=draws))
    # And the mixed-draw tail stays aligned too.
    assert rng.integers(0, 1000, size=5).tolist() == \
        resumed.integers(0, 1000, size=5).tolist()


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**32 - 1), burn=st.integers(0, 16))
def test_rng_state_survives_json(seed, burn):
    """The captured state is JSON-clean (128-bit counters included)."""
    import json

    rng = np.random.default_rng(seed)
    rng.random(size=burn)
    state = json.loads(json.dumps(rng_state(rng)))
    resumed = rng_from_state(state)
    np.testing.assert_array_equal(rng.random(size=8), resumed.random(size=8))


def test_set_rng_state_repositions_existing_generator():
    source = np.random.default_rng(3)
    source.normal(size=11)
    state = rng_state(source)
    target = np.random.default_rng(999)
    set_rng_state(target, state)
    np.testing.assert_array_equal(source.normal(size=6), target.normal(size=6))
