"""Tests for optimisers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, RMSProp, Tensor, clip_grad_norm
from repro.nn import functional as F


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def step_quadratic(param, opt, steps):
    """Minimise f(x) = x^2 and return the trajectory."""
    values = []
    for _ in range(steps):
        opt.zero_grad()
        loss = (Tensor(param.data * 0) + param) ** 2  # keep graph rooted at param
        loss.sum().backward()
        opt.step()
        values.append(float(param.data[0]))
    return values


class TestSGD:
    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_plain_step_math(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = quadratic_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0])
        opt.step()  # v=1 -> p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.5 -> p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_skips_params_without_grad(self):
        p = quadratic_param(3.0)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [3.0])

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        values = step_quadratic(p, SGD([p], lr=0.1), 100)
        assert abs(values[-1]) < 1e-3


class TestAdam:
    def test_first_step_size_is_lr(self):
        # Adam's bias correction makes the very first step ~lr * sign(grad).
        p = quadratic_param(0.0)
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_matches_reference_two_steps(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        # Reference computed by the standard Adam recurrence.
        m = v = 0.0
        x = 1.0
        for t in (1, 2):
            g = 2 * x
            p.grad = np.array([g])
            opt.step()
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            x = x - 0.1 * (m / (1 - 0.9**t)) / (np.sqrt(v / (1 - 0.999**t)) + 1e-8)
            np.testing.assert_allclose(p.data, [x], rtol=1e-10)

    def test_weight_decay_pulls_toward_zero(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert float(p.data[0]) < 10.0

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        values = step_quadratic(p, Adam([p], lr=0.2), 200)
        assert abs(values[-1]) < 1e-2


class TestRMSProp:
    def test_step_direction(self):
        p = quadratic_param(1.0)
        opt = RMSProp([p], lr=0.01)
        p.grad = np.array([4.0])
        opt.step()
        assert float(p.data[0]) < 1.0

    def test_converges_on_quadratic(self):
        p = quadratic_param(3.0)
        values = step_quadratic(p, RMSProp([p], lr=0.05), 300)
        assert abs(values[-1]) < 0.05


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.5])

    def test_clips_to_max_norm(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(2))
        a.grad = np.array([3.0, 0.0])
        b.grad = np.array([0.0, 4.0])
        norm = clip_grad_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt((a.grad**2).sum() + (b.grad**2).sum())
        assert total == pytest.approx(1.0)

    def test_ignores_none_grads(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(2))
        a.grad = np.array([1.0, 0.0])
        assert clip_grad_norm([a, b], 10.0) == pytest.approx(1.0)


class TestEndToEnd:
    def test_adam_beats_sgd_on_ill_conditioned_problem(self):
        rng = np.random.default_rng(0)
        scales = np.array([100.0, 1.0])

        def loss_of(p):
            return ((Tensor(scales) * p) ** 2).sum()

        results = {}
        for name, factory in (("sgd", lambda p: SGD([p], lr=1e-5)),
                              ("adam", lambda p: Adam([p], lr=0.05))):
            p = Parameter(np.array([1.0, 1.0]))
            opt = factory(p)
            for _ in range(100):
                opt.zero_grad()
                loss_of(p).backward()
                opt.step()
            results[name] = float(loss_of(p).item())
        assert results["adam"] < results["sgd"]
