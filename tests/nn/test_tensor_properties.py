"""Property-based gradient checks for the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor

from .gradcheck import check_gradient

SETTINGS = dict(max_examples=25, deadline=None)


def finite_arrays(min_dims=1, max_dims=2, min_side=1, max_side=4,
                  min_value=-3.0, max_value=3.0):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=min_dims, max_dims=max_dims,
                           min_side=min_side, max_side=max_side),
        elements=st.floats(min_value=min_value, max_value=max_value,
                           allow_nan=False, allow_infinity=False),
    )


@settings(**SETTINGS)
@given(finite_arrays())
def test_add_gradient(x):
    check_gradient(lambda t: t + t * 0.5, x)


@settings(**SETTINGS)
@given(finite_arrays())
def test_mul_gradient(x):
    check_gradient(lambda t: t * t, x)


@settings(**SETTINGS)
@given(finite_arrays())
def test_tanh_gradient(x):
    check_gradient(lambda t: t.tanh(), x)


@settings(**SETTINGS)
@given(finite_arrays())
def test_sigmoid_gradient(x):
    check_gradient(lambda t: t.sigmoid(), x)


@settings(**SETTINGS)
@given(finite_arrays())
def test_exp_gradient(x):
    check_gradient(lambda t: t.exp(), x)


@settings(**SETTINGS)
@given(finite_arrays(min_value=0.1, max_value=5.0))
def test_log_gradient(x):
    check_gradient(lambda t: t.log(), x)


@settings(**SETTINGS)
@given(finite_arrays(min_dims=2, max_dims=2))
def test_softmax_gradient(x):
    check_gradient(lambda t: t.softmax(axis=-1), x, atol=1e-4)


@settings(**SETTINGS)
@given(finite_arrays(min_dims=2, max_dims=2))
def test_log_softmax_gradient(x):
    check_gradient(lambda t: t.log_softmax(axis=-1), x, atol=1e-4)


@settings(**SETTINGS)
@given(finite_arrays())
def test_sum_gradient(x):
    check_gradient(lambda t: t.sum(), x)


@settings(**SETTINGS)
@given(finite_arrays())
def test_mean_gradient(x):
    check_gradient(lambda t: t.mean(), x)


@settings(**SETTINGS)
@given(finite_arrays(min_dims=2, max_dims=2, min_side=2))
def test_matmul_gradient(x):
    w = np.random.default_rng(0).normal(size=(x.shape[-1], 3))
    check_gradient(lambda t: t @ Tensor(w), x)


@settings(**SETTINGS)
@given(finite_arrays(min_dims=2, max_dims=2))
def test_norm_gradient(x):
    # Shift away from zero where the norm is non-differentiable.
    check_gradient(lambda t: t.norm(axis=-1), x + 5.0)


@settings(**SETTINGS)
@given(finite_arrays())
def test_softmax_is_simplex(x):
    soft = Tensor(x).softmax(axis=-1).numpy()
    assert (soft >= 0).all()
    np.testing.assert_allclose(soft.sum(axis=-1), np.ones(x.shape[:-1]), atol=1e-9)


@settings(**SETTINGS)
@given(finite_arrays())
def test_detach_breaks_gradient_flow(x):
    t = Tensor(x, requires_grad=True)
    out = (t.detach() * 2.0).sum() + (t * 3.0).sum()
    out.backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 3.0))


@settings(**SETTINGS)
@given(finite_arrays(min_dims=2, max_dims=2))
def test_transpose_involution(x):
    np.testing.assert_array_equal(Tensor(x).transpose().transpose().numpy(), x)


@settings(**SETTINGS)
@given(finite_arrays(), st.floats(min_value=-1.0, max_value=0.0),
       st.floats(min_value=0.1, max_value=1.5))
def test_clip_bounds_hold(x, low, high):
    clipped = Tensor(x).clip(low, high).numpy()
    assert (clipped >= low - 1e-12).all()
    assert (clipped <= high + 1e-12).all()
