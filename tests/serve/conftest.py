"""Shared serve fixtures: one tiny trained checkpoint + its artifact.

Training even one smoke iteration dominates the serve suite's runtime,
so the checkpoint and the exported artifact are session-scoped and
shared by the artifact, engine and service tests.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_training
from repro.serve.artifact import export_artifact, load_artifact


@pytest.fixture(scope="session")
def trained_run(tmp_path_factory):
    """A one-iteration smoke GARL run with a full-state checkpoint."""
    run_dir = tmp_path_factory.mktemp("serve_run")
    record, agent = run_training(
        "garl", "kaist", "smoke", train_iterations=1,
        checkpoint_dir=run_dir, save_every=1, handle_signals=False)
    return {"run_dir": run_dir, "agent": agent, "record": record}


@pytest.fixture(scope="session")
def artifact_dir(trained_run, tmp_path_factory):
    """The run above frozen into an inference artifact."""
    out = tmp_path_factory.mktemp("serve_artifact") / "artifact"
    export_artifact(trained_run["run_dir"], out)
    return out


@pytest.fixture(scope="session")
def frozen_policy(artifact_dir):
    return load_artifact(artifact_dir, verify=True)
