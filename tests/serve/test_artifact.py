"""Export → load round trip: bitwise equality and the refusal matrix."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.nn import no_grad
from repro.serve.artifact import (
    SERVE_SCHEMA_VERSION,
    ArtifactError,
    _probe_arrays,
    export_artifact,
    load_artifact,
)


def test_manifest_records_identity(artifact_dir):
    manifest = json.loads((artifact_dir / "manifest.json").read_text())
    assert manifest["serve_schema_version"] == SERVE_SCHEMA_VERSION
    assert manifest["method"] == "garl"
    assert manifest["campus"] == "kaist"
    assert manifest["num_ugvs"] == 4 and manifest["num_uavs_per_ugv"] == 2
    assert manifest["schema"]["num_ugv_actions"] == manifest["schema"]["num_stops"] + 1
    assert set(manifest["params"]) == {"ugv_policy", "uav_policy"}
    assert manifest["probe"]["ugv_logits"]
    assert manifest["training"]["config_fingerprint"]


def test_roundtrip_bitwise_vs_live_policy(trained_run, frozen_policy):
    """The frozen forwards reproduce the training agent's outputs exactly."""
    agent = trained_run["agent"]
    obs, grids, aux = _probe_arrays(frozen_policy.schema)

    logits, values = frozen_policy.ugv_forward(obs)
    with no_grad():
        live = agent.ugv_policy.forward_batched(obs)
    np.testing.assert_array_equal(logits, live.logits.numpy())
    np.testing.assert_array_equal(values, live.values.numpy())

    mean, log_std, uav_values = frozen_policy.uav_forward(grids, aux)
    with no_grad():
        dist, live_values = agent.uav_policy.forward_arrays(grids, aux)
    np.testing.assert_array_equal(mean, dist.mean.numpy())
    np.testing.assert_array_equal(log_std, agent.uav_policy.log_std.data)
    np.testing.assert_array_equal(uav_values, live_values.numpy())


def test_uav_padding_is_row_exact(frozen_policy):
    """Bucket padding never changes the live rows' bits."""
    _, grids, aux = _probe_arrays(frozen_policy.schema)
    full_mean, _, full_values = frozen_policy.uav_forward(grids, aux)
    # N=3 pads to the 4-bucket; rows must match the N=8 forward's bits.
    mean3, _, values3 = frozen_policy.uav_forward(grids[:3], aux[:3])
    np.testing.assert_array_equal(mean3, full_mean[:3])
    np.testing.assert_array_equal(values3, full_values[:3])


def test_compiled_and_eager_uav_paths_agree(artifact_dir):
    compiled = load_artifact(artifact_dir, verify=True, compile_uav=True)
    eager = load_artifact(artifact_dir, verify=True, compile_uav=False)
    _, grids, aux = _probe_arrays(compiled.schema)
    for n in (1, 3, 8):
        got = compiled.uav_forward(grids[:n], aux[:n])
        want = eager.uav_forward(grids[:n], aux[:n])
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
    # The compiled dispatcher actually replayed plans (not silent fallback).
    stats = compiled._uav_step.describe()
    assert stats["disabled_reason"] is None
    assert stats["replay_calls"] >= 1


def _tamper(artifact_dir, tmp_path, mutate):
    import shutil

    copy = tmp_path / "tampered"
    shutil.copytree(artifact_dir, copy)
    manifest = json.loads((copy / "manifest.json").read_text())
    mutate(copy, manifest)
    (copy / "manifest.json").write_text(json.dumps(manifest))
    return copy


def test_refuses_wrong_schema_version(artifact_dir, tmp_path):
    def bump(_copy, manifest):
        manifest["serve_schema_version"] = SERVE_SCHEMA_VERSION + 1

    with pytest.raises(ArtifactError, match="serve schema version"):
        load_artifact(_tamper(artifact_dir, tmp_path, bump))


def test_refuses_mismatched_config_fingerprint(artifact_dir, tmp_path):
    """A manifest whose config would build a different net is rejected."""
    def drift(_copy, manifest):
        manifest["garl_config"]["hidden_dim"] += 1

    with pytest.raises(ArtifactError, match="fingerprint"):
        load_artifact(_tamper(artifact_dir, tmp_path, drift))


def test_refuses_tampered_weights(artifact_dir, tmp_path):
    def corrupt(copy, _manifest):
        path = copy / "uav_policy.npz"
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        key = next(k for k in arrays if k.startswith("param::"))
        arrays[key] = arrays[key] + 1e-3
        np.savez(path, **arrays)

    with pytest.raises(ArtifactError, match="digest"):
        load_artifact(_tamper(artifact_dir, tmp_path, corrupt))


def test_refuses_stateful_policy(trained_run, tmp_path):
    """IC3Net's recurrent policy cannot sit behind the micro-batcher."""
    with pytest.raises(ArtifactError, match="recurrent|stateful"):
        export_artifact(trained_run["run_dir"], tmp_path / "a",
                        method="ic3net")


def test_export_from_specific_iter_dir(trained_run, tmp_path):
    iters = sorted(trained_run["run_dir"].glob("iter_*"))
    assert iters
    out = export_artifact(iters[-1], tmp_path / "from_iter")
    load_artifact(out, verify=True)
