"""Service front-end semantics: routing, schema 400s, overload, drain.

Most tests drive an in-process service on an ephemeral port through a
plain ``http.client`` connection.  The SIGTERM drain drill runs the real
``repro serve`` process and kills it mid-request.
"""

from __future__ import annotations

import io
import json
import http.client
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve.artifact import _probe_arrays
from repro.serve.engine import InferenceEngine
from repro.serve.service import DispatchService


# ----------------------------------------------------------------------
# In-process service harness
# ----------------------------------------------------------------------

class _Server:
    """Run DispatchService.serve() on a background event-loop thread."""

    def __init__(self, policy, **engine_kwargs):
        import asyncio

        self.engine = InferenceEngine(policy, **engine_kwargs)
        self.service = DispatchService(policy, self.engine,
                                       host="127.0.0.1", port=0,
                                       drain_timeout_s=10.0)
        self.port: int | None = None
        self.loop = None
        ready = threading.Event()

        def _ready(_host, port):
            self.port = port
            self.loop = asyncio.get_running_loop()
            ready.set()

        def _run():
            asyncio.run(self.service.serve(ready_callback=_ready))

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        assert ready.wait(timeout=10), "service did not come up"

    def stop(self):
        # Trigger the same path SIGTERM takes, from the loop's thread.
        self.loop.call_soon_threadsafe(self.service.begin_drain)
        self.thread.join(timeout=15)
        self.engine.stop()

    def connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)


def _call(conn, method, path, body=None, ctype="application/json"):
    headers = {"Content-Type": ctype} if body is not None else {}
    conn.request(method, path, body=body, headers=headers)
    resp = conn.getresponse()
    payload = resp.read()
    return resp.status, payload


def _npz(arrays: dict) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


@pytest.fixture(scope="module")
def server(frozen_policy):
    srv = _Server(frozen_policy, max_batch=8, max_wait_us=1000,
                  queue_limit=64, timeout_ms=2000)
    yield srv
    srv.stop()


@pytest.fixture()
def session_id(server):
    conn = server.connection()
    status, body = _call(conn, "POST", "/v1/session",
                         json.dumps({"seed": 7}).encode())
    conn.close()
    assert status == 200
    return json.loads(body)["session"]


def _ugv_json(policy, session, greedy=False):
    obs, _, _ = _probe_arrays(policy.schema)
    return {
        "session": session, "kind": "ugv", "greedy": greedy,
        "stop_features": obs.stop_features[0].tolist(),
        "ugv_positions": obs.ugv_positions[0].tolist(),
        "ugv_stops": obs.ugv_stops[0].tolist(),
        "action_mask": obs.action_mask[0].astype(int).tolist(),
    }


# ----------------------------------------------------------------------
# Routing + payloads
# ----------------------------------------------------------------------

def test_healthz_and_artifact(server):
    conn = server.connection()
    status, body = _call(conn, "GET", "/healthz")
    assert status == 200 and json.loads(body)["status"] == "ok"
    status, body = _call(conn, "GET", "/v1/artifact")
    assert status == 200
    blob = json.loads(body)
    assert blob["manifest"]["method"] == "garl"
    status, body = _call(conn, "GET", "/v1/metrics")
    assert status == 200 and "engine" in json.loads(body)
    conn.close()


def test_act_json_roundtrip(server, frozen_policy, session_id):
    conn = server.connection()
    status, body = _call(conn, "POST", "/v1/act",
                         json.dumps(_ugv_json(frozen_policy, session_id)).encode())
    assert status == 200, body
    blob = json.loads(body)
    num_ugvs = frozen_policy.schema["num_ugvs"]
    num_actions = frozen_policy.schema["num_ugv_actions"]
    assert len(blob["actions"]) == num_ugvs
    assert all(0 <= a < num_actions for a in blob["actions"])
    assert len(blob["values"]) == num_ugvs
    conn.close()


def test_act_npz_roundtrip(server, frozen_policy, session_id):
    _, grids, aux = _probe_arrays(frozen_policy.schema)
    conn = server.connection()
    status, body = _call(conn, "POST",
                         f"/v1/act?session={session_id}&kind=uav",
                         _npz({"grids": grids, "aux": aux}),
                         ctype="application/x-npz")
    assert status == 200
    with np.load(io.BytesIO(body)) as data:
        assert data["actions"].shape == (grids.shape[0], 2)
        assert data["moves"].shape == (grids.shape[0], 2)
    conn.close()


def test_unknown_session_is_404(server, frozen_policy):
    conn = server.connection()
    status, body = _call(conn, "POST", "/v1/act",
                         json.dumps(_ugv_json(frozen_policy, "nope")).encode())
    assert status == 404
    conn.close()


def test_schema_mismatch_is_400(server, frozen_policy, session_id):
    payload = _ugv_json(frozen_policy, session_id)
    payload["stop_features"] = [[0.0, 1.0]]  # wrong shape entirely
    conn = server.connection()
    status, body = _call(conn, "POST", "/v1/act", json.dumps(payload).encode())
    assert status == 400
    assert "stop_features" in json.loads(body)["error"]
    # Malformed JSON is also a 400, not a 500.
    status, _ = _call(conn, "POST", "/v1/act", b"{not json")
    assert status == 400
    conn.close()


def test_overload_sheds_with_429(frozen_policy):
    """With a tiny queue and a stalled clock, extra load sheds as 429."""
    srv = _Server(frozen_policy, max_batch=2, max_wait_us=200_000,
                  queue_limit=2, timeout_ms=5000)
    try:
        conn = srv.connection()
        status, body = _call(conn, "POST", "/v1/session", b"{}")
        sid = json.loads(body)["session"]
        payload = json.dumps(_ugv_json(frozen_policy, sid)).encode()

        results = []

        def fire():
            c = srv.connection()
            results.append(_call(c, "POST", "/v1/act", payload)[0])
            c.close()

        threads = [threading.Thread(target=fire) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        conn.close()
        assert results, "no requests completed"
        assert set(results) <= {200, 429}
        assert 429 in results, f"nothing shed: {results}"
        assert 200 in results, f"everything shed: {results}"
    finally:
        srv.stop()


# ----------------------------------------------------------------------
# SIGTERM drain (real process)
# ----------------------------------------------------------------------

def test_sigterm_drains_in_flight_requests(artifact_dir, frozen_policy,
                                           tmp_path):
    """SIGTERM mid-traffic: the in-flight request completes, new work is
    refused with 503, and the process exits 0."""
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    ready = tmp_path / "ready"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(artifact_dir),
         "--port", "0", "--ready-file", str(ready), "--no-warmup",
         "--max-wait-us", "150000", "--timeout-ms", "5000"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        deadline = time.perf_counter() + 60
        while not ready.exists():
            assert proc.poll() is None, proc.stdout.read()
            assert time.perf_counter() < deadline, "service never came up"
            time.sleep(0.05)
        host, port = ready.read_text().split()
        port = int(port)

        conn = http.client.HTTPConnection(host, port, timeout=20)
        status, body = _call(conn, "POST", "/v1/session", b"{}")
        assert status == 200
        sid = json.loads(body)["session"]
        payload = json.dumps(_ugv_json(frozen_policy, sid)).encode()

        # Fire a request that will sit in the 150 ms batching window,
        # then SIGTERM while it is in flight.
        result: dict = {}

        def act():
            result["response"] = _call(conn, "POST", "/v1/act", payload)

        worker = threading.Thread(target=act)
        worker.start()
        time.sleep(0.05)  # let the request reach the engine queue
        proc.send_signal(signal.SIGTERM)
        worker.join(timeout=30)
        assert result["response"][0] == 200, result

        rc = proc.wait(timeout=30)
        assert rc == 0, proc.stdout.read()

        # After drain the socket is gone: new connections are refused.
        with pytest.raises(OSError):
            fresh = http.client.HTTPConnection(host, port, timeout=2)
            fresh.request("GET", "/healthz")
            fresh.getresponse()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
